"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

Not part of the paper's evaluation — these quantify the internal choices:

* **greedy vs CELF vs top-|σ|** — oracle-call counts and achieved spread of
  the three seed selectors over the same oracle;
* **vHLL dominance pruning** — empirical per-cell list lengths against the
  O(log ω) bound of Lemma 4;
* **exact vs sketch index** — build time and accounted memory side by
  side (the trade the paper's §3.2 motivates);
* **TCIC judge variants** — the literal pseudo-code (seed clock resets)
  vs the §2 prose (first-interaction activation).
"""

import math
import time

from conftest import register_table

from repro.analysis.memory import accounted_bytes, megabytes
from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.core.maximization import celf_top_k, greedy_top_k, top_k_by_influence
from repro.core.oracle import ExactInfluenceOracle
from repro.simulation.spread import estimate_spread


class CountingOracle(ExactInfluenceOracle):
    """Wraps the exact oracle to count gain evaluations."""

    def __init__(self, sets):
        super().__init__(sets)
        self.gain_calls = 0

    def gain(self, state, node):
        self.gain_calls += 1
        return super().gain(state, node)


def test_ablation_selector_strategies(benchmark, small_catalog_logs):
    """Greedy and CELF agree on spread; CELF needs far fewer gain calls;
    top-|sigma| is cheapest but loses coverage to overlap."""
    rows = []
    for name in ("slashdot-sim", "facebook-sim"):
        log = small_catalog_logs[name]
        window = log.window_from_percent(10)
        index = ExactIRS.from_log(log, window)
        sets = {node: index.reachability_set(node) for node in index.nodes}
        for selector_name, selector in (
            ("greedy", greedy_top_k),
            ("celf", celf_top_k),
            ("top-by-sigma", top_k_by_influence),
        ):
            oracle = CountingOracle(sets)
            start = time.perf_counter()
            seeds = selector(oracle, 20)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "dataset": name,
                    "selector": selector_name,
                    "oracle_spread": oracle.spread(seeds),
                    "gain_calls": oracle.gain_calls,
                    "seconds": elapsed,
                }
            )
    register_table(
        "Ablation selector strategies (k=20)",
        rows,
        note="greedy == celf spread; celf needs fewer gain calls; "
        "top-by-sigma ignores overlap and covers less.",
    )
    by_key = {(r["dataset"], r["selector"]): r for r in rows}
    for name in ("slashdot-sim", "facebook-sim"):
        greedy_row = by_key[(name, "greedy")]
        celf_row = by_key[(name, "celf")]
        naive_row = by_key[(name, "top-by-sigma")]
        assert celf_row["oracle_spread"] == greedy_row["oracle_spread"]
        assert celf_row["gain_calls"] <= greedy_row["gain_calls"]
        assert naive_row["oracle_spread"] <= greedy_row["oracle_spread"]

    log = small_catalog_logs["slashdot-sim"]
    window = log.window_from_percent(10)
    oracle = ExactInfluenceOracle.from_index(ExactIRS.from_log(log, window))
    benchmark(celf_top_k, oracle, 20)


def test_ablation_vhll_list_lengths(benchmark, small_catalog_logs):
    """Lemma 4: expected per-cell version-list length is O(log omega)."""
    rows = []
    for name, log in small_catalog_logs.items():
        for percent in (1, 10, 20):
            window = log.window_from_percent(percent)
            index = ApproxIRS.from_log(log, window, precision=9)
            longest = index.max_cell_length()
            bound = 3 * math.log(max(window, 2)) + 3
            rows.append(
                {
                    "dataset": name,
                    "window_pct": percent,
                    "max_cell_list": longest,
                    "3ln(omega)+3": round(bound, 1),
                }
            )
    register_table(
        "Ablation vHLL per-cell list lengths",
        rows,
        note="max list length stays within a small multiple of ln(omega) "
        "(Lemma 4's expectation bound).",
    )
    for row in rows:
        assert row["max_cell_list"] <= row["3ln(omega)+3"]

    log = small_catalog_logs["slashdot-sim"]
    benchmark(ApproxIRS.from_log, log, log.window_from_percent(20), 9)


def test_ablation_exact_vs_sketch_index(benchmark, small_catalog_logs):
    """The §3.2 trade: the sketch costs more CPU in pure Python but its
    memory is bounded by n*beta, while the exact index grows with n^2."""
    rows = []
    for name, log in small_catalog_logs.items():
        window = log.window_from_percent(20)
        start = time.perf_counter()
        exact = ExactIRS.from_log(log, window)
        exact_time = time.perf_counter() - start
        start = time.perf_counter()
        sketch = ApproxIRS.from_log(log, window, precision=9)
        sketch_time = time.perf_counter() - start
        rows.append(
            {
                "dataset": name,
                "exact_s": exact_time,
                "sketch_s": sketch_time,
                "exact_mb": megabytes(accounted_bytes(exact)),
                "sketch_mb": megabytes(accounted_bytes(sketch)),
                "exact_entries": exact.entry_count(),
                "sketch_entries": sketch.entry_count(),
            }
        )
    register_table(
        "Ablation exact vs sketch index (omega=20%)",
        rows,
        note="sketch entries bounded regardless of reachability growth; "
        "exact entries approach n^2 on dense-reachability sets.",
    )

    log = small_catalog_logs["enron-sim"]
    benchmark(ExactIRS.from_log, log, log.window_from_percent(20))


def test_ablation_sketch_backends(benchmark, small_catalog_logs):
    """vHLL vs versioned bottom-k at matched stored-pair budgets.

    Quantifies why the paper versions HyperLogLog: a bottom-k sketch's
    eviction (by hash only) loses exactly the pairs stricter time filters
    need, so its windowed-merge accuracy degrades where the vHLL's Pareto
    lists do not."""
    from repro.analysis.metrics import average_relative_error
    from repro.core.approx_bottomk import BottomKIRS

    rows = []
    for name in ("lkml-sim", "slashdot-sim", "facebook-sim"):
        log = small_catalog_logs[name]
        for percent in (1, 10):
            window = log.window_from_percent(percent)
            truth = ExactIRS.from_log(log, window).irs_sizes()
            vhll = ApproxIRS.from_log(log, window, precision=9)
            bottomk = BottomKIRS.from_log(log, window, k=64)
            rows.append(
                {
                    "dataset": name,
                    "window_pct": percent,
                    "vhll_err": average_relative_error(truth, vhll.irs_estimates()),
                    "bottomk_err": average_relative_error(
                        truth, bottomk.irs_estimates()
                    ),
                    "vhll_pairs": vhll.entry_count(),
                    "bottomk_pairs": bottomk.entry_count(),
                }
            )
    register_table(
        "Ablation sketch backends (vHLL beta=512 vs bottom-k k=64)",
        rows,
        note="vHLL matches or beats bottom-k accuracy wherever windowed "
        "merging matters, at comparable stored pairs.",
    )
    mean_vhll = sum(r["vhll_err"] for r in rows) / len(rows)
    mean_bottomk = sum(r["bottomk_err"] for r in rows) / len(rows)
    assert mean_vhll <= mean_bottomk * 1.2

    log = small_catalog_logs["slashdot-sim"]
    benchmark(BottomKIRS.from_log, log, log.window_from_percent(10), 64)


def test_ablation_multiwindow_index(benchmark, small_catalog_logs):
    """One MultiWindowIRS build vs one ExactIRS build per queried window.

    The multi-window index answers *every* omega; this quantifies its
    overhead against the W separate single-window builds it replaces."""
    from repro.core.multiwindow import MultiWindowIRS

    windows_pct = (1, 5, 10, 20, 50)
    rows = []
    for name in ("slashdot-sim", "lkml-sim"):
        log = small_catalog_logs[name]
        start = time.perf_counter()
        multi = MultiWindowIRS.from_log(log)
        multi_time = time.perf_counter() - start
        start = time.perf_counter()
        for percent in windows_pct:
            ExactIRS.from_log(log, log.window_from_percent(percent))
        repeated_time = time.perf_counter() - start
        rows.append(
            {
                "dataset": name,
                "multi_s": multi_time,
                "5x_exact_s": repeated_time,
                "multi_entries": multi.entry_count(),
                "max_frontier": multi.max_frontier_length(),
            }
        )
        # Answers must agree at every window (spot-checked here, fully
        # verified in the test-suite).
        for percent in windows_pct:
            window = log.window_from_percent(percent)
            reference = ExactIRS.from_log(log, window)
            for node in list(log.nodes)[:25]:
                assert multi.reachability_set(node, window) == (
                    reference.reachability_set(node)
                )
    register_table(
        "Ablation multi-window index vs repeated exact builds",
        rows,
        note="one build answers every omega; on dense-reachability logs the "
        "frontiers grow (lkml max 50), so it beats repeated builds only "
        "when many more than ~20 windows are queried.",
    )

    log = small_catalog_logs["slashdot-sim"]
    benchmark(MultiWindowIRS.from_log, log)


def test_ablation_tcic_judge_variants(benchmark, small_catalog_logs):
    """The literal Algorithm 1 (seed clock resets per interaction) always
    spreads at least as far as the prose variant, often far more."""
    rows = []
    for name in ("lkml-sim", "slashdot-sim"):
        log = small_catalog_logs[name]
        window = log.window_from_percent(1)
        seeds = sorted(log.nodes, key=repr)[:10]
        literal = estimate_spread(
            log, seeds, window, 1.0, reset_seed_clock=True
        ).mean
        prose = estimate_spread(
            log, seeds, window, 1.0, reset_seed_clock=False
        ).mean
        rows.append(
            {
                "dataset": name,
                "literal_spread": literal,
                "prose_spread": prose,
            }
        )
    register_table(
        "Ablation TCIC judge variants (p=1, omega=1%)",
        rows,
        note="literal pseudo-code >= prose; the paper's Figure 5 behaviour "
        "matches the literal reading.",
    )
    for row in rows:
        assert row["literal_spread"] >= row["prose_spread"]

    log = small_catalog_logs["slashdot-sim"]
    seeds = sorted(log.nodes, key=repr)[:10]
    window = log.window_from_percent(1)
    benchmark(
        estimate_spread, log, seeds, window, 0.5, 5, 3
    )
