"""Table 2 — characteristics of the (simulated) interaction networks.

Paper reports |V|, |E| and the day span of six real datasets; this bench
reports the same statistics for their synthetic stand-ins (scaled /100,
US-2016 /1000 — see DESIGN.md §2) and times dataset generation.
"""

from conftest import register_table

from repro.datasets.catalog import CATALOG, load_dataset


def test_table2_dataset_characteristics(benchmark, catalog_logs):
    rows = []
    for name, log in catalog_logs.items():
        spec = CATALOG[name]
        rows.append(
            {
                "dataset": name,
                "paper": spec.paper_name,
                "nodes": log.num_nodes,
                "interactions": log.num_interactions,
                "days": spec.days,
                "span_ticks": log.time_span,
            }
        )
    register_table(
        "Table2 dataset characteristics",
        rows,
        note="|V|,|E| are Table 2's values /100 (US-2016 /1000); day counts kept.",
    )
    benchmark(load_dataset, "slashdot-sim", rng=1)
