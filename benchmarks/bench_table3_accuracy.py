"""Table 3 — average relative error of the IRS-size estimate.

Paper: error falls from ≈0.05–0.12 at β=16 to ≈0.002–0.02 at β=512, with a
mild increase for longer windows; measured on Higgs and Slashdot (the two
datasets whose exact index fits in memory).  Same grid here on higgs-sim
and slashdot-sim.
"""

import pytest
from conftest import register_table

from repro.analysis.experiments import accuracy_experiment
from repro.analysis.grid import (
    ACCURACY_DATASETS,
    BETAS,
    DEFAULT_PRECISION,
    WINDOW_PERCENTS as WINDOWS,
)
from repro.core.approx import ApproxIRS


def test_table3_accuracy(benchmark, catalog_logs):
    rows = []
    for name in ACCURACY_DATASETS:
        log = catalog_logs[name]
        rows.extend(
            accuracy_experiment(log, name, betas=BETAS, window_percents=WINDOWS)
        )
    register_table(
        "Table3 avg relative IRS-size error",
        rows,
        note="error falls with beta (paper: ~0.1 at 16 -> ~0.005 at 512).",
    )
    # Shape assertions: error at beta=512 beats beta=16 on every dataset+window.
    by_key = {(r["dataset"], r["window_pct"], r["beta"]): r["avg_rel_error"] for r in rows}
    for name in ACCURACY_DATASETS:
        for window in WINDOWS:
            assert by_key[(name, window, 512)] <= by_key[(name, window, 16)] + 1e-9

    log = catalog_logs["slashdot-sim"]
    window = log.window_from_percent(10)
    benchmark(ApproxIRS.from_log, log, window, DEFAULT_PRECISION)
