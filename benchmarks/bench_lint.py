"""Lint engine throughput over the real ``src/repro`` tree.

Not a paper table — this tracks the cost of the static-analysis gate
itself so the whole-program rules (project index + call graph) stay
cheap enough to run on every commit.  Three timings: serial, parallel
parse (``--jobs 2``), and the per-file rules alone (the difference to
the full run is the price of the cross-module analysis).
"""

from pathlib import Path

from conftest import register_table

import repro
from repro.lint import LintEngine, expand_rule_selectors
from repro.lint.rules import all_rules, select_rules

SRC_ROOT = Path(repro.__file__).resolve().parent

FILE_RULE_IDS = [rule.rule_id for rule in all_rules() if not rule.project_scope]
HOTPATH_RULE_IDS = expand_rule_selectors(["R3"])
NON_HOTPATH_RULE_IDS = [
    rule.rule_id for rule in all_rules() if rule.rule_id not in HOTPATH_RULE_IDS
]


def test_lint_whole_tree_serial(benchmark):
    engine = LintEngine(jobs=1)
    violations, files_checked = benchmark(engine.lint_paths, [SRC_ROOT])
    assert violations == []
    register_table(
        "Lint engine over src/repro",
        [
            {
                "files": files_checked,
                "rules": len(all_rules()),
                "file_rules": len(FILE_RULE_IDS),
                "project_rules": len(all_rules()) - len(FILE_RULE_IDS),
                "violations": len(violations),
            }
        ],
        note="timings in the pytest-benchmark table above (serial/parallel/file-only)",
    )


def test_lint_whole_tree_parallel(benchmark):
    engine = LintEngine(jobs=2)
    violations, _ = benchmark(engine.lint_paths, [SRC_ROOT])
    assert violations == []


def test_lint_file_rules_only(benchmark):
    engine = LintEngine(select_rules(FILE_RULE_IDS))
    violations, _ = benchmark(engine.lint_paths, [SRC_ROOT])
    assert violations == []


def test_lint_hotpath_rules_only(benchmark):
    """Cost of the R301–R305 hot-region analysis alone.

    The hot-region closure (benchmark-root seeding + call-graph BFS +
    the five checkers) runs once per index and is cached, so this case
    prices the whole hot-path family; comparing against the run below
    (everything *except* R3xx) isolates its share of the full gate.
    """
    engine = LintEngine(select_rules(HOTPATH_RULE_IDS))
    violations, _ = benchmark(engine.lint_paths, [SRC_ROOT])
    assert violations == []


def test_lint_without_hotpath_rules(benchmark):
    engine = LintEngine(select_rules(NON_HOTPATH_RULE_IDS))
    violations, _ = benchmark(engine.lint_paths, [SRC_ROOT])
    assert violations == []
