"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
computed rows are (a) written to ``benchmarks/results/<name>.txt`` and
(b) echoed into the terminal summary after the pytest-benchmark timing
table, so that ``pytest benchmarks/ --benchmark-only`` shows the
reproduction output without extra flags.

Datasets are generated once per session and shared across benchmarks via
the ``catalog_logs`` fixture.

When observability is on (``REPRO_OBS=1``) the session additionally writes
``benchmarks/results/metrics.jsonl`` — the full metric snapshot of the run
— and prints the human-readable report after the reproduction tables.

When ``REPRO_BENCH_SNAPSHOT=<path>`` is set the session also writes a
schema-versioned performance snapshot (``repro-bench/1``: per-benchmark
median/q1/q3/iqr plus obs counters) for ``repro obs diff`` — the CI
trend gate's input (see :mod:`repro.obs.trend`).
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

import repro.obs as obs
from repro.analysis.metrics import format_table
from repro.core.interactions import InteractionLog
from repro.datasets.catalog import dataset_names, load_dataset
from repro.obs import trend

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_SNAPSHOT_ENV = "REPRO_BENCH_SNAPSHOT"

_TABLES: List[str] = []


def register_table(name: str, rows: List[Dict[str, object]], note: str = "") -> None:
    """Persist and queue one reproduction table for the terminal summary."""
    rendered = format_table(rows, title=name)
    if note:
        rendered += f"\n  paper shape: {note}"
    register_text(name, rendered)


def register_text(name: str, rendered: str) -> None:
    """Persist and queue arbitrary pre-rendered output (tables, charts)."""
    _TABLES.append(rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = name.split(" ")[0].lower().replace("/", "-")
    with open(os.path.join(RESULTS_DIR, f"{safe}.txt"), "w", encoding="utf-8") as out:
        out.write(rendered + "\n")


def bench_session_entries(config) -> List[Dict[str, object]]:
    """Per-benchmark timing entries from the pytest-benchmark session."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    entries: List[Dict[str, object]] = []
    for bench in session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue  # collected but never ran (e.g. --benchmark-skip)
        entries.append(
            {
                "name": bench.name,
                "median": stats.median,
                "q1": stats.q1,
                "q3": stats.q3,
                "iqr": stats.iqr,
                "rounds": stats.rounds,
                "mean": stats.mean,
                "stddev": stats.stddev,
                "group": getattr(bench, "group", None),
            }
        )
    return entries


def obs_counter_values() -> Dict[str, float]:
    """Non-zero counter samples keyed ``name{label=value,...}``."""
    counters: Dict[str, float] = {}
    for sample in obs.snapshot(include_spans=False):
        if sample.get("type") != "counter" or not sample.get("value"):
            continue
        labels = sample.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        key = sample["name"] + (f"{{{label_text}}}" if label_text else "")
        counters[key] = float(sample["value"])
    return counters


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _TABLES:
        terminalreporter.section("paper reproduction tables")
        for table in _TABLES:
            terminalreporter.write_line("")
            for line in table.splitlines():
                terminalreporter.write_line(line)
    if obs.enabled():
        os.makedirs(RESULTS_DIR, exist_ok=True)
        snapshot_path = os.path.join(RESULTS_DIR, "metrics.jsonl")
        obs.write_snapshot(snapshot_path)
        terminalreporter.section("observability snapshot (REPRO_OBS)")
        terminalreporter.write_line(f"wrote {snapshot_path}")
        terminalreporter.write_line("")
        for line in obs.render_report(obs.snapshot()).splitlines():
            terminalreporter.write_line(line)
    bench_path = os.environ.get(BENCH_SNAPSHOT_ENV, "")
    if bench_path:
        entries = bench_session_entries(config)
        if entries:
            snapshot = trend.bench_snapshot(
                entries,
                counters=obs_counter_values(),
                context={
                    "suite": "benchmarks",
                    "keyword": config.getoption("-k", default="") or "",
                    "benchmark_count": len(entries),
                },
            )
            trend.write_bench_snapshot(bench_path, snapshot)
            terminalreporter.section("performance snapshot (REPRO_BENCH_SNAPSHOT)")
            terminalreporter.write_line(
                f"wrote {bench_path} ({len(entries)} benchmarks, "
                f"schema {trend.BENCH_SCHEMA})"
            )
        else:
            terminalreporter.write_line(
                f"REPRO_BENCH_SNAPSHOT set but no benchmarks ran; {bench_path} "
                "not written"
            )


@pytest.fixture(scope="session")
def catalog_logs() -> Dict[str, InteractionLog]:
    """All six catalog datasets at full catalog scale, seed 1."""
    return {name: load_dataset(name, rng=1) for name in dataset_names()}


@pytest.fixture(scope="session")
def small_catalog_logs(catalog_logs) -> Dict[str, InteractionLog]:
    """The four datasets small enough for exact-index experiments."""
    keep = ("enron-sim", "lkml-sim", "facebook-sim", "slashdot-sim")
    return {name: catalog_logs[name] for name in keep}
