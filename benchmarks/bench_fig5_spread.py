"""Figure 5 — TCIC spread of each method's top-k seeds.

Paper: twelve panels — Lkml/Enron/Facebook × ω ∈ {1 %, 20 %} × infection
probability ∈ {50 %, 100 %} — showing IRS(Exact) consistently on top,
IRS(Approx) close behind, SKIM/ConTinEst weakest at small windows and
catching up at ω = 20 %, and SHD ≥ HD throughout.

This bench reproduces the full grid on the simulated datasets (a reduced k
grid and Monte-Carlo budget keep the pure-Python run in minutes) and
asserts the headline shape: at the small window, greedy-IRS seeds beat the
static baselines on average.
"""

from conftest import register_table, register_text

from repro.analysis.experiments import spread_comparison
from repro.analysis.grid import (
    DEFAULT_PRECISION,
    SPREAD_DATASETS,
    SPREAD_KS,
    SPREAD_METHODS,
    SPREAD_PROBABILITIES,
    SPREAD_WINDOW_PERCENTS,
)
from repro.analysis.metrics import summarize
from repro.analysis.plots import ascii_chart, series_from_rows
from repro.core.approx import ApproxIRS
from repro.core.maximization import greedy_top_k
from repro.core.oracle import ApproxInfluenceOracle


def test_fig5_spread_comparison(benchmark, small_catalog_logs):
    rows = []
    for name in SPREAD_DATASETS:
        log = small_catalog_logs[name]
        rows.extend(
            spread_comparison(
                log,
                name,
                ks=SPREAD_KS,
                window_percents=SPREAD_WINDOW_PERCENTS,
                probabilities=SPREAD_PROBABILITIES,
                methods=SPREAD_METHODS,
                runs=3,
                precision=DEFAULT_PRECISION,
                rng=17,
            )
        )
    register_table(
        "Fig5 TCIC spread of top-k seeds",
        rows,
        note="IRS(exact) tops or ties each panel; SKIM/CTE weakest at 1%.",
    )
    panels = []
    for name in SPREAD_DATASETS:
        for window in SPREAD_WINDOW_PERCENTS:
            panels.append(
                ascii_chart(
                    series_from_rows(
                        rows,
                        x="k",
                        y="spread",
                        series="method",
                        where={
                            "dataset": name,
                            "window_pct": window,
                            "probability": 1.0,
                        },
                    ),
                    title=f"Fig5 panel {name} omega={window}% p=1.0",
                    width=48,
                    height=12,
                )
            )
    register_text("Fig5-charts", "\n\n".join(panels))

    # Headline shape: averaged over datasets and k at (1%, p=1.0), the
    # exact-IRS seeds dominate the pure-static rankings (PR and HD).
    def mean_spread(method):
        values = [
            r["spread"]
            for r in rows
            if r["method"] == method
            and r["window_pct"] == 1
            and r["probability"] == 1.0
        ]
        return summarize(values).mean

    assert mean_spread("IRS") >= mean_spread("PR") * 0.95
    assert mean_spread("IRS") >= mean_spread("HD") * 0.95

    log = small_catalog_logs["facebook-sim"]
    window = log.window_from_percent(1)

    def irs_select():
        index = ApproxIRS.from_log(log, window, precision=DEFAULT_PRECISION)
        return greedy_top_k(ApproxInfluenceOracle.from_index(index), 10)

    benchmark.pedantic(irs_select, rounds=2, iterations=1)
