"""Figure 3 — one-pass processing time as a function of the window length.

Paper: log-scale time rises with ω and becomes almost flat past ω ≈ 10 %
(the IRS stops changing once the window is large enough); the one-pass
algorithm scales linearly with interaction count (US-2016's 45 M
interactions in 8 min).  Same sweep here over all six simulated datasets.
"""

from conftest import register_table, register_text

from repro.analysis.experiments import runtime_experiment
from repro.analysis.grid import DEFAULT_PRECISION, WINDOW_SWEEP
from repro.analysis.plots import ascii_chart, series_from_rows
from repro.core.approx import ApproxIRS


def test_fig3_processing_time(benchmark, catalog_logs):
    rows = runtime_experiment(
        catalog_logs, window_percents=WINDOW_SWEEP, precision=DEFAULT_PRECISION
    )
    register_table(
        "Fig3 processing time vs window (s)",
        rows,
        note="time grows with omega, flattens past ~10-20%; us2016 largest.",
    )
    register_text(
        "Fig3-chart",
        ascii_chart(
            series_from_rows(rows, x="window_pct", y="seconds", series="dataset"),
            title="Fig3 log10(processing seconds) vs window % (cf. paper Fig. 3)",
            log_y=True,
        ),
    )
    # Shape: the 100% run is never faster than the 1% run on big datasets.
    by_key = {(r["dataset"], r["window_pct"]): r["seconds"] for r in rows}
    assert by_key[("us2016-sim", 100)] >= by_key[("us2016-sim", 1)] * 0.8

    log = catalog_logs["higgs-sim"]
    window = log.window_from_percent(10)
    benchmark(ApproxIRS.from_log, log, window, DEFAULT_PRECISION)
