"""Auto-generated experiment report (benchmarks/results/report.md).

Runs :func:`repro.analysis.report.generate_report` at a reduced scale and
persists the markdown — the one-file artefact a reviewer can diff against
EXPERIMENTS.md's recorded numbers.
"""

import os

from conftest import RESULTS_DIR, register_text

import repro.obs as obs
from repro.analysis.report import generate_report

_EXCERPT_METRICS = (
    "exact.interactions",
    "approx.interactions",
    "vhll.cell_list_len",
    "summary.bytes",
    "oracle.query_seconds",
    "maximization.gain_evaluations",
)


def test_report_generation(benchmark):
    rendered = generate_report(scale=0.2, seed=1, precision=9)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "report.md")
    with open(path, "w", encoding="utf-8") as out:
        out.write(rendered + "\n")
    register_text(
        "Report auto-generated",
        f"full experiment report written to {path} "
        f"({len(rendered.splitlines())} lines)",
    )
    assert "# Experiment report" in rendered
    for heading in ("Table 2", "Table 5", "Figure 5"):
        assert heading in rendered

    if obs.enabled():
        excerpt = [
            sample
            for sample in obs.snapshot(include_spans=False)
            if sample["name"] in _EXCERPT_METRICS
        ]
        register_text(
            "Observability excerpt (report run)", obs.render_report(excerpt)
        )

    benchmark.pedantic(
        generate_report,
        kwargs={"scale": 0.05, "seed": 1, "sections": ("table2",), "precision": 6},
        rounds=2,
        iterations=1,
    )
