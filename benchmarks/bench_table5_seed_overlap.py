"""Table 5 — common seeds between different window lengths (top 10).

Paper: almost no overlap between the 1 % and 10 % seed sets (0–6 common
seeds) but substantial overlap between 10 % and 20 % (3–10) — the window
length materially changes who is influential, which is the paper's closing
argument for window-aware influence maximization.
"""

from conftest import register_table

from repro.analysis.experiments import seed_overlap_experiment
from repro.analysis.grid import DEFAULT_PRECISION, OVERLAP_K, WINDOW_PERCENTS


def test_table5_seed_overlap(benchmark, catalog_logs):
    rows = seed_overlap_experiment(
        catalog_logs,
        window_percents=WINDOW_PERCENTS,
        k=OVERLAP_K,
        precision=DEFAULT_PRECISION,
    )
    register_table(
        "Table5 common top-10 seeds across windows",
        rows,
        note="1% vs 10% overlap small; 10% vs 20% overlap large (paper).",
    )
    # Shape: on average across datasets, adjacent windows (10-20%) share at
    # least as many seeds as the far pair (1-10%).
    near = sum(row["common_10pct_20pct"] for row in rows)
    far = sum(row["common_1pct_10pct"] for row in rows)
    assert near >= far

    def overlap_once():
        return seed_overlap_experiment(
            {"slashdot-sim": catalog_logs["slashdot-sim"]},
            window_percents=(1, 10),
            k=OVERLAP_K,
            precision=DEFAULT_PRECISION,
        )

    benchmark.pedantic(overlap_once, rounds=2, iterations=1)
