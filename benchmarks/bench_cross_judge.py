"""Cross-judge robustness of the Figure 5 ranking (extension).

The paper scores every method under its own TCIC model.  A fair question
is whether the IRS advantage is an artefact of that judge.  This bench
re-scores the same seed sets under the structurally different
Time-Constrained **Linear Threshold** judge (`repro.simulation.tclt`) and
reports both rankings side by side: the method ordering should be broadly
stable (IRS at or near the top under both), evidence the seeds are good
per se rather than tuned to one propagation model.
"""

from conftest import register_table

from repro.analysis.experiments import select_seeds
from repro.simulation.spread import estimate_spread
from repro.simulation.tclt import estimate_tclt_spread
from repro.utils.rng import resolve_rng, spawn_rng

METHODS = ("PR", "HD", "SHD", "IRS", "IRS-approx")
K = 30


def test_cross_judge_ranking(benchmark, small_catalog_logs):
    rows = []
    generator = resolve_rng(31)
    for name in ("enron-sim", "facebook-sim"):
        log = small_catalog_logs[name]
        window = log.window_from_percent(1)
        for stream, method in enumerate(METHODS):
            seeds = select_seeds(
                log, method, K, window, precision=9, rng=spawn_rng(generator, stream)
            )
            tcic = estimate_spread(log, seeds, window, 1.0).mean
            tclt = estimate_tclt_spread(log, seeds, window, runs=3, rng=11)
            rows.append(
                {
                    "dataset": name,
                    "method": method,
                    "tcic_spread": tcic,
                    "tclt_spread": tclt,
                }
            )
    register_table(
        "Cross-judge spread of top-30 seeds (omega=1%)",
        rows,
        note="method ordering is broadly stable across the IC and LT "
        "judges; IRS stays at or near the top under both.",
    )
    # Robustness assertion: under the LT judge, IRS seeds stay within 10%
    # of the best method on every dataset.
    for name in ("enron-sim", "facebook-sim"):
        subset = {r["method"]: r["tclt_spread"] for r in rows if r["dataset"] == name}
        assert subset["IRS"] >= 0.9 * max(subset.values())

    log = small_catalog_logs["enron-sim"]
    window = log.window_from_percent(1)
    seeds = select_seeds(log, "HD", K, window)
    benchmark.pedantic(
        estimate_tclt_spread,
        args=(log, seeds, window),
        kwargs={"runs": 2, "rng": 1},
        rounds=2,
        iterations=1,
    )
