"""Table 6 — time (seconds) to find the top-50 seeds per method.

Paper: degree heuristics are fastest; SKIM is fast after preprocessing;
IRS costs more on interaction-heavy datasets (its one-pass index build
scales with |E|, included in the timing); ConTinEst is slowest everywhere
and fails on the largest dataset.  The IRS column here is IRS(approx),
matching the paper.
"""

from conftest import register_table

from repro.analysis.experiments import seed_time_experiment
from repro.analysis.grid import (
    DEFAULT_PRECISION,
    SEED_TIME_K,
    SEED_TIME_METHODS,
    SEED_TIME_WINDOW_PERCENT,
)
from repro.analysis.metrics import summarize


def test_table6_seed_selection_time(benchmark, small_catalog_logs):
    rows = seed_time_experiment(
        small_catalog_logs,
        k=SEED_TIME_K,
        window_percent=SEED_TIME_WINDOW_PERCENT,
        methods=SEED_TIME_METHODS,
        precision=DEFAULT_PRECISION,
        rng=23,
    )
    register_table(
        "Table6 seconds to find top-50 seeds",
        rows,
        note="HD fastest; IRS grows with |E| (paper's CTE, run at its full "
        "sample budget, was slowest — ours uses reduced samples).",
    )
    # Shape: HD beats IRS-approx on every dataset (it ignores temporality).
    for row in rows:
        assert row["HD"] <= row["IRS-approx"]

    def hd_only():
        return seed_time_experiment(
            {"slashdot-sim": small_catalog_logs["slashdot-sim"]},
            k=SEED_TIME_K,
            methods=("HD",),
        )

    benchmark.pedantic(hd_only, rounds=3, iterations=1)
