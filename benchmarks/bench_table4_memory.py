"""Table 4 — memory used to process all interactions per window length.

Paper: MB grows with the node count (Higgs ≫ Enron despite fewer
interactions) and mildly with ω.  We report entry-accounted MB of the
sketch index (see repro.analysis.memory for the cost model).
"""

from conftest import register_table

from repro.analysis.experiments import memory_experiment
from repro.analysis.grid import DEFAULT_PRECISION, WINDOW_PERCENTS
from repro.analysis.memory import accounted_bytes
from repro.core.approx import ApproxIRS


def test_table4_memory(benchmark, catalog_logs):
    rows = memory_experiment(
        catalog_logs, window_percents=WINDOW_PERCENTS, precision=DEFAULT_PRECISION
    )
    register_table(
        "Table4 accounted sketch memory (MB)",
        rows,
        note="grows with omega; dominated by node count (us2016 largest).",
    )
    for row in rows:
        assert row["mb_at_20pct"] >= row["mb_at_1pct"] - 1e-12

    log = catalog_logs["slashdot-sim"]
    window = log.window_from_percent(20)

    def build_and_account():
        return accounted_bytes(
            ApproxIRS.from_log(log, window, precision=DEFAULT_PRECISION)
        )

    benchmark(build_and_account)
