"""Serving layer — snapshot I/O, cached vs uncached spread, loadgen run.

Not a paper figure, but the operational face of the paper's headline
claim: because oracle queries are microseconds, a single process can
sustain thousands of influence queries per second.  Four measurements:

* snapshot round trip (save + load) of the sketch oracle;
* ``OracleService.spread`` with a cold cache vs the LRU hit path;
* a 4-thread closed-loop loadgen acceptance run (≥1k requests, zero
  errors tolerated) whose latency percentiles land in the results table;
* ``test_serve_trend_rounds`` — several loadgen rounds aggregated into a
  ``repro-servebench/1`` snapshot (median/IQR of each percentile across
  rounds) written to ``$REPRO_SERVE_SNAPSHOT`` when set, the input of
  the ``repro obs diff`` serve trend gate in CI (baseline:
  ``benchmarks/results/SERVE_8.json``).
"""

import os

import pytest
from conftest import register_text

from repro.core.approx import ApproxIRS
from repro.core.oracle import ApproxInfluenceOracle
from repro.ingest.live import LiveIndex
from repro.obs import trend
from repro.serve.loadgen import ServiceClient, run_loadgen, synth_workload
from repro.serve.service import OracleService
from repro.serve.snapshot import load_oracle, save_oracle

WINDOW_PERCENT = 20
PRECISION = 9
LOADGEN_REQUESTS = 2_000
LOADGEN_THREADS = 4

#: Loadgen rounds aggregated into one serve-trend snapshot; the per-round
#: workload is smaller than the acceptance run so five rounds stay cheap.
TREND_ROUNDS = 5
TREND_REQUESTS = 1_000

SERVE_SNAPSHOT_ENV = "REPRO_SERVE_SNAPSHOT"

#: Mixed read/write trend: this share of requests are /v1/ingest batches.
INGEST_FRACTION = 0.2
INGEST_SNAPSHOT_ENV = "REPRO_INGEST_SNAPSHOT"


@pytest.fixture(scope="module")
def serve_oracle(catalog_logs):
    log = catalog_logs["slashdot-sim"]
    return ApproxInfluenceOracle.from_index(
        ApproxIRS.from_log(log, log.window_from_percent(WINDOW_PERCENT), PRECISION)
    )


@pytest.fixture(scope="module")
def snapshot_path(serve_oracle, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "oracle.snap")
    save_oracle(path, serve_oracle)
    return path


def test_serve_snapshot_round_trip(benchmark, serve_oracle, snapshot_path, tmp_path):
    info = save_oracle(str(tmp_path / "size-probe.snap"), serve_oracle)
    register_text(
        "Serve-snapshot",
        f"Serve snapshot: {info['kind']} oracle, {info['nodes']} nodes, "
        f"{info['bytes']} bytes on disk",
    )

    def round_trip():
        path = str(tmp_path / "bench.snap")
        save_oracle(path, serve_oracle)
        return load_oracle(path)

    loaded = benchmark(round_trip)
    nodes = sorted(serve_oracle.nodes(), key=repr)[:16]
    assert loaded.spread(nodes) == serve_oracle.spread(nodes)


def test_serve_spread_uncached(benchmark, serve_oracle):
    service = OracleService(serve_oracle, cache_size=0)  # cache disabled
    nodes = sorted(serve_oracle.nodes(), key=repr)
    seeds = nodes[:64]
    benchmark(service.spread, seeds)
    assert service.stats()["cache"]["hits"] == 0


def test_serve_spread_cached(benchmark, serve_oracle):
    service = OracleService(serve_oracle, cache_size=64)
    nodes = sorted(serve_oracle.nodes(), key=repr)
    seeds = nodes[:64]
    service.spread(seeds)  # warm the single hot entry
    benchmark(service.spread, seeds)
    stats = service.stats()["cache"]
    assert stats["hits"] >= 1
    assert stats["hit_rate"] > 0.5


def test_serve_loadgen_acceptance(benchmark, serve_oracle):
    """4 threads × 2k requests through the service: zero errors, and the
    latency percentiles + cache hit-rate become a results artifact."""
    service = OracleService(serve_oracle, cache_size=256)
    nodes = sorted(serve_oracle.nodes(), key=repr)
    workload = synth_workload(nodes, LOADGEN_REQUESTS, rng=13)
    client = ServiceClient(service)

    report = benchmark.pedantic(
        lambda: run_loadgen(client, workload, threads=LOADGEN_THREADS),
        iterations=1,
        rounds=1,
    )
    assert report.errors == 0
    assert report.requests == LOADGEN_REQUESTS
    cache = service.stats()["cache"]
    assert cache["hit_rate"] > 0
    register_text(
        "Serve-loadgen",
        report.table()
        + f"\ncache_hit_rate  {cache['hit_rate']:.1%}"
        + f"\ncache_entries   {cache['size']}/{cache['capacity']}",
    )


def test_serve_trend_rounds(serve_oracle):
    """Aggregate ``TREND_ROUNDS`` loadgen rounds into a serve-trend snapshot.

    Each round drives a deterministic workload (a fresh seed per round,
    so the rounds differ the way real traffic samples do); the across-
    round median/IQR of every latency percentile plus the throughput
    become one ``repro-servebench/1`` document.  Runs as a plain test —
    no ``benchmark`` fixture — so CI invokes it standalone with
    ``-k serve_trend`` and writes the snapshot via the env var.
    """
    service = OracleService(serve_oracle, cache_size=256)
    nodes = sorted(serve_oracle.nodes(), key=repr)
    client = ServiceClient(service)
    reports = []
    for round_index in range(TREND_ROUNDS):
        workload = synth_workload(nodes, TREND_REQUESTS, rng=13 + round_index)
        report = run_loadgen(client, workload, threads=LOADGEN_THREADS)
        assert report.errors == 0
        assert report.requests == TREND_REQUESTS
        reports.append(report.to_dict())
    snapshot = trend.serve_bench_snapshot(
        reports,
        context={
            "suite": "bench_serve",
            "rounds": TREND_ROUNDS,
            "requests_per_round": TREND_REQUESTS,
            "threads": LOADGEN_THREADS,
            "dataset": "slashdot-sim",
            "window_percent": WINDOW_PERCENT,
            "precision": PRECISION,
        },
    )
    by_name = {entry["name"]: entry for entry in snapshot["benchmarks"]}
    lines = [
        f"{name:<26} median {entry['median']:>10.3f}  "
        f"iqr {entry['iqr']:>8.3f}  ({TREND_ROUNDS} rounds)"
        for name, entry in sorted(by_name.items())
    ]
    register_text("Serve-trend", "\n".join(lines))
    path = os.environ.get(SERVE_SNAPSHOT_ENV, "")
    if path:
        trend.write_bench_snapshot(path, snapshot)


def test_serve_mixed_ingest_rounds(serve_oracle):
    """Query latency under concurrent ingestion, as a serve-trend snapshot.

    Same aggregation as :func:`test_serve_trend_rounds`, but
    ``INGEST_FRACTION`` of each round's requests are write batches
    applied to a live index through the same worker pool — so the read
    percentiles here measure the cost of sharing the process with the
    writer-priority ingest lock (baseline:
    ``benchmarks/results/INGEST_10.json``).
    """
    service = OracleService(serve_oracle, cache_size=256)
    nodes = sorted(serve_oracle.nodes(), key=repr)
    reports = []
    for round_index in range(TREND_ROUNDS):
        live = LiveIndex(window=10_000, decay_window=50_000)
        client = ServiceClient(service, live=live)
        workload = synth_workload(
            nodes,
            TREND_REQUESTS,
            rng=29 + round_index,
            ingest_fraction=INGEST_FRACTION,
        )
        report = run_loadgen(client, workload, threads=LOADGEN_THREADS)
        assert report.errors == 0
        assert report.requests == TREND_REQUESTS
        assert report.per_endpoint.get("ingest", 0) > 0
        assert live.stats()["events_applied"] > 0
        reports.append(report.to_dict())
    snapshot = trend.serve_bench_snapshot(
        reports,
        context={
            "suite": "bench_serve",
            "mode": "mixed-ingest",
            "ingest_fraction": INGEST_FRACTION,
            "rounds": TREND_ROUNDS,
            "requests_per_round": TREND_REQUESTS,
            "threads": LOADGEN_THREADS,
            "dataset": "slashdot-sim",
            "window_percent": WINDOW_PERCENT,
            "precision": PRECISION,
        },
    )
    by_name = {entry["name"]: entry for entry in snapshot["benchmarks"]}
    lines = [
        f"{name:<26} median {entry['median']:>10.3f}  "
        f"iqr {entry['iqr']:>8.3f}  ({TREND_ROUNDS} rounds)"
        for name, entry in sorted(by_name.items())
    ]
    register_text("Serve-mixed-ingest", "\n".join(lines))
    path = os.environ.get(INGEST_SNAPSHOT_ENV, "")
    if path:
        trend.write_bench_snapshot(path, snapshot)
