"""Figure 4 — influence-oracle query time vs seed-set size.

Paper: query time is a few milliseconds even for 10 000 seeds, grows
roughly linearly with the seed count and is *independent of the graph
size* (sketch union is cell-wise max).  Same measurement here, on the
smallest and the largest dataset to exhibit the independence.
"""

import pytest
from conftest import register_table, register_text

from repro.analysis.plots import ascii_chart, series_from_rows
from repro.analysis.experiments import oracle_query_experiment
from repro.analysis.grid import (
    DEFAULT_PRECISION,
    QUERY_DATASETS,
    QUERY_WINDOW_PERCENT,
    SEED_COUNTS,
)
from repro.core.approx import ApproxIRS
from repro.core.oracle import ApproxInfluenceOracle


def test_fig4_oracle_query_time(benchmark, catalog_logs):
    rows = []
    for name in QUERY_DATASETS:
        rows.extend(
            oracle_query_experiment(
                catalog_logs[name],
                name,
                seed_counts=SEED_COUNTS,
                window_percent=QUERY_WINDOW_PERCENT,
                precision=DEFAULT_PRECISION,
                repetitions=3,
                rng=5,
            )
        )
    register_table(
        "Fig4 oracle query time (ms) vs seeds",
        rows,
        note="near-linear in |S|; similar for small and huge graphs.",
    )
    register_text(
        "Fig4-chart",
        ascii_chart(
            series_from_rows(rows, x="num_seeds", y="milliseconds", series="dataset"),
            title="Fig4 oracle query ms vs seed count (cf. paper Fig. 4)",
        ),
    )
    by_key = {(r["dataset"], r["num_seeds"]): r["milliseconds"] for r in rows}
    for name in QUERY_DATASETS:
        assert by_key[(name, 10_000)] >= by_key[(name, 10)]

    log = catalog_logs["slashdot-sim"]
    oracle = ApproxInfluenceOracle.from_index(
        ApproxIRS.from_log(
            log,
            log.window_from_percent(QUERY_WINDOW_PERCENT),
            precision=DEFAULT_PRECISION,
        )
    )
    nodes = sorted(log.nodes, key=repr)
    seeds = [nodes[i % len(nodes)] for i in range(1_000)]
    benchmark(oracle.spread, seeds)
