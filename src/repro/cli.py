"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the typical workflow end to end:

* ``generate`` — materialise a catalog dataset (or a generator) to an
  edge-list file;
* ``stats``    — basic statistics of an interaction log;
* ``topk``     — top-k influencers by IRS greedy (exact or sketch), or by
  one of the baselines;
* ``spread``   — expected TCIC spread of a given seed set;
* ``explain``  — reconstruct the information channel behind an influence
  claim ("how could u have influenced v within ω?");
* ``report``   — regenerate the full experiment report (markdown) at a
  chosen scale;
* ``obs``      — observability utilities: render a recorded metrics
  snapshot (``obs report``), compare two benchmark snapshots under the
  regression gate (``obs diff``), or evaluate per-route serving SLOs
  against a metrics snapshot (``obs slo``);
* ``xp``       — experiment-matrix orchestration: execute a declared
  matrix resumably into a ``repro-xp/1`` run directory (``xp run``),
  render significance-tested evidence reports (``xp report``), compare
  two runs under the trend-delta gate (``xp diff``), or list persisted
  cells (``xp ls``) — see :mod:`repro.xp`;
* ``snapshot`` — build an influence oracle from an edge list and persist
  it as a ``repro-snap/1`` file (``snapshot save``), or verify and
  summarise an existing one (``snapshot load``);
* ``serve``    — boot the JSON-over-HTTP oracle server from a snapshot
  (see :mod:`repro.serve.http`; SIGTERM drains gracefully); ``--live``
  adds the ``/v1/ingest`` + ``/v1/topk_live`` live-ingestion routes and
  ``--publish-path`` a periodic snapshot publisher;
* ``ingest``   — live-stream client: tail an interaction log into a
  running server (``ingest tail``) or print the continuously maintained
  top-k influencers (``ingest topk``) — see :mod:`repro.ingest`.

Every command reads/writes the whitespace ``source target time`` edge-list
format of :meth:`repro.core.interactions.InteractionLog.read`.

Observability: pass ``--obs`` to any command to record metrics for the
invocation and print the human-readable report afterwards, or
``--obs-output PATH`` to write the snapshot to a file instead (format
inferred from the suffix, see :func:`repro.obs.write_snapshot`).
``--profile`` additionally installs the span-integrated wall-time
profiler and prints the hottest frames after the command
(``--profile-output`` writes the flamegraph-ready collapsed stacks);
``--memprof`` attributes tracemalloc deltas to the span tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import repro.obs as obs
from repro.analysis.experiments import ALL_METHODS, select_seeds
from repro.obs import from_jsonl, render_report, to_jsonl, to_prometheus, trend
from repro.core.interactions import InteractionLog
from repro.datasets.catalog import dataset_names, load_dataset
from repro.ingest.live import LIVE_MODES
from repro.simulation.spread import estimate_spread

__all__ = ["main", "build_parser"]

_METHOD_ALIASES = {
    "irs": "IRS",
    "irs-approx": "IRS-approx",
    "pagerank": "PR",
    "pr": "PR",
    "hd": "HD",
    "high-degree": "HD",
    "shd": "SHD",
    "smart-high-degree": "SHD",
    "skim": "SKIM",
    "cte": "CTE",
    "continest": "CTE",
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Influence analysis on interaction networks "
        "(Kumar & Calders, EDBT 2017 reproduction).",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="record metrics for this invocation and print a report afterwards",
    )
    parser.add_argument(
        "--obs-output",
        default="",
        metavar="PATH",
        help="write the metrics snapshot to PATH (implies --obs; "
        ".prom -> prometheus text, .txt -> table, else JSON lines)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="install the span-integrated wall-time profiler for this "
        "invocation and print the hottest frames afterwards",
    )
    parser.add_argument(
        "--profile-output",
        default="",
        metavar="PATH",
        help="write the collapsed-stack profile (flamegraph input) to PATH "
        "(implies --profile)",
    )
    parser.add_argument(
        "--memprof",
        action="store_true",
        help="attribute tracemalloc allocation deltas to the span tree and "
        "print the breakdown afterwards",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic catalog dataset to an edge list"
    )
    generate.add_argument(
        "--dataset", required=True, choices=dataset_names(), help="catalog name"
    )
    generate.add_argument("--scale", type=float, default=1.0, help="size multiplier")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--output", "-o", required=True, help="edge-list file to write"
    )

    stats = commands.add_parser("stats", help="summarise an interaction log")
    stats.add_argument("log", help="edge-list file (source target time per line)")

    topk = commands.add_parser("topk", help="find the top-k influencers")
    topk.add_argument("log", help="edge-list file")
    topk.add_argument("--k", type=int, default=10, help="number of seeds")
    topk.add_argument(
        "--window-percent",
        type=float,
        default=10.0,
        help="omega as %% of the log's time span",
    )
    topk.add_argument(
        "--method",
        default="irs-approx",
        choices=sorted(_METHOD_ALIASES),
        help="selection method",
    )
    topk.add_argument(
        "--precision", type=int, default=9, help="sketch index bits (beta = 2^p)"
    )
    topk.add_argument("--seed", type=int, default=0, help="rng seed for randomised methods")

    spread = commands.add_parser(
        "spread", help="expected TCIC spread of a seed set"
    )
    spread.add_argument("log", help="edge-list file")
    spread.add_argument(
        "--seeds", required=True, help="comma-separated seed node names"
    )
    spread.add_argument(
        "--window-percent", type=float, default=10.0, help="omega as %% of span"
    )
    spread.add_argument(
        "--probability", type=float, default=0.5, help="infection probability"
    )
    spread.add_argument("--runs", type=int, default=20, help="Monte-Carlo cascades")
    spread.add_argument("--seed", type=int, default=0, help="rng seed")

    explain = commands.add_parser(
        "explain", help="show a witness channel between two nodes"
    )
    explain.add_argument("log", help="edge-list file")
    explain.add_argument("--source", required=True, help="influencing node")
    explain.add_argument("--target", required=True, help="influenced node")
    explain.add_argument(
        "--window-percent", type=float, default=10.0, help="omega as %% of span"
    )

    report = commands.add_parser(
        "report", help="regenerate the experiment report (markdown)"
    )
    report.add_argument(
        "--scale", type=float, default=0.2, help="catalog size multiplier"
    )
    report.add_argument("--seed", type=int, default=1, help="generator seed")
    report.add_argument(
        "--sections",
        default="",
        help="comma-separated subset of sections (default: all)",
    )
    report.add_argument(
        "--output", "-o", default="", help="write to this file instead of stdout"
    )

    obs_cmd = commands.add_parser(
        "obs", help="observability utilities (snapshots, trend diffs)"
    )
    obs_actions = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_actions.add_parser(
        "report", help="render a JSON-lines metrics snapshot"
    )
    obs_report.add_argument(
        "--input", "-i", required=True, help="JSON-lines snapshot file"
    )
    obs_report.add_argument(
        "--format",
        choices=("table", "prometheus", "jsonl"),
        default="table",
        help="output rendering (default: table)",
    )
    obs_diff = obs_actions.add_parser(
        "diff",
        help="compare two BENCH_<n>.json benchmark snapshots "
        "(exit 1 on regression unless --warn-only)",
    )
    obs_diff.add_argument("old", help="baseline bench snapshot (JSON)")
    obs_diff.add_argument("new", help="candidate bench snapshot (JSON)")
    obs_diff.add_argument(
        "--threshold",
        type=float,
        default=trend.DEFAULT_THRESHOLD,
        help="relative median slowdown tolerated before the IQR rule is "
        "consulted (default: %(default)s)",
    )
    obs_diff.add_argument(
        "--format",
        choices=("table", "json", "markdown"),
        default="table",
        help="output rendering (default: table)",
    )
    obs_diff.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI soft gate)",
    )
    obs_slo = obs_actions.add_parser(
        "slo",
        help="evaluate per-route serving SLOs against a metrics snapshot",
    )
    obs_slo.add_argument(
        "--input", "-i", required=True, help="JSON-lines metrics snapshot file"
    )
    obs_slo.add_argument(
        "--spec",
        default="",
        metavar="PATH",
        help="JSON SLO spec file (default: the built-in per-route objectives)",
    )
    obs_slo.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output rendering (default: table)",
    )
    obs_slo.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any route breaches its SLO (CI gate)",
    )

    from repro.xp.cli import add_xp_parser

    add_xp_parser(commands)

    from repro.ingest.cli import add_ingest_parser

    add_ingest_parser(commands)

    snapshot_cmd = commands.add_parser(
        "snapshot", help="build/inspect repro-snap/1 oracle snapshots"
    )
    snapshot_actions = snapshot_cmd.add_subparsers(dest="snapshot_command", required=True)
    snapshot_save = snapshot_actions.add_parser(
        "save", help="build an oracle from an edge list and write a snapshot"
    )
    snapshot_save.add_argument("log", help="edge-list file")
    snapshot_save.add_argument(
        "--kind",
        choices=("exact", "approx"),
        default="approx",
        help="oracle flavour to build (default: approx)",
    )
    snapshot_save.add_argument(
        "--window-percent",
        type=float,
        default=10.0,
        help="omega as %% of the log's time span",
    )
    snapshot_save.add_argument(
        "--precision", type=int, default=9, help="sketch index bits (approx only)"
    )
    snapshot_save.add_argument(
        "--output", "-o", required=True, help="snapshot file to write"
    )
    snapshot_load = snapshot_actions.add_parser(
        "load", help="load a snapshot back, verify CRCs, print a summary"
    )
    snapshot_load.add_argument("snapshot", help="repro-snap/1 file")

    serve_cmd = commands.add_parser(
        "serve", help="serve influence queries over HTTP from a snapshot"
    )
    serve_cmd.add_argument("snapshot", help="repro-snap/1 oracle snapshot")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8750, help="bind port (0 picks a free one)"
    )
    serve_cmd.add_argument(
        "--cache-size", type=int, default=1024, help="LRU spread-cache capacity"
    )
    serve_cmd.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="largest accepted request body (default: 1 MiB)",
    )
    serve_cmd.add_argument(
        "--access-log",
        default="",
        metavar="PATH",
        help="append one JSON line per request to PATH (the in-memory "
        "ring behind /v1/debug/requests is always on)",
    )
    serve_cmd.add_argument(
        "--slo",
        default="",
        metavar="PATH",
        help="JSON SLO spec file for /v1/healthz evaluation "
        "(default: the built-in per-route objectives)",
    )
    serve_cmd.add_argument(
        "--live",
        choices=LIVE_MODES,
        default=None,
        metavar="MODE",
        help="enable /v1/ingest + /v1/topk_live with this live index mode",
    )
    serve_cmd.add_argument(
        "--live-window",
        type=int,
        default=None,
        metavar="TICKS",
        help="channel duration budget omega of the live index (required with --live)",
    )
    serve_cmd.add_argument(
        "--decay-window",
        type=int,
        default=None,
        metavar="TICKS",
        help="sliding decay horizon; interactions age out of sigma(u) once "
        "their channel start falls behind it (default: no decay)",
    )
    serve_cmd.add_argument(
        "--live-precision",
        type=int,
        default=9,
        help="sketch index bits of the live index (sketch mode; default: 9)",
    )
    serve_cmd.add_argument(
        "--publish-path",
        default="",
        metavar="PATH",
        help="periodically snapshot the live index here and hot-reload the "
        "service from it (off when empty)",
    )
    serve_cmd.add_argument(
        "--publish-interval",
        type=float,
        default=5.0,
        help="seconds between publish attempts (default: 5)",
    )
    serve_cmd.add_argument(
        "--publish-min-events",
        type=int,
        default=1,
        help="skip a publish unless this many new events arrived (default: 1)",
    )

    return parser


def _command_generate(args: argparse.Namespace, out) -> int:
    log = load_dataset(args.dataset, rng=args.seed, scale=args.scale)
    log.write(args.output)
    print(
        f"wrote {log.num_interactions} interactions over {log.num_nodes} nodes "
        f"to {args.output}",
        file=out,
    )
    return 0


def _command_stats(args: argparse.Namespace, out) -> int:
    log = InteractionLog.read(args.log)
    print(f"nodes:         {log.num_nodes}", file=out)
    print(f"interactions:  {log.num_interactions}", file=out)
    print(f"time span:     {log.time_span} ticks "
          f"[{log.min_time} .. {log.max_time}]", file=out)
    print(f"static edges:  {len(log.static_edges())}", file=out)
    print(f"distinct times: {'yes' if log.has_distinct_times() else 'no'}", file=out)
    return 0


def _command_topk(args: argparse.Namespace, out) -> int:
    log = InteractionLog.read(args.log)
    window = log.window_from_percent(args.window_percent)
    method = _METHOD_ALIASES[args.method]
    seeds = select_seeds(
        log, method, args.k, window, precision=args.precision, rng=args.seed
    )
    print(
        f"top-{args.k} seeds by {method} "
        f"(omega = {args.window_percent:g}% = {window} ticks):",
        file=out,
    )
    for rank, seed in enumerate(seeds, start=1):
        print(f"  {rank:2d}. {seed}", file=out)
    return 0


def _command_spread(args: argparse.Namespace, out) -> int:
    log = InteractionLog.read(args.log)
    window = log.window_from_percent(args.window_percent)
    seeds = [token for token in args.seeds.split(",") if token]
    unknown = [seed for seed in seeds if seed not in log.nodes]
    if unknown:
        print(f"warning: seeds not in the log: {unknown}", file=sys.stderr)
    estimate = estimate_spread(
        log,
        seeds,
        window,
        args.probability,
        runs=args.runs,
        rng=args.seed,
    )
    print(
        f"expected spread of {len(seeds)} seeds at omega = "
        f"{args.window_percent:g}% (= {window} ticks), p = {args.probability:g}: "
        f"{estimate.mean:.1f} ± {estimate.stderr:.1f} "
        f"({estimate.runs} cascades)",
        file=out,
    )
    return 0


def _command_explain(args: argparse.Namespace, out) -> int:
    from repro.core.witnesses import explain_influence

    log = InteractionLog.read(args.log)
    window = log.window_from_percent(args.window_percent)
    print(explain_influence(log, args.source, args.target, window), file=out)
    return 0


def _command_report(args: argparse.Namespace, out) -> int:
    from repro.analysis.report import generate_report

    sections = tuple(s for s in args.sections.split(",") if s) or None
    rendered = generate_report(scale=args.scale, seed=args.seed, sections=sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote report to {args.output}", file=out)
    else:
        print(rendered, file=out)
    return 0


def _command_obs(args: argparse.Namespace, out) -> int:
    if args.obs_command == "diff":
        return _command_obs_diff(args, out)
    if args.obs_command == "slo":
        return _command_obs_slo(args, out)
    return _command_obs_report(args, out)


def _command_obs_report(args: argparse.Namespace, out) -> int:
    # Every failure mode surfaces as a one-line ValueError naming the
    # file; main() turns it into `error: ...` with exit code 1.
    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(
            f"{args.input}: cannot read metrics snapshot: {exc.strerror or exc}"
        ) from exc
    try:
        samples = from_jsonl(text)
    except ValueError as exc:
        raise ValueError(f"{args.input}: {exc}") from exc
    if not samples:
        raise ValueError(f"{args.input}: empty metrics snapshot (no samples)")
    if args.format == "table":
        print(render_report(samples), file=out, end="")
    elif args.format == "prometheus":
        print(to_prometheus(samples), file=out, end="")
    else:
        print(to_jsonl(samples), file=out, end="")
    return 0


def _command_obs_diff(args: argparse.Namespace, out) -> int:
    old = trend.load_bench_snapshot(args.old)
    new = trend.load_bench_snapshot(args.new)
    diff = trend.diff_snapshots(old, new, threshold=args.threshold)
    print(trend.render_diff(diff, args.format), file=out, end="")
    if trend.has_regressions(diff) and not args.warn_only:
        return 1
    return 0


def _command_obs_slo(args: argparse.Namespace, out) -> int:
    from repro.obs import slo

    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(
            f"{args.input}: cannot read metrics snapshot: {exc.strerror or exc}"
        ) from exc
    try:
        samples = from_jsonl(text)
    except ValueError as exc:
        raise ValueError(f"{args.input}: {exc}") from exc
    specs = slo.load_slo_specs(args.spec) if args.spec else list(slo.DEFAULT_SLOS)
    statuses = slo.evaluate_slos(specs, samples)
    print(slo.render_slo(statuses, format=args.format), file=out, end="")
    if args.check and any(not status.ok for status in statuses):
        return 1
    return 0


def _command_xp(args: argparse.Namespace, out) -> int:
    from repro.xp.cli import command_xp

    return command_xp(args, out)


def _command_ingest(args: argparse.Namespace, out) -> int:
    from repro.ingest.cli import command_ingest

    return command_ingest(args, out)


def _command_snapshot(args: argparse.Namespace, out) -> int:
    from repro.serve.snapshot import SnapshotReader, save_oracle

    if args.snapshot_command == "load":
        with SnapshotReader(args.snapshot) as reader:
            sections = reader.verify()
            print(f"snapshot:  {args.snapshot}", file=out)
            print(f"kind:      {reader.kind}", file=out)
            print(f"nodes:     {reader.meta.get('node_count', '?')}", file=out)
            print(f"sections:  {sections} (all CRCs verified)", file=out)
            print(f"bytes:     {reader.size_bytes()}", file=out)
        return 0

    from repro.core.approx import ApproxIRS
    from repro.core.exact import ExactIRS
    from repro.core.oracle import ApproxInfluenceOracle, ExactInfluenceOracle

    log = InteractionLog.read(args.log)
    window = log.window_from_percent(args.window_percent)
    if args.kind == "exact":
        oracle: object = ExactInfluenceOracle.from_index(
            ExactIRS.from_log(log, window)
        )
    else:
        oracle = ApproxInfluenceOracle.from_index(
            ApproxIRS.from_log(log, window, precision=args.precision)
        )
    info = save_oracle(args.output, oracle)  # type: ignore[arg-type]
    print(
        f"wrote {info['kind']} snapshot of {info['nodes']} nodes "
        f"({info['bytes']} bytes) to {args.output}",
        file=out,
    )
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    from repro.serve.http import (
        DEFAULT_MAX_REQUEST_BYTES,
        build_server,
        install_drain_handler,
        serve_until_shutdown,
    )
    from repro.serve.service import OracleService

    from repro.obs.slo import load_slo_specs
    from repro.serve.accesslog import AccessLog

    # Config files are validated before the (expensive) snapshot load so
    # a typo in the SLO spec fails fast.
    slo_specs = load_slo_specs(args.slo) if args.slo else None
    live = None
    publisher = None
    if args.live is not None:
        from repro.ingest.live import LiveIndex
        if args.live_window is None:
            raise ValueError("--live requires --live-window (omega, in ticks)")
        live = LiveIndex(
            window=args.live_window,
            mode=args.live,
            decay_window=args.decay_window,
            precision=args.live_precision,
        )
    elif args.live_window is not None or args.decay_window is not None:
        raise ValueError("--live-window/--decay-window require --live")
    service = OracleService.from_snapshot(args.snapshot, cache_size=args.cache_size)
    if args.publish_path:
        from repro.ingest.publisher import SnapshotPublisher
        if live is None:
            raise ValueError("--publish-path requires --live")
        publisher = SnapshotPublisher(
            live,
            service,
            args.publish_path,
            interval=args.publish_interval,
            min_events=args.publish_min_events,
        )
    limit = (
        args.max_request_bytes
        if args.max_request_bytes is not None
        else DEFAULT_MAX_REQUEST_BYTES
    )
    server = build_server(
        service,
        host=args.host,
        port=args.port,
        max_request_bytes=limit,
        access_log=AccessLog(path=args.access_log),
        slo_specs=slo_specs,
        live=live,
        publisher=publisher,
    )
    install_drain_handler(server)
    host, port = server.server_address[:2]
    info = service.info()
    live_note = f", live ingest ({args.live})" if live is not None else ""
    print(
        f"serving {info['kind']} oracle ({info['nodes']} nodes) "
        f"on http://{host}:{port}{live_note} — SIGTERM drains",
        file=out,
        flush=True,
    )
    if publisher is not None:
        publisher.start()
    try:
        serve_until_shutdown(server)
    finally:
        if publisher is not None:
            publisher.stop()
    print("server drained, exiting", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    output = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_active = bool(args.obs or args.obs_output)
    profile_active = bool(args.profile or args.profile_output)
    memprof_active = bool(args.memprof)
    if obs_active:
        obs.enable()
    if profile_active:
        obs.profile.enable()  # implies obs.enable() for the span tree
    if memprof_active:
        obs.memprof.enable()
    handlers = {
        "generate": _command_generate,
        "stats": _command_stats,
        "topk": _command_topk,
        "spread": _command_spread,
        "explain": _command_explain,
        "report": _command_report,
        "obs": _command_obs,
        "xp": _command_xp,
        "ingest": _command_ingest,
        "snapshot": _command_snapshot,
        "serve": _command_serve,
    }
    try:
        code = handlers[args.command](args, output)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if profile_active:
        obs.profile.disable()
    if memprof_active:
        obs.memprof.disable()
    if code != 0:
        return code
    if obs_active:
        if args.obs_output:
            obs.write_snapshot(args.obs_output)
            print(f"wrote metrics snapshot to {args.obs_output}", file=output)
        else:
            print(file=output)
            print(render_report(obs.snapshot()), file=output, end="")
    if profile_active:
        profile_report = obs.profile.collect()
        if args.profile_output:
            with open(args.profile_output, "w", encoding="utf-8") as handle:
                handle.write(profile_report.collapsed())
            print(f"wrote collapsed-stack profile to {args.profile_output}", file=output)
        print(file=output)
        print(profile_report.top_table(), file=output, end="")
    if memprof_active:
        print(file=output)
        print(obs.memprof.collect().table(), file=output, end="")
    return code
