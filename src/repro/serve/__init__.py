"""Influence-oracle serving layer (snapshot store + query service + HTTP).

The paper's influence oracle (§4.1) is an *online query* structure: the
IRS summaries are built once, then ``Inf(S)`` and top-k queries are
answered cheaply for as long as the window ω stays relevant.  The rest of
the repo builds those summaries; this package deploys them:

* :mod:`repro.serve.snapshot` — a versioned binary snapshot format
  (``repro-snap/1``) that persists :class:`~repro.core.oracle.ExactInfluenceOracle`
  reachability sets, :class:`~repro.core.oracle.ApproxInfluenceOracle`
  register arrays, and whole :class:`~repro.sketch.vhll.VersionedHLL`
  sketch maps, with per-section CRCs and lazy section reads;
* :mod:`repro.serve.service` — :class:`~repro.serve.service.OracleService`,
  a thread-safe query front over any oracle: LRU spread cache, batched
  queries, top-k / greedy-seed endpoints, and hot snapshot reloads that
  never drop in-flight queries;
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``repro serve``) with request-size limits, error envelopes and a
  graceful SIGTERM drain;
* :mod:`repro.serve.loadgen` — a closed-loop multi-threaded load
  generator reporting p50/p95/p99 latency (also ``python -m
  repro.serve.loadgen``).

Everything is standard-library only, like the rest of the project.
"""

from __future__ import annotations

from repro.serve.service import OracleService
from repro.serve.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotReader,
    load_oracle,
    load_sketches,
    save_oracle,
    save_sketches,
    snapshot_info,
)

__all__ = [
    "OracleService",
    "SNAPSHOT_MAGIC",
    "SnapshotReader",
    "load_oracle",
    "load_sketches",
    "save_oracle",
    "save_sketches",
    "snapshot_info",
]
