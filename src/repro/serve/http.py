"""JSON-over-HTTP front end for :class:`~repro.serve.service.OracleService`.

A deliberately small, dependency-free server: Python's
``ThreadingHTTPServer`` (one thread per connection) in front of the
read-write-locked service.  Routes:

=========================  ======  =====================================
``/v1/healthz``            GET     liveness + oracle info + per-route SLO
``/v1/metrics``            GET     Prometheus text of the whole obs registry
``/v1/debug/requests``     GET     recent access-log entries (ring buffer)
``/v1/influence``          POST    ``{"node": x}`` → individual influence
``/v1/spread``             POST    ``{"seeds": [...]}`` or ``{"seed_sets": [[...], ...]}``
``/v1/topk``               POST    ``{"k": n, "method": "influence"|"greedy"|"celf"}``
``/v1/reload``             POST    ``{"path": "..."}`` → hot snapshot swap
``/v1/ingest``             POST    ``{"events": [[u, v, t], ...]}`` → live apply
``/v1/topk_live``          POST    ``{"k": n}`` → continuously maintained top-k
=========================  ======  =====================================

Each route is one :class:`Route` entry in the ``_ROUTES`` table: a
handler returning ``(status, payload)`` plus its accepted method and
drain policy.  The dispatch helper owns everything else — request ids,
metrics, the access log, error envelopes, drain refusal — so adding a
route is one method and one table line.

The two ``/v1/ingest*`` routes exist only when the server was built with
a :class:`~repro.ingest.live.LiveIndex` (``repro serve --live``);
without one they answer 404 like any unknown feature.

**Request observability.**  Every request gets a request id — the
inbound ``X-Request-Id`` header when well-formed, generated otherwise —
echoed in the response header, pushed onto the tracing context
(:func:`repro.obs.request_context`) so spans/profiler/memprof attribute
the request's work under ``request:<id>``, and written to the structured
access log (one JSON line per request: id, route, status, latency,
bytes, cache hits/misses, snapshot generation).  Request metrics are
labelled with the *matched* route (or the literal ``"unmatched"``), so a
404 scan cannot mint unbounded label children; latency lands in
``serve.http_request_seconds{route}`` on serving-scale buckets, which is
what the per-route SLO evaluation in ``/v1/healthz`` reads.

Error handling is uniform: every non-2xx response is a JSON envelope
``{"error": {"status": <int>, "message": <str>}}`` — 400 for malformed
requests, 404 for unknown routes and unknown nodes, 405 for wrong
methods, 413 when the body exceeds the request-size limit, 503 while the
server drains, and 500 for anything unexpected (the swallowed traceback
goes to the access log under the request's id, not into the response).

Graceful shutdown: :func:`install_drain_handler` hooks SIGTERM/SIGINT to
flip the server into *draining* (new requests get 503, ``/v1/healthz``
reports it) and then stop the accept loop; ``serve_until_shutdown`` joins
the in-flight handler threads before returning, so a supervisor's
``kill -TERM`` never cuts a response short.
"""

from __future__ import annotations

import json
import signal
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # layering: serve must not import ingest at runtime
    from repro.ingest.live import LiveIndex
    from repro.ingest.publisher import SnapshotPublisher

import repro.obs as obs
from repro.obs.slo import DEFAULT_SLOS, SLOSpec, SLOTracker
from repro.serve.accesslog import (
    DEFAULT_RING_SIZE,
    REQUEST_ID_HEADER,
    AccessLog,
    RequestIdGenerator,
    normalize_request_id,
)
from repro.serve.service import GREEDY_METHODS, SERVE_TIME_BUCKETS, OracleService
from repro.utils.timer import Timer
from repro.utils.validation import require_int, require_type

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "OracleHTTPServer",
    "Route",
    "build_server",
    "install_drain_handler",
    "serve_until_shutdown",
]

#: Largest accepted request body; a 10k-seed spread query is ~100 KB.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Metric label for paths that matched no route (bounds cardinality).
UNMATCHED_ROUTE = "unmatched"

_HTTP_REQUESTS = obs.counter(
    "serve.http_requests", "HTTP requests by matched route and response code."
)
#: Pre-registered with serving-scale buckets so the ``serve.http_request``
#: span below lands its durations here instead of on build-scale bounds.
_HTTP_SECONDS = obs.histogram(
    "serve.http_request_seconds",
    "HTTP request latency by matched route.",
    buckets=SERVE_TIME_BUCKETS,
)


class OracleHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service plus serving policy."""

    #: Handler threads are joined on ``server_close`` — the drain step.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: OracleService,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        access_log: Optional[AccessLog] = None,
        slo_specs: Optional[Sequence[SLOSpec]] = None,
        live: Optional["LiveIndex"] = None,
        publisher: Optional["SnapshotPublisher"] = None,
    ) -> None:
        require_type(service, "service", OracleService)
        require_int(max_request_bytes, "max_request_bytes")
        if max_request_bytes <= 0:
            raise ValueError(
                f"max_request_bytes must be > 0, got {max_request_bytes}"
            )
        super().__init__(address, OracleRequestHandler)
        self.service = service
        #: Live ingestion index behind ``/v1/ingest`` (None = batch-only).
        self.live = live
        #: Background snapshot publisher, surfaced in ``/v1/healthz``.
        self.publisher = publisher
        self.max_request_bytes = max_request_bytes
        self.access_log = access_log if access_log is not None else AccessLog()
        self.request_ids = RequestIdGenerator()
        self.slo = SLOTracker(slo_specs if slo_specs is not None else DEFAULT_SLOS)
        self.draining = False
        #: The drain helper thread spawned by the signal handler, kept so
        #: :func:`serve_until_shutdown` can join it instead of abandoning
        #: it as an anonymous daemon.
        self.shutdown_thread: Optional[threading.Thread] = None


class _RequestError(Exception):
    """Maps straight onto one JSON error envelope."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Route(NamedTuple):
    """One row of the ``_ROUTES`` table — adding a route is data, not code.

    ``handler`` returns ``(status, payload)`` for the dispatch helper to
    serialise, or ``None`` if it already wrote a raw response (metrics).
    ``drain_exempt`` routes keep answering while the server drains.
    """

    handler: Callable[["OracleRequestHandler"], Optional[Tuple[int, object]]]
    method: str
    drain_exempt: bool = False


class OracleRequestHandler(BaseHTTPRequestHandler):
    """One request: route, parse, call the service, answer JSON."""

    server_version = "repro-serve/1"
    #: One request per connection: keep-alive would park handler threads
    #: in a blocking read between requests, and the graceful drain joins
    #: every handler thread — idle keep-alive sockets would hang it.
    protocol_version = "HTTP/1.0"
    #: Socket timeout so a silent client cannot stall the drain forever.
    timeout = 30.0
    server: OracleHTTPServer  # narrowed for the route handlers

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        """Silence the stderr access log (the structured one replaces it)."""

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header(REQUEST_ID_HEADER, self._request_id)
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        self._body_bytes = len(body)

    def _send_error_envelope(self, status: int, message: str) -> None:
        self._send_json(status, {"error": {"status": status, "message": message}})

    def _read_body(self) -> Dict[str, object]:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _RequestError(400, "missing Content-Length header")
        try:
            length = int(raw_length)
        except ValueError:
            raise _RequestError(400, f"bad Content-Length {raw_length!r}") from None
        if length < 0:
            raise _RequestError(400, f"bad Content-Length {raw_length!r}")
        if length > self.server.max_request_bytes:
            raise _RequestError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_request_bytes}-byte limit",
            )
        body = self.rfile.read(length)
        if len(body) < length:
            raise _RequestError(400, "request body shorter than Content-Length")
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _RequestError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return parsed

    def _resolve_request_id(self) -> str:
        """Inbound ``X-Request-Id`` when well-formed, else a fresh id."""
        inbound = normalize_request_id(self.headers.get(REQUEST_ID_HEADER))
        if inbound is not None:
            return inbound
        return self.server.request_ids.next_id()

    def _dispatch(self, method: str) -> None:
        route = self.path.split("?")[0].rstrip("/") or "/"
        matched = _ROUTES.get(route)
        # Metrics and the access log carry the *matched* route (or the
        # shared "unmatched" bucket) so scanning 404 paths and
        # trailing-slash variants cannot mint new label children.
        self._route_key = route if matched is not None else UNMATCHED_ROUTE
        self._request_id = self._resolve_request_id()
        self._status = 0
        self._body_bytes = 0
        self._error_note = ""
        service = self.server.service
        service.begin_cache_window()
        timer = Timer()
        with timer, obs.request_context(f"request:{self._request_id}"):
            with obs.span("serve.http_request", route=self._route_key):
                self._handle_routed(method, route, matched)
        hits, misses = service.cache_window()
        entry: Dict[str, object] = {
            "request_id": self._request_id,
            "method": method,
            "route": self._route_key,
            "path": self.path,
            "status": self._status,
            "latency_ms": round(timer.elapsed * 1e3, 4),
            "bytes": self._body_bytes,
            "cache_hits": hits,
            "cache_misses": misses,
            "generation": service.generation(),
        }
        if self._error_note:
            entry["error"] = self._error_note
        self.server.access_log.record(entry)
        _HTTP_REQUESTS.labels(route=self._route_key, code=self._status).inc()

    def _handle_routed(
        self,
        method: str,
        route: str,
        matched: Optional[Route],
    ) -> None:
        try:
            if matched is None:
                raise _RequestError(404, f"unknown route {route!r}")
            if method != matched.method:
                raise _RequestError(
                    405, f"route {route!r} only accepts {matched.method}"
                )
            if self.server.draining and not matched.drain_exempt:
                raise _RequestError(503, "server is draining; retry elsewhere")
            result = matched.handler(self)
            if result is not None:
                status, payload = result
                self._send_json(status, payload)
        except _RequestError as error:
            self._send_error_envelope(error.status, error.message)
        except (TypeError, ValueError) as error:
            self._send_error_envelope(400, str(error))
        except Exception as error:  # pragma: no cover - defensive backstop
            # The envelope stays terse; the traceback goes to the access
            # log under this request's id instead of being swallowed.
            self._error_note = traceback.format_exc()
            self._send_error_envelope(500, f"internal error: {error}")

    def do_GET(self) -> None:  # noqa: N802 - http.server naming contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming contract
        self._dispatch("POST")

    # -- routes ---------------------------------------------------------
    def _health_payload(self, status: str) -> Dict[str, object]:
        info = self.server.service.info()
        stats = self.server.service.stats()
        slo_statuses = self.server.slo.observe(obs.snapshot(include_spans=False))
        payload: Dict[str, object] = {
            "status": status,
            "kind": info["kind"],
            "nodes": info["nodes"],
            "generation": info["generation"],
            "cache": stats["cache"],
            "slo": [slo_status.to_dict() for slo_status in slo_statuses],
            "slo_ok": all(slo_status.ok for slo_status in slo_statuses),
        }
        if self.server.live is not None:
            payload["ingest"] = self.server.live.stats()
        if self.server.publisher is not None:
            payload["publisher"] = self.server.publisher.stats()
        return payload

    def _route_healthz(self) -> Tuple[int, object]:
        if self.server.draining:
            return 503, self._health_payload("draining")
        return 200, self._health_payload("ok")

    def _route_metrics(self) -> None:
        text = obs.to_prometheus(obs.snapshot(include_spans=False)).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(text)))
        self.send_header(REQUEST_ID_HEADER, self._request_id)
        self.end_headers()
        self.wfile.write(text)
        self._status = 200
        self._body_bytes = len(text)
        return None

    def _route_debug_requests(self) -> Tuple[int, object]:
        log = self.server.access_log
        entries = log.recent(limit=DEFAULT_RING_SIZE)
        return 200, {"requests": entries, "stats": log.stats()}

    def _route_influence(self) -> Tuple[int, object]:
        body = self._read_body()
        if "node" not in body:
            raise _RequestError(400, "field 'node' is required")
        node = body["node"]
        service = self.server.service
        if not service.contains(node):
            raise _RequestError(404, f"unknown node {node!r}")
        return 200, {"node": node, "influence": service.influence(node)}

    def _route_spread(self) -> Tuple[int, object]:
        body = self._read_body()
        service = self.server.service
        if "seed_sets" in body:
            seed_sets = body["seed_sets"]
            if not isinstance(seed_sets, list) or not all(
                isinstance(seeds, list) for seeds in seed_sets
            ):
                raise _RequestError(400, "field 'seed_sets' must be a list of lists")
            spreads = service.spread_many(seed_sets)
            return 200, {"spreads": spreads, "count": len(spreads)}
        seeds = body.get("seeds")
        if not isinstance(seeds, list):
            raise _RequestError(400, "field 'seeds' must be a list of node labels")
        return 200, {"spread": service.spread(seeds), "seeds": len(set(seeds))}

    def _route_topk(self) -> Tuple[int, object]:
        body = self._read_body()
        k = self._require_k(body)
        method = body.get("method", "influence")
        service = self.server.service
        if method == "influence":
            ranked = service.influence_topk(k)
            payload: List[object] = [
                {"node": node, "influence": influence} for node, influence in ranked
            ]
        elif method in GREEDY_METHODS:
            payload = list(service.greedy_seeds(k, method=method))
        else:
            raise _RequestError(
                400,
                f"unknown method {method!r}; use 'influence', "
                f"{' or '.join(repr(m) for m in GREEDY_METHODS)}",
            )
        return 200, {"k": k, "method": method, "seeds": payload}

    def _route_reload(self) -> Tuple[int, object]:
        body = self._read_body()
        path = body.get("path")
        if not isinstance(path, str) or not path:
            raise _RequestError(400, "field 'path' must be a snapshot path")
        return 200, self.server.service.reload(path)

    # -- live ingestion routes -----------------------------------------
    def _require_live(self) -> "LiveIndex":
        live = self.server.live
        if live is None:
            raise _RequestError(404, "live ingestion is not enabled on this server")
        return live

    @staticmethod
    def _require_k(body: Dict[str, object]) -> int:
        k = body.get("k")
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise _RequestError(400, "field 'k' must be a positive integer")
        return k

    def _route_ingest(self) -> Tuple[int, object]:
        live = self._require_live()
        body = self._read_body()
        events = body.get("events")
        if not isinstance(events, list):
            raise _RequestError(
                400, "field 'events' must be a list of [source, target, time] triples"
            )
        return 200, live.apply_events(events).to_dict()

    def _route_topk_live(self) -> Tuple[int, object]:
        live = self._require_live()
        body = self._read_body()
        k = self._require_k(body)
        ranked = live.topk(k)
        return 200, {
            "k": k,
            "mode": live.mode,
            "last_time": live.last_time(),
            "horizon": live.horizon(),
            "ranking": [
                {"node": node, "influence": influence} for node, influence in ranked
            ],
        }


_ROUTES: Dict[str, Route] = {
    "/v1/healthz": Route(OracleRequestHandler._route_healthz, "GET", drain_exempt=True),
    "/v1/metrics": Route(OracleRequestHandler._route_metrics, "GET", drain_exempt=True),
    "/v1/debug/requests": Route(
        OracleRequestHandler._route_debug_requests, "GET", drain_exempt=True
    ),
    "/v1/influence": Route(OracleRequestHandler._route_influence, "POST"),
    "/v1/spread": Route(OracleRequestHandler._route_spread, "POST"),
    "/v1/topk": Route(OracleRequestHandler._route_topk, "POST"),
    "/v1/reload": Route(OracleRequestHandler._route_reload, "POST"),
    "/v1/ingest": Route(OracleRequestHandler._route_ingest, "POST"),
    "/v1/topk_live": Route(OracleRequestHandler._route_topk_live, "POST"),
}


def build_server(
    service: OracleService,
    host: str = "127.0.0.1",
    port: int = 8750,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    access_log: Optional[AccessLog] = None,
    slo_specs: Optional[Sequence[SLOSpec]] = None,
    live: Optional["LiveIndex"] = None,
    publisher: Optional["SnapshotPublisher"] = None,
) -> OracleHTTPServer:
    """Bind an :class:`OracleHTTPServer`; ``port=0`` picks a free port."""
    return OracleHTTPServer(
        (host, port),
        service,
        max_request_bytes=max_request_bytes,
        access_log=access_log,
        slo_specs=slo_specs,
        live=live,
        publisher=publisher,
    )


def install_drain_handler(server: OracleHTTPServer) -> None:
    """Route SIGTERM/SIGINT into a graceful drain of ``server``.

    The handler flips :attr:`OracleHTTPServer.draining` first (so health
    checks start failing and load balancers stop routing here) and stops
    the accept loop from a helper thread — ``shutdown()`` would deadlock
    if called from the ``serve_forever`` thread itself.
    """

    def _drain(signum: int, frame: object) -> None:
        server.draining = True
        thread = threading.Thread(
            target=server.shutdown, name="oracle-http-shutdown", daemon=True
        )
        server.shutdown_thread = thread
        thread.start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)


def serve_until_shutdown(
    server: OracleHTTPServer, shutdown_join_timeout: float = 10.0
) -> None:
    """Run the accept loop, then join in-flight handlers (the drain).

    The drain helper spawned by :func:`install_drain_handler` is joined
    with a timeout after the socket closes; a helper still alive then
    means ``shutdown()`` itself is wedged, which is surfaced as a
    ``RuntimeError`` instead of being silently abandoned.  The access
    log is flushed and closed once the last handler thread has finished.
    """
    try:
        server.serve_forever()
    finally:
        server.server_close()
        server.access_log.close()
        thread = server.shutdown_thread
        if thread is not None:
            thread.join(shutdown_join_timeout)
            if thread.is_alive():
                raise RuntimeError(
                    f"drain thread {thread.name!r} still running "
                    f"{shutdown_join_timeout:.0f}s after server_close()"
                )
