"""The ``repro-snap/1`` snapshot store: persist oracles, reload them fast.

Snapshot-then-query is the standard deployment shape for sketch-backed
influence oracles (ContinEst persists its sampled sketch sets the same
way): one process pays the reverse-scan build, writes the summaries to
disk, and any number of serving processes answer ``Inf(S)`` queries from
the file.  This module defines the on-disk format and the (de)serialisers
for the three payload kinds the repo produces:

``exact``
    :class:`~repro.core.oracle.ExactInfluenceOracle` — the interned label
    table plus each node's reachability set as sorted label indices.
``approx``
    :class:`~repro.core.oracle.ApproxInfluenceOracle` — each node's β
    effective HLL registers, packed one byte per register.
``vhll``
    A ``node → VersionedHLL`` sketch map (the full versioned cell lists
    via :meth:`~repro.sketch.vhll.VersionedHLL.to_dict` /
    :meth:`~repro.sketch.vhll.VersionedHLL.from_dict`), for workloads that
    still need per-deadline queries after reload.

File layout
-----------
::

    magic line:  b"repro-snap/1\\n"
    section*:    u16 name length (big endian)
                 name (ascii)
                 u64 payload length (big endian)
                 u32 CRC32 of the payload (big endian)
                 payload bytes

The first section is always ``header`` — a JSON object with the payload
``kind``, free-form ``meta`` and the declared list of data-section names.
Readers scan only the fixed-size section frames up front (seeking past
payloads), so opening a snapshot costs O(#sections) regardless of size;
payload bytes are read and CRC-verified lazily, section by section, when
first accessed.  Every failure mode — bad magic, foreign version,
truncated file, CRC mismatch, missing section — surfaces as a one-line
``ValueError`` naming the file (the convention of
:func:`repro.obs.trend.load_bench_snapshot`).

Writes go to ``<path>.tmp`` and are atomically renamed into place, so a
serving process hot-reloading the path never observes a half-written
snapshot.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

import repro.obs as obs
from repro.core.oracle import (
    ApproxInfluenceOracle,
    ExactInfluenceOracle,
    InfluenceOracle,
)
from repro.sketch.vhll import VersionedHLL
from repro.utils.validation import require_int, require_positive, require_type

__all__ = [
    "SNAPSHOT_MAGIC",
    "SnapshotReader",
    "save_oracle",
    "load_oracle",
    "save_sketches",
    "load_sketches",
    "snapshot_info",
]

Node = Hashable

#: Version-bearing magic line; bump the suffix on breaking layout changes.
SNAPSHOT_MAGIC = b"repro-snap/1\n"
_MAGIC_PREFIX = b"repro-snap/"

#: Section frame: name length (u16), then name, then payload length (u64)
#: and payload CRC32 (u32), all big endian.
_NAME_LEN = struct.Struct(">H")
_PAYLOAD_HEAD = struct.Struct(">QI")

#: Nodes per data section.  Chunking keeps single reads bounded and lets
#: a reader materialise a snapshot incrementally.
DEFAULT_CHUNK = 4096

#: Payload kinds this build writes and reads.
KINDS = ("exact", "approx", "vhll")

_SNAPSHOT_BYTES = obs.gauge(
    "serve.snapshot_bytes", "Size of the last snapshot written or loaded."
)


def _check_label(label: object) -> object:
    """Node labels must survive a JSON round trip unchanged."""
    if isinstance(label, bool) or label is None:
        return label
    if isinstance(label, (str, int, float)):
        return label
    raise ValueError(
        f"unsupported node label {label!r} of type {type(label).__name__}; "
        "snapshot labels must be str, int, float, bool or None"
    )


def _dumps(payload: object) -> bytes:
    return json.dumps(payload, separators=(",", ":"), allow_nan=False).encode("utf-8")


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _write_sections(
    path: str,
    kind: str,
    meta: Dict[str, object],
    section_names: List[str],
    sections: Iterable[Tuple[str, bytes]],
) -> int:
    """Write a complete snapshot atomically; returns the byte size."""
    header = _dumps({"kind": kind, "meta": meta, "sections": section_names})
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(SNAPSHOT_MAGIC)
            _write_one(handle, "header", header)
            emitted = []
            for name, payload in sections:
                _write_one(handle, name, payload)
                emitted.append(name)
            if emitted != section_names:
                raise ValueError(
                    f"{path}: internal error: declared sections {section_names} "
                    f"!= emitted sections {emitted}"
                )
            size = handle.tell()
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise
    _SNAPSHOT_BYTES.set(size)
    return size


def _write_one(handle: io.BufferedWriter, name: str, payload: bytes) -> None:
    encoded = name.encode("ascii")
    handle.write(_NAME_LEN.pack(len(encoded)))
    handle.write(encoded)
    handle.write(_PAYLOAD_HEAD.pack(len(payload), zlib.crc32(payload)))
    handle.write(payload)


def _chunk_names(prefix: str, total: int, chunk: int) -> List[str]:
    count = (total + chunk - 1) // chunk
    return [f"{prefix}/{index}" for index in range(count)]


def _exact_sections(
    oracle: ExactInfluenceOracle, chunk: int
) -> Tuple[Dict[str, object], List[str], Iterator[Tuple[str, bytes]]]:
    keys = list(oracle.nodes())
    labels: List[object] = []
    index_of: Dict[object, int] = {}
    for key in keys:
        index_of[key] = len(labels)
        labels.append(_check_label(key))
    sets_as_indices: List[List[int]] = []
    for key in keys:  # repro-lint: budget=O(Σ|σ(u)|)
        members = []
        for member in oracle.reachability_set(key):
            slot = index_of.get(member)
            if slot is None:
                slot = len(labels)
                index_of[member] = slot
                labels.append(_check_label(member))
            members.append(slot)
        members.sort()
        sets_as_indices.append(members)
    meta: Dict[str, object] = {
        "node_count": len(keys),
        "label_count": len(labels),
        "chunk": chunk,
    }
    names = _chunk_names("labels", len(labels), chunk) + _chunk_names(
        "sets", len(keys), chunk
    )

    def emit() -> Iterator[Tuple[str, bytes]]:
        for start in range(0, len(labels), chunk):
            yield (f"labels/{start // chunk}", _dumps(labels[start : start + chunk]))
        for start in range(0, len(keys), chunk):
            yield (f"sets/{start // chunk}", _dumps(sets_as_indices[start : start + chunk]))

    return meta, names, emit()


def _approx_sections(
    oracle: ApproxInfluenceOracle, chunk: int
) -> Tuple[Dict[str, object], List[str], Iterator[Tuple[str, bytes]]]:
    keys = list(oracle.nodes())
    num_cells = oracle.num_cells
    meta: Dict[str, object] = {
        "node_count": len(keys),
        "num_cells": num_cells,
        "chunk": chunk,
    }
    names = _chunk_names("labels", len(keys), chunk) + _chunk_names(
        "registers", len(keys), chunk
    )

    def emit() -> Iterator[Tuple[str, bytes]]:
        for start in range(0, len(keys), chunk):
            yield (
                f"labels/{start // chunk}",
                _dumps([_check_label(key) for key in keys[start : start + chunk]]),
            )
        for start in range(0, len(keys), chunk):  # repro-lint: budget=O(n·β)
            block = bytearray()
            for key in keys[start : start + chunk]:
                registers = oracle.registers(key)
                for value in registers:
                    if not 0 <= value < 256:
                        raise ValueError(
                            f"register value {value} of node {key!r} does not fit "
                            "one byte"
                        )
                block.extend(registers)
            yield (f"registers/{start // chunk}", bytes(block))

    return meta, names, emit()


def save_oracle(
    path: str, oracle: InfluenceOracle, chunk: int = DEFAULT_CHUNK
) -> Dict[str, object]:
    """Write ``oracle`` to ``path`` as a ``repro-snap/1`` snapshot.

    Returns a small info dict (``kind``, ``nodes``, ``bytes``).  The write
    is atomic: the data goes to ``<path>.tmp`` first and is renamed into
    place, so concurrent readers of ``path`` see either the old or the
    new snapshot, never a torn one.
    """
    require_type(path, "path", str)
    require_int(chunk, "chunk")
    require_positive(chunk, "chunk")
    if isinstance(oracle, ExactInfluenceOracle):
        kind = "exact"
        meta, names, sections = _exact_sections(oracle, chunk)
    elif isinstance(oracle, ApproxInfluenceOracle):
        kind = "approx"
        meta, names, sections = _approx_sections(oracle, chunk)
    else:
        require_type(oracle, "oracle", InfluenceOracle)
        raise ValueError(
            f"cannot snapshot oracle of type {type(oracle).__name__}; "
            "supported: ExactInfluenceOracle, ApproxInfluenceOracle"
        )
    with obs.span("serve.snapshot_save", kind=kind):
        size = _write_sections(path, kind, meta, names, sections)
    return {"kind": kind, "nodes": meta["node_count"], "bytes": size}


def save_sketches(
    path: str,
    sketches: Dict[Node, VersionedHLL],
    chunk: int = DEFAULT_CHUNK,
) -> Dict[str, object]:
    """Write a ``node → VersionedHLL`` map as a ``vhll`` snapshot.

    All sketches must share one ``(precision, salt)`` configuration —
    the same precondition their merge operations enforce.
    """
    require_type(path, "path", str)
    require_type(sketches, "sketches", dict)
    require_int(chunk, "chunk")
    require_positive(chunk, "chunk")
    keys = list(sketches)
    precision: Optional[int] = None
    salt: Optional[int] = None
    for key in keys:
        sketch = sketches[key]
        require_type(sketch, f"sketches[{key!r}]", VersionedHLL)
        if precision is None:
            precision, salt = sketch.precision, sketch.salt
        elif (sketch.precision, sketch.salt) != (precision, salt):
            raise ValueError(
                "cannot snapshot sketches with mixed configs: "
                f"({precision}, {salt}) vs ({sketch.precision}, {sketch.salt})"
            )
    meta: Dict[str, object] = {
        "node_count": len(keys),
        "precision": precision,
        "salt": salt,
        "chunk": chunk,
    }
    names = _chunk_names("labels", len(keys), chunk) + _chunk_names(
        "sketches", len(keys), chunk
    )

    def emit() -> Iterator[Tuple[str, bytes]]:
        for start in range(0, len(keys), chunk):
            yield (
                f"labels/{start // chunk}",
                _dumps([_check_label(key) for key in keys[start : start + chunk]]),
            )
        for start in range(0, len(keys), chunk):
            cells = [sketches[key].to_dict()["cells"] for key in keys[start : start + chunk]]
            yield (f"sketches/{start // chunk}", _dumps(cells))

    with obs.span("serve.snapshot_save", kind="vhll"):
        size = _write_sections(path, "vhll", meta, names, emit())
    return {"kind": "vhll", "nodes": len(keys), "bytes": size}


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class SnapshotReader:
    """Lazy section access over one ``repro-snap/1`` file.

    Opening the reader validates the magic line, scans the section frames
    (seeking past payload bytes) and parses the ``header`` section; data
    payloads are read — and CRC-verified — only when :meth:`read_section`
    asks for them.  Use as a context manager to close the file handle.
    """

    def __init__(self, path: str) -> None:
        require_type(path, "path", str)
        self._path = path
        try:
            self._handle: Optional[io.BufferedReader] = open(path, "rb")
        except OSError as exc:
            raise ValueError(
                f"{path}: cannot read snapshot: {exc.strerror or exc}"
            ) from exc
        try:
            self._toc = self._scan()
            header = json.loads(self._read_payload("header").decode("utf-8"))
        except ValueError:
            self.close()
            raise
        except (KeyError, UnicodeDecodeError) as exc:
            self.close()
            raise ValueError(f"{path}: corrupt snapshot header: {exc}") from exc
        if not isinstance(header, dict) or "kind" not in header:
            self.close()
            raise ValueError(f"{path}: snapshot header is not an object with a 'kind'")
        self.kind: str = str(header["kind"])
        self.meta: Dict[str, object] = dict(header.get("meta", {}))
        declared = header.get("sections")
        if not isinstance(declared, list):
            self.close()
            raise ValueError(f"{path}: snapshot header lacks the section list")
        self.section_names: List[str] = [str(name) for name in declared]
        missing = [name for name in self.section_names if name not in self._toc]
        if missing:
            self.close()
            raise ValueError(
                f"{path}: truncated snapshot: declared section(s) "
                f"{', '.join(missing)} missing from the file"
            )

    @property
    def path(self) -> str:
        """The file this reader serves sections from."""
        return self._path

    def _scan(self) -> Dict[str, Tuple[int, int, int]]:
        """Build ``name → (payload offset, length, crc)`` without reading payloads."""
        handle = self._handle
        assert handle is not None
        magic = handle.read(len(SNAPSHOT_MAGIC))
        if not magic.startswith(_MAGIC_PREFIX):
            raise ValueError(f"{self._path}: not a repro-snap snapshot (bad magic)")
        if magic != SNAPSHOT_MAGIC:
            head = magic.split(b"\n", 1)[0].decode("ascii", "replace")
            raise ValueError(
                f"{self._path}: unsupported snapshot version {head!r}; "
                f"this build reads {SNAPSHOT_MAGIC[:-1].decode('ascii')!r}"
            )
        toc: Dict[str, Tuple[int, int, int]] = {}
        file_size = os.fstat(handle.fileno()).st_size
        while True:
            frame = handle.read(_NAME_LEN.size)
            if not frame:
                break
            if len(frame) < _NAME_LEN.size:
                raise ValueError(f"{self._path}: truncated snapshot (partial frame)")
            (name_length,) = _NAME_LEN.unpack(frame)
            name_bytes = handle.read(name_length)
            head = handle.read(_PAYLOAD_HEAD.size)
            if len(name_bytes) < name_length or len(head) < _PAYLOAD_HEAD.size:
                raise ValueError(f"{self._path}: truncated snapshot (partial frame)")
            length, crc = _PAYLOAD_HEAD.unpack(head)
            offset = handle.tell()
            if offset + length > file_size:
                raise ValueError(
                    f"{self._path}: truncated snapshot (section "
                    f"{name_bytes.decode('ascii', 'replace')!r} cut short)"
                )
            toc[name_bytes.decode("ascii")] = (offset, length, crc)
            handle.seek(offset + length)
        if "header" not in toc:
            raise ValueError(f"{self._path}: truncated snapshot (no header section)")
        return toc

    def _read_payload(self, name: str) -> bytes:
        entry = self._toc.get(name)
        if entry is None:
            raise ValueError(f"{self._path}: snapshot has no section {name!r}")
        handle = self._handle
        if handle is None:
            raise ValueError(f"{self._path}: snapshot reader is closed")
        offset, length, crc = entry
        handle.seek(offset)
        payload = handle.read(length)
        if len(payload) < length:
            raise ValueError(f"{self._path}: truncated snapshot (section {name!r} cut short)")
        if zlib.crc32(payload) != crc:
            raise ValueError(
                f"{self._path}: CRC mismatch in section {name!r} (file corrupted)"
            )
        return payload

    def read_section(self, name: str) -> bytes:
        """The raw payload of ``name``, CRC-verified on this read."""
        return self._read_payload(name)

    def read_json(self, name: str) -> object:
        """A JSON section, decoded."""
        payload = self._read_payload(name)
        try:
            return json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{self._path}: section {name!r} is not valid JSON: {exc}") from exc

    def chunks(self, prefix: str) -> Iterator[object]:
        """Decoded JSON payloads of ``prefix/0``, ``prefix/1``, … in order."""
        for name in self.section_names:
            if name.startswith(prefix + "/"):
                yield self.read_json(name)

    def verify(self) -> int:
        """CRC-check every declared section; returns the section count."""
        for name in self.section_names:
            self._read_payload(name)
        return len(self.section_names)

    def size_bytes(self) -> int:
        """Total snapshot size on disk."""
        return os.path.getsize(self._path)

    def close(self) -> None:
        """Release the underlying file handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _meta_int(reader: SnapshotReader, field: str) -> int:
    value = reader.meta.get(field)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValueError(
            f"{reader.path}: snapshot meta field {field!r} must be a "
            f"non-negative integer, got {value!r}"
        )
    return value


def _load_labels(reader: SnapshotReader, expected: int) -> List[object]:
    labels: List[object] = []
    for block in reader.chunks("labels"):
        if not isinstance(block, list):
            raise ValueError(f"{reader.path}: labels section is not a JSON list")
        labels.extend(block)
    if len(labels) != expected:
        raise ValueError(
            f"{reader.path}: expected {expected} labels, found {len(labels)}"
        )
    return labels


def _load_exact(reader: SnapshotReader) -> ExactInfluenceOracle:
    node_count = _meta_int(reader, "node_count")
    label_count = _meta_int(reader, "label_count")
    labels = _load_labels(reader, label_count)
    sets: Dict[Node, frozenset] = {}
    cursor = 0
    for block in reader.chunks("sets"):  # repro-lint: budget=O(Σ|σ(u)|)
        if not isinstance(block, list):
            raise ValueError(f"{reader.path}: sets section is not a JSON list")
        for members in block:
            if cursor >= node_count:
                raise ValueError(f"{reader.path}: more reachability sets than nodes")
            try:
                sets[labels[cursor]] = frozenset(labels[index] for index in members)
            except (IndexError, TypeError) as exc:
                raise ValueError(
                    f"{reader.path}: reachability set {cursor} references an "
                    f"unknown label: {exc}"
                ) from exc
            cursor += 1
    if cursor != node_count:
        raise ValueError(
            f"{reader.path}: expected {node_count} reachability sets, found {cursor}"
        )
    return ExactInfluenceOracle(sets)


def _load_approx(reader: SnapshotReader) -> ApproxInfluenceOracle:
    node_count = _meta_int(reader, "node_count")
    num_cells = _meta_int(reader, "num_cells")
    if num_cells <= 0:
        raise ValueError(f"{reader.path}: snapshot meta field 'num_cells' must be > 0")
    labels = _load_labels(reader, node_count)
    registers: Dict[Node, List[int]] = {}
    cursor = 0
    for name in reader.section_names:  # repro-lint: budget=O(n·β)
        if not name.startswith("registers/"):
            continue
        block = reader.read_section(name)
        if len(block) % num_cells:
            raise ValueError(
                f"{reader.path}: section {name!r} holds {len(block)} bytes, "
                f"not a multiple of num_cells={num_cells}"
            )
        for start in range(0, len(block), num_cells):
            if cursor >= node_count:
                raise ValueError(f"{reader.path}: more register arrays than nodes")
            registers[labels[cursor]] = list(block[start : start + num_cells])
            cursor += 1
    if cursor != node_count:
        raise ValueError(
            f"{reader.path}: expected {node_count} register arrays, found {cursor}"
        )
    return ApproxInfluenceOracle(registers, num_cells)


def load_oracle(path: str) -> Union[ExactInfluenceOracle, ApproxInfluenceOracle]:
    """Reconstruct the oracle stored at ``path``.

    Sections are read chunk by chunk (the reader never buffers the whole
    file), and each section is CRC-verified as it streams in.
    """
    with SnapshotReader(path) as reader, obs.span("serve.snapshot_load", kind=reader.kind):
        if reader.kind == "exact":
            oracle: Union[ExactInfluenceOracle, ApproxInfluenceOracle] = _load_exact(reader)
        elif reader.kind == "approx":
            oracle = _load_approx(reader)
        else:
            raise ValueError(
                f"{path}: snapshot holds {reader.kind!r} data, not an oracle "
                "(use load_sketches for 'vhll' snapshots)"
            )
        _SNAPSHOT_BYTES.set(reader.size_bytes())
        return oracle


def load_sketches(path: str) -> Dict[Node, VersionedHLL]:
    """Reconstruct a ``vhll`` snapshot into a ``node → VersionedHLL`` map."""
    with SnapshotReader(path) as reader, obs.span("serve.snapshot_load", kind=reader.kind):
        if reader.kind != "vhll":
            raise ValueError(
                f"{path}: snapshot holds {reader.kind!r} data, not sketches "
                "(use load_oracle for oracle snapshots)"
            )
        node_count = _meta_int(reader, "node_count")
        precision = _meta_int(reader, "precision")
        salt = reader.meta.get("salt")
        if isinstance(salt, bool) or not isinstance(salt, int):
            raise ValueError(f"{path}: snapshot meta field 'salt' must be an integer")
        labels = _load_labels(reader, node_count)
        sketches: Dict[Node, VersionedHLL] = {}
        cursor = 0
        # repro-lint: budget=O(n·cells) — one from_dict per stored sketch.
        for block in reader.chunks("sketches"):
            if not isinstance(block, list):
                raise ValueError(f"{path}: sketches section is not a JSON list")
            for cells in block:
                if cursor >= node_count:
                    raise ValueError(f"{path}: more sketches than nodes")
                try:
                    sketches[labels[cursor]] = VersionedHLL.from_dict(
                        {"precision": precision, "salt": salt, "cells": cells}
                    )
                except (ValueError, TypeError) as exc:
                    raise ValueError(
                        f"{path}: sketch {cursor} is not a valid VersionedHLL "
                        f"payload: {exc}"
                    ) from exc
                cursor += 1
        if cursor != node_count:
            raise ValueError(f"{path}: expected {node_count} sketches, found {cursor}")
        return sketches


def snapshot_info(path: str) -> Dict[str, object]:
    """Header-only metadata of a snapshot (no data sections are read)."""
    with SnapshotReader(path) as reader:
        return {
            "path": path,
            "kind": reader.kind,
            "meta": dict(reader.meta),
            "sections": list(reader.section_names),
            "bytes": reader.size_bytes(),
        }
