"""Request identity and the structured JSON access log.

Every request through the serving tier gets a **request id**: the
inbound ``X-Request-Id`` header when the client sent a well-formed one
(so ids minted by an upstream proxy or the load generator survive the
hop), a freshly generated id otherwise.  The id is echoed in the
response header, stamped onto the request's trace context
(:func:`repro.obs.request_context`) so spans and profiler frames
attribute under it, and written into the access log — the three legs
that make a single slow request findable after the fact.

The access log itself is one JSON object per line (sorted keys, append
mode, flushed per record so a crash loses at most the in-flight line)
plus a bounded in-memory ring of the most recent entries, served live at
``/v1/debug/requests``.  The ring works even when no file path is
configured, so the debug endpoint costs nothing to keep on.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.utils.timer import wall_clock_unix
from repro.utils.validation import require_int, require_type

__all__ = [
    "AccessLog",
    "DEFAULT_RING_SIZE",
    "REQUEST_ID_HEADER",
    "RequestIdGenerator",
    "normalize_request_id",
]

#: The trace-context header honoured inbound and echoed outbound.
REQUEST_ID_HEADER = "X-Request-Id"

#: Most recent access-log entries retained for ``/v1/debug/requests``.
DEFAULT_RING_SIZE = 256

#: Longest accepted inbound request id; longer values are replaced.
MAX_REQUEST_ID_LENGTH = 128

_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:-"
)


def normalize_request_id(raw: Optional[str]) -> Optional[str]:
    """The validated form of an inbound request id, or ``None``.

    Accepts 1–128 characters drawn from ``[A-Za-z0-9._:-]`` after
    stripping surrounding whitespace; anything else (empty, oversized,
    control characters, header-splitting attempts) is rejected so a
    hostile client cannot inject log lines or mint unbounded label text.
    """
    if raw is None:
        return None
    candidate = raw.strip()
    if not candidate or len(candidate) > MAX_REQUEST_ID_LENGTH:
        return None
    if not all(ch in _ID_CHARS for ch in candidate):
        return None
    return candidate


class RequestIdGenerator:
    """Mints process-unique request ids: ``<random prefix>-<sequence>``.

    The prefix comes from ``os.urandom`` once per generator so two
    serving processes restarted back to back cannot collide; the
    sequence is an atomic counter (``itertools.count`` advances under
    the GIL), so generation is lock-free on the request path.
    """

    def __init__(self) -> None:
        self._prefix = os.urandom(4).hex()
        self._sequence = itertools.count(1)

    def next_id(self) -> str:
        """A fresh id, e.g. ``"9f3a01bc-000017"``."""
        return f"{self._prefix}-{next(self._sequence):06d}"


class AccessLog:
    """Structured JSON-lines access log plus a bounded in-memory ring.

    ``path`` may be empty: the ring (and therefore the live debug
    endpoint) still works, nothing touches the filesystem.  Records are
    serialised outside the lock; the lock covers only the ring append
    and the file write, so concurrent handler threads interleave whole
    lines, never fragments.
    """

    def __init__(self, path: str = "", ring_size: int = DEFAULT_RING_SIZE) -> None:
        require_type(path, "path", str)
        require_int(ring_size, "ring_size")
        if ring_size <= 0:
            raise ValueError(f"ring_size must be > 0, got {ring_size}")
        self.path = path
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=ring_size)  # repro-lint: guarded-by=_lock
        self._dropped = 0  # repro-lint: guarded-by=_lock
        self._handle = open(path, "a", encoding="utf-8") if path else None  # repro-lint: guarded-by=_lock

    @property
    def ring_size(self) -> int:
        """Maximum number of entries the ring retains."""
        # maxlen is frozen at construction — no lock needed to read it.
        return self._ring.maxlen or 0  # repro-lint: disable=R201

    def record(self, entry: Dict[str, object]) -> None:
        """Append one entry (stamped with a ``ts`` wall-clock field)."""
        stamped = dict(entry)
        stamped.setdefault("ts", round(wall_clock_unix(), 6))
        line = json.dumps(stamped, sort_keys=True, default=str)
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(stamped)
            if self._handle is not None:
                try:
                    self._handle.write(line + "\n")
                    self._handle.flush()
                except OSError:
                    # A full disk must not take the serving path down;
                    # the ring keeps the recent window available.
                    pass

    def recent(self, limit: int = 0) -> List[Dict[str, object]]:
        """The newest entries, oldest first (all of them when ``limit=0``)."""
        require_int(limit, "limit")
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        with self._lock:
            entries = list(self._ring)
        return entries[-limit:] if limit else entries

    def stats(self) -> Dict[str, object]:
        """Ring occupancy and how many entries have scrolled out of it."""
        with self._lock:
            return {
                "ring_entries": len(self._ring),
                "ring_size": self._ring.maxlen,
                "dropped_from_ring": self._dropped,
                "path": self.path,
            }

    def close(self) -> None:
        """Flush and close the file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
