"""``OracleService`` — a thread-safe query front over an influence oracle.

The oracle answers ``Inf(S)`` in microseconds, but a serving process
needs more than the raw call: repeated seed sets should not be recomputed
(social dashboards hammer the same handful of campaigns), many queries
arrive per request, and the underlying snapshot must be replaceable while
traffic is flowing.  This module adds exactly those three things:

* an **LRU spread cache** keyed by the *frozenset* of seeds (order- and
  duplicate-insensitive, like ``Inf`` itself), instrumented with
  ``serve.cache_hits`` / ``serve.cache_misses`` counters and a
  ``serve.cache_size`` gauge;
* **batched and ranked endpoints** — ``spread_many``, ``influence_topk``
  (heap scan over every node) and ``greedy_seeds`` (the §4.2 greedy /
  CELF selectors);
* a **read-write-locked hot swap** — ``reload(path)`` builds the new
  oracle from a snapshot *outside* any lock, then takes the write side
  only for the pointer swap, so in-flight queries finish against the old
  oracle and the pause is microseconds regardless of snapshot size.

Every public endpoint records ``serve.request_seconds{endpoint,status}``
through the shared :mod:`repro.obs` registry.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

import repro.obs as obs
from repro.core.maximization import celf_top_k, greedy_top_k, top_k_by_influence
from repro.core.oracle import InfluenceOracle
from repro.obs import OBS_STATE as _OBS
from repro.utils.timer import Timer
from repro.utils.validation import require_int, require_positive, require_type

__all__ = ["OracleService", "ReadWriteLock", "SERVE_TIME_BUCKETS", "SpreadCache"]

Node = Hashable

#: Latency-histogram bounds tuned for the serving tier.  The paper's
#: Fig. 4 claim is microsecond-to-millisecond oracle queries, so the
#: default build-scale bounds (1µs…10s in decades) collapse the entire
#: serving range into two buckets; these add 2.5×/4× steps through the
#: 100µs–100ms band where p99 objectives actually live, while keeping a
#: 10s tail so nothing falls off the end of the cumulative export.
SERVE_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)

_REQUEST_SECONDS = obs.histogram(
    "serve.request_seconds",
    "Serving-layer request latency by endpoint and outcome status.",
    buckets=SERVE_TIME_BUCKETS,
)
_CACHE_HITS = obs.counter(
    "serve.cache_hits", "Spread queries answered from the LRU cache."
)
_CACHE_MISSES = obs.counter(
    "serve.cache_misses", "Spread queries that had to consult the oracle."
)
_CACHE_SIZE = obs.gauge("serve.cache_size", "Entries currently in the spread cache.")
_RELOADS = obs.counter("serve.reloads", "Hot snapshot swaps performed.")

#: Selector names accepted by :meth:`OracleService.greedy_seeds`.
GREEDY_METHODS = ("greedy", "celf")


class ReadWriteLock:
    """A writer-priority read-write lock (stdlib primitives only).

    Any number of readers may hold the lock together; a writer waits for
    them to drain and excludes everyone.  Arriving readers queue behind a
    waiting writer so a steady query stream cannot starve ``reload``.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # repro-lint: guarded-by=_cond
        self._writer_active = False  # repro-lint: guarded-by=_cond
        self._writers_waiting = 0  # repro-lint: guarded-by=_cond

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared (reader) side for the ``with`` body."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive (writer) side for the ``with`` body."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


_MISS = object()  # cache-miss sentinel (0.0 is a legitimate spread)


class SpreadCache:
    """A lock-guarded LRU of ``frozenset(seeds) → spread`` results.

    ``capacity == 0`` disables caching (every lookup misses, nothing is
    stored) without a special case at the call site.
    """

    def __init__(self, capacity: int) -> None:
        require_int(capacity, "capacity")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity  # immutable after construction
        self._entries: "OrderedDict[frozenset, float]" = OrderedDict()  # repro-lint: guarded-by=_lock
        self._lock = threading.Lock()
        self.hits = 0  # repro-lint: guarded-by=_lock
        self.misses = 0  # repro-lint: guarded-by=_lock
        self._tls = threading.local()  # per-thread hit/miss window, lock-free

    @property
    def capacity(self) -> int:
        """Maximum number of cached spreads."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: frozenset) -> object:
        """The cached spread for ``key``, or the module-private miss sentinel."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                _CACHE_MISSES.inc()
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                _CACHE_HITS.inc()
        window = getattr(self._tls, "window", None)
        if window is not None:
            window[0 if value is not _MISS else 1] += 1
        return value

    def begin_window(self) -> None:
        """Start a fresh hit/miss window on the calling thread.

        The serving tier opens a window per request so the access log
        can attribute cache behaviour to the request that caused it —
        thread-local, so concurrent handler threads never mix counts.
        """
        self._tls.window = [0, 0]

    def window(self) -> Tuple[int, int]:
        """``(hits, misses)`` on this thread since :meth:`begin_window`."""
        window = getattr(self._tls, "window", None)
        if window is None:
            return (0, 0)
        return (window[0], window[1])

    def put(self, key: frozenset, value: float) -> None:
        """Store ``key → value``, evicting the least recently used entries."""
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            _CACHE_SIZE.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are kept)."""
        with self._lock:
            self._entries.clear()
            _CACHE_SIZE.set(0)

    def stats(self) -> Dict[str, object]:
        """Size, capacity, hit/miss counts and the lifetime hit rate."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }


class OracleService:
    """Concurrent query service over one (swappable) influence oracle.

    Parameters
    ----------
    oracle:
        Any :class:`~repro.core.oracle.InfluenceOracle`.
    cache_size:
        Spread-cache capacity; ``0`` disables caching.
    source:
        Optional provenance string (the snapshot path, typically) echoed
        by :meth:`info`.
    """

    def __init__(
        self,
        oracle: InfluenceOracle,
        cache_size: int = 1024,
        source: str = "",
    ) -> None:
        require_type(oracle, "oracle", InfluenceOracle)
        self._oracle = oracle  # repro-lint: guarded-by=_swap_lock
        self._cache = SpreadCache(cache_size)  # internally synchronised
        self._swap_lock = ReadWriteLock()
        self._counts_lock = threading.Lock()
        self._request_counts: Dict[str, int] = {}  # repro-lint: guarded-by=_counts_lock
        self._error_counts: Dict[str, int] = {}  # repro-lint: guarded-by=_counts_lock
        self._generation = 1  # repro-lint: guarded-by=_swap_lock
        self._source = source  # repro-lint: guarded-by=_swap_lock

    @classmethod
    def from_snapshot(cls, path: str, cache_size: int = 1024) -> "OracleService":
        """Build a service from a ``repro-snap/1`` oracle snapshot."""
        from repro.serve.snapshot import load_oracle

        return cls(load_oracle(path), cache_size=cache_size, source=path)

    # ------------------------------------------------------------------
    # Instrumentation plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _tracked(self, endpoint: str) -> Iterator[None]:
        """Count the request and time it into ``serve.request_seconds``."""
        with self._counts_lock:
            self._request_counts[endpoint] = self._request_counts.get(endpoint, 0) + 1
        if not _OBS.enabled:
            try:
                yield
            except Exception:
                with self._counts_lock:
                    self._error_counts[endpoint] = self._error_counts.get(endpoint, 0) + 1
                raise
            return
        timer = Timer()
        status = "ok"
        try:
            with timer:
                yield
        except Exception:
            status = "error"
            with self._counts_lock:
                self._error_counts[endpoint] = self._error_counts.get(endpoint, 0) + 1
            raise
        finally:
            _REQUEST_SECONDS.labels(endpoint=endpoint, status=status).observe(
                timer.elapsed
            )

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    def contains(self, node: Node) -> bool:
        """True when the current oracle knows ``node``."""
        with self._swap_lock.read():
            try:
                # Both bundled oracles return a dict view: O(1) membership.
                return node in self._oracle.nodes()
            except TypeError:
                return False

    def influence(self, node: Node) -> float:
        """``|σω(node)|`` (or its estimate) from the current oracle."""
        with self._tracked("influence"), self._swap_lock.read():
            return self._oracle.influence(node)

    def spread(self, seeds: Iterable[Node]) -> float:
        """``Inf(seeds)``, served from the LRU cache when possible."""
        with self._tracked("spread"), self._swap_lock.read():
            return self._spread_locked(seeds)

    def _spread_locked(self, seeds: Iterable[Node]) -> float:
        key = frozenset(seeds)
        cached = self._cache.get(key)
        if cached is not _MISS:
            return float(cached)  # type: ignore[arg-type]
        value = self._oracle.spread(key)
        self._cache.put(key, value)
        return value

    def spread_many(self, seed_sets: Sequence[Iterable[Node]]) -> List[float]:
        """``Inf`` of each seed set, one oracle pass per cache miss."""
        require_type(seed_sets, "seed_sets", (list, tuple))
        with self._tracked("spread_many"), self._swap_lock.read():
            return [self._spread_locked(seeds) for seeds in seed_sets]

    def influence_topk(self, k: int) -> List[Tuple[Node, float]]:
        """The ``k`` nodes with the largest individual influence.

        A bounded-heap scan over every node — O(n log k) — with ties
        broken deterministically by node repr.
        """
        with self._tracked("topk"), self._swap_lock.read():
            require_int(k, "k")
            require_positive(k, "k")
            oracle = self._oracle
            # repro-lint: budget=O(n log k) — bounded-heap scan over all nodes.
            ranked = heapq.nsmallest(
                k,
                ((oracle.influence(node), repr(node), node) for node in oracle.nodes()),
                key=lambda entry: (-entry[0], entry[1]),
            )
            return [(node, influence) for influence, _, node in ranked]

    def greedy_seeds(self, k: int, method: str = "greedy") -> List[Node]:
        """A ``k``-seed set by submodular greedy (``greedy``) or CELF."""
        with self._tracked("seeds"), self._swap_lock.read():
            require_int(k, "k")
            require_positive(k, "k")
            if method not in GREEDY_METHODS:
                raise ValueError(
                    f"unknown seed-selection method {method!r}; "
                    f"use one of {GREEDY_METHODS}"
                )
            selector = greedy_top_k if method == "greedy" else celf_top_k
            return selector(self._oracle, k)

    def top_influencers(self, k: int) -> List[Node]:
        """Overlap-blind top-``k`` (the HD analogue), for comparisons."""
        with self._tracked("topk"), self._swap_lock.read():
            require_int(k, "k")
            require_positive(k, "k")
            return top_k_by_influence(self._oracle, k)

    # ------------------------------------------------------------------
    # Hot swap + introspection
    # ------------------------------------------------------------------
    def reload(self, path: str) -> Dict[str, object]:
        """Swap in the oracle stored at ``path`` without dropping queries.

        The snapshot is parsed *before* any lock is taken; the write lock
        covers only the pointer swap and cache flush, so concurrent
        readers observe either the old or the new oracle, never a torn
        state, and wait microseconds at most.
        """
        from repro.serve.snapshot import load_oracle

        with self._tracked("reload"):
            fresh = load_oracle(path)
            with self._swap_lock.write():
                self._oracle = fresh
                self._source = path
                self._generation += 1
                generation = self._generation
            self._cache.clear()
            _RELOADS.inc()
        return {
            "generation": generation,
            "source": path,
            "nodes": self.node_count(),
        }

    def swap_oracle(self, oracle: InfluenceOracle, source: str = "") -> int:
        """Like :meth:`reload` but with an already-built oracle; returns the generation."""
        require_type(oracle, "oracle", InfluenceOracle)
        with self._swap_lock.write():
            self._oracle = oracle
            self._source = source
            self._generation += 1
            generation = self._generation
        self._cache.clear()
        _RELOADS.inc()
        return generation

    def begin_cache_window(self) -> None:
        """Open a per-request cache hit/miss window on this thread."""
        self._cache.begin_window()

    def cache_window(self) -> Tuple[int, int]:
        """``(hits, misses)`` on this thread since :meth:`begin_cache_window`."""
        return self._cache.window()

    def generation(self) -> int:
        """The live snapshot generation (bumps on every swap)."""
        with self._swap_lock.read():
            return self._generation

    def node_count(self) -> int:
        """Number of nodes the current oracle answers about."""
        with self._swap_lock.read():
            nodes = self._oracle.nodes()
            try:
                return len(nodes)  # type: ignore[arg-type]
            except TypeError:
                return sum(1 for _ in nodes)

    def info(self) -> Dict[str, object]:
        """Kind, node count, provenance and generation of the live oracle."""
        with self._swap_lock.read():
            kind = type(self._oracle).__name__
            generation = self._generation
            source = self._source
        return {
            "kind": kind,
            "nodes": self.node_count(),
            "generation": generation,
            "source": source,
        }

    def stats(self) -> Dict[str, object]:
        """Cache statistics plus per-endpoint request/error counts."""
        with self._counts_lock:
            requests = dict(self._request_counts)
            errors = dict(self._error_counts)
        with self._swap_lock.read():
            generation = self._generation
        return {
            "cache": self._cache.stats(),
            "requests": requests,
            "errors": errors,
            "generation": generation,
        }
