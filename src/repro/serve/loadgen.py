"""Closed-loop load generator for the oracle serving layer.

Drives an :class:`~repro.serve.service.OracleService` — either in-process
or over HTTP — with a deterministic synthetic workload, and reports
latency percentiles the way a serving benchmark should: per-request
wall-clock measured around the *whole* call, p50/p95/p99 over the merged
per-thread samples, zero tolerance for errors.

Closed loop means each worker thread issues its next request only after
the previous one completed, so concurrency equals the thread count and
the measured latency is not inflated by client-side queueing.

The workload mirrors a dashboard-style query mix: mostly ``spread``
queries drawn from a small pool of recurring seed sets (which is what
makes the LRU cache earn its keep), some ``influence`` point lookups and
the occasional ``topk`` scan.  Everything is seeded through
:mod:`repro.utils.rng`, so two runs against the same snapshot issue the
same requests in the same per-thread order.

``ingest_fraction`` mixes *writes* into the stream: that share of
requests POST interaction batches to ``/v1/ingest`` (or apply straight
to an in-process :class:`~repro.ingest.live.LiveIndex`), so the reported
read percentiles measure query latency **under concurrent ingestion** —
the contention the writer-priority lock is supposed to keep small.
Event times come from a shared monotonic :class:`IngestClock` at *send*
time, because pre-assigning them per request would go stale under
multi-threaded reordering; the server counts any stragglers as
``rejected``, never as errors.

Also runnable standalone::

    python -m repro.serve.loadgen --snapshot oracle.snap --requests 1000
    python -m repro.serve.loadgen --url http://127.0.0.1:8750 --requests 500
    python -m repro.serve.loadgen --url ... --ingest-fraction 0.2
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.serve.accesslog import REQUEST_ID_HEADER, RequestIdGenerator
from repro.serve.service import OracleService
from repro.utils.rng import RngLike, resolve_rng
from repro.utils.timer import Timer
from repro.utils.validation import require_int, require_positive, require_type

__all__ = [
    "HttpClient",
    "IngestClock",
    "LoadgenReport",
    "ServiceClient",
    "main",
    "run_loadgen",
    "synth_workload",
]

Node = Hashable

#: Request mix: cumulative probability bounds for (spread, influence, topk).
_SPREAD_SHARE = 0.70
_INFLUENCE_SHARE = 0.25


class IngestClock:
    """Monotonic event-time source shared by all loadgen workers.

    The live index requires non-decreasing event times; stamping at
    *send* time under one lock keeps concurrent workers ordered without
    coordinating the request schedule itself.
    """

    def __init__(self, start: int = 1) -> None:
        require_int(start, "start")
        self._lock = threading.Lock()
        self._now = start  # repro-lint: guarded-by=_lock

    def next_time(self) -> int:
        """The next (strictly increasing) event time."""
        with self._lock:
            self._now += 1
            return self._now


def synth_workload(
    nodes: Sequence[Node],
    count: int,
    rng: RngLike = 0,
    pool_size: int = 32,
    max_seeds: int = 8,
    ingest_fraction: float = 0.0,
    ingest_pairs: int = 4,
) -> List[Dict[str, object]]:
    """``count`` deterministic request dicts over ``nodes``.

    ``pool_size`` recurring seed sets are drawn first; each spread request
    then picks from the pool with a rank-skewed preference (earlier sets
    are hotter), so any cache larger than the pool converges to a high
    hit rate — the realistic shape of dashboard traffic.

    ``ingest_fraction`` of the requests become write batches of
    ``ingest_pairs`` random ``[source, target]`` pairs (times are stamped
    by the client at send time); the read mix keeps its internal 70/25/5
    proportions over the remaining share.
    """
    require_int(count, "count")
    require_positive(count, "count")
    require_int(pool_size, "pool_size")
    require_positive(pool_size, "pool_size")
    require_int(max_seeds, "max_seeds")
    require_positive(max_seeds, "max_seeds")
    require_type(ingest_fraction, "ingest_fraction", (int, float))
    if not 0.0 <= ingest_fraction <= 1.0:
        raise ValueError(
            f"ingest_fraction must be within [0, 1], got {ingest_fraction}"
        )
    require_int(ingest_pairs, "ingest_pairs")
    require_positive(ingest_pairs, "ingest_pairs")
    if not nodes:
        raise ValueError("synth_workload needs a non-empty node sequence")
    generator = resolve_rng(rng)
    universe = list(nodes)
    pool: List[List[Node]] = []
    for _ in range(pool_size):
        size = 1 + generator.randrange(max_seeds)
        pool.append([generator.choice(universe) for _ in range(size)])
    read_share = 1.0 - ingest_fraction
    spread_bound = ingest_fraction + _SPREAD_SHARE * read_share
    influence_bound = spread_bound + _INFLUENCE_SHARE * read_share
    requests: List[Dict[str, object]] = []
    for _ in range(count):
        roll = generator.random()
        if roll < ingest_fraction:
            pairs = [
                [generator.choice(universe), generator.choice(universe)]
                for _ in range(ingest_pairs)
            ]
            requests.append({"endpoint": "ingest", "pairs": pairs})
        elif roll < spread_bound:
            # Rank-skewed pool pick: square the uniform draw so low ranks
            # (hot seed sets) dominate without starving the tail.
            rank = int(generator.random() ** 2 * len(pool))
            requests.append({"endpoint": "spread", "seeds": list(pool[rank])})
        elif roll < influence_bound:
            requests.append({"endpoint": "influence", "node": generator.choice(universe)})
        else:
            requests.append({"endpoint": "topk", "k": 1 + generator.randrange(10)})
    return requests


class ServiceClient:
    """Executes workload requests against an in-process service.

    Pass a :class:`~repro.ingest.live.LiveIndex` as ``live`` to accept
    ``ingest`` workload ops; its event times come from ``clock``.
    """

    def __init__(
        self,
        service: OracleService,
        live: Optional[object] = None,
        clock: Optional[IngestClock] = None,
    ) -> None:
        require_type(service, "service", OracleService)
        self._service = service
        self._live = live
        self._clock = clock if clock is not None else IngestClock()

    def request(self, op: Dict[str, object]) -> object:
        """Execute one workload request; raises on service errors."""
        endpoint = op["endpoint"]
        if endpoint == "spread":
            return self._service.spread(op["seeds"])  # type: ignore[arg-type]
        if endpoint == "influence":
            return self._service.influence(op["node"])
        if endpoint == "topk":
            return self._service.influence_topk(op["k"])  # type: ignore[arg-type]
        if endpoint == "ingest":
            if self._live is None:
                raise ValueError(
                    "ingest workload needs a live index; pass ServiceClient(service, live=...)"
                )
            time = self._clock.next_time()
            events = [
                (source, target, time)
                for source, target in op["pairs"]  # type: ignore[union-attr]
            ]
            return self._live.apply_events(events)  # type: ignore[attr-defined]
        raise ValueError(f"unknown workload endpoint {endpoint!r}")


class HttpClient:
    """Executes workload requests against a running ``repro serve``.

    Every request carries a client-minted ``X-Request-Id`` header, so
    the server's access log and spans attribute under ids the load
    generator can correlate with its own latency samples.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        clock: Optional[IngestClock] = None,
    ) -> None:
        require_type(base_url, "base_url", str)
        self._base = base_url.rstrip("/")
        self._timeout = timeout
        self._request_ids = RequestIdGenerator()
        self._clock = clock if clock is not None else IngestClock()

    def request(self, op: Dict[str, object]) -> object:
        """POST one workload request; raises on any non-200 answer."""
        endpoint = op["endpoint"]
        if endpoint == "spread":
            route, body = "/v1/spread", {"seeds": op["seeds"]}
        elif endpoint == "influence":
            route, body = "/v1/influence", {"node": op["node"]}
        elif endpoint == "topk":
            route, body = "/v1/topk", {"k": op["k"], "method": "influence"}
        elif endpoint == "ingest":
            time = self._clock.next_time()
            route, body = "/v1/ingest", {
                "events": [
                    [source, target, time]
                    for source, target in op["pairs"]  # type: ignore[union-attr]
                ]
            }
        else:
            raise ValueError(f"unknown workload endpoint {endpoint!r}")
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self._base + route,
            data=data,
            headers={
                "Content-Type": "application/json",
                REQUEST_ID_HEADER: f"loadgen:{self._request_ids.next_id()}",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self._timeout) as response:
            return json.loads(response.read().decode("utf-8"))


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(quantile * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class LoadgenReport:
    """Latency and error summary of one closed-loop run."""

    requests: int
    errors: int
    threads: int
    elapsed_seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    per_endpoint: Dict[str, int] = field(default_factory=dict)
    error_messages: Tuple[str, ...] = ()

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (the CI artifact format)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "threads": self.threads,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
                "max": self.max_ms,
            },
            "per_endpoint": dict(self.per_endpoint),
        }

    def table(self) -> str:
        """A small human-readable report block."""
        lines = [
            f"requests        {self.requests}",
            f"threads         {self.threads}",
            f"errors          {self.errors}",
            f"elapsed_s       {self.elapsed_seconds:.3f}",
            f"throughput_rps  {self.throughput_rps:.1f}",
            f"latency_p50_ms  {self.p50_ms:.3f}",
            f"latency_p95_ms  {self.p95_ms:.3f}",
            f"latency_p99_ms  {self.p99_ms:.3f}",
            f"latency_mean_ms {self.mean_ms:.3f}",
            f"latency_max_ms  {self.max_ms:.3f}",
        ]
        for endpoint in sorted(self.per_endpoint):
            lines.append(f"endpoint {endpoint:<12} {self.per_endpoint[endpoint]}")
        for message in self.error_messages:
            lines.append(f"error: {message}")
        return "\n".join(lines)


def run_loadgen(
    client: object,
    requests: Sequence[Dict[str, object]],
    threads: int = 4,
    join_timeout: float = 120.0,
) -> LoadgenReport:
    """Drive ``requests`` through ``client.request`` with ``threads`` workers.

    ``client`` is anything with a ``request(op) -> object`` method
    (:class:`ServiceClient`, :class:`HttpClient`, or a test double).
    Requests are claimed from a shared cursor, so the partition across
    threads adapts to per-request latency — the closed loop never idles a
    worker while requests remain.

    Workers are joined against one shared ``join_timeout`` budget; a
    worker still running when it expires (a hung request with no client
    timeout, a deadlock) is abandoned as a daemon and *reported as an
    error* in the returned report rather than hanging the run forever or
    silently vanishing at interpreter exit.
    """
    require_int(threads, "threads")
    require_positive(threads, "threads")
    if join_timeout <= 0:
        raise ValueError(f"join_timeout must be > 0, got {join_timeout}")
    send: Callable[[Dict[str, object]], object] = getattr(client, "request")
    cursor_lock = threading.Lock()
    cursor = [0]
    latencies: List[List[float]] = [[] for _ in range(threads)]
    endpoint_counts: List[Dict[str, int]] = [{} for _ in range(threads)]
    errors: List[List[str]] = [[] for _ in range(threads)]

    def worker(slot: int) -> None:
        local_latencies = latencies[slot]
        local_counts = endpoint_counts[slot]
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= len(requests):
                    return
                cursor[0] = index + 1
            op = requests[index]
            timer = Timer()
            try:
                with timer:
                    send(op)
            except (ValueError, TypeError, OSError, urllib.error.URLError) as exc:
                if len(errors[slot]) < 8:
                    errors[slot].append(f"{op.get('endpoint')}: {exc}")
                else:
                    errors[slot].append("")
                continue
            local_latencies.append(timer.elapsed)
            endpoint = str(op.get("endpoint"))
            local_counts[endpoint] = local_counts.get(endpoint, 0) + 1

    pool = [
        threading.Thread(
            target=worker, args=(slot,), name=f"loadgen-{slot}", daemon=True
        )
        for slot in range(threads)
    ]
    stuck: List[str] = []
    wall = Timer()
    with wall:
        for thread in pool:
            thread.start()
        remaining = join_timeout
        for thread in pool:
            if remaining > 0:
                join_timer = Timer()
                with join_timer:
                    thread.join(remaining)
                remaining = max(0.0, remaining - join_timer.elapsed)
            if thread.is_alive():
                stuck.append(
                    f"{thread.name}: still running after the {join_timeout:.0f}s "
                    "join timeout; worker abandoned"
                )

    merged = sorted(value for bucket in latencies for value in bucket)
    per_endpoint: Dict[str, int] = {}
    for counts in endpoint_counts:  # repro-lint: budget=O(threads·endpoints)
        for endpoint, count in counts.items():
            per_endpoint[endpoint] = per_endpoint.get(endpoint, 0) + count
    error_count = sum(len(bucket) for bucket in errors) + len(stuck)
    messages = tuple(
        [message for bucket in errors for message in bucket if message] + stuck
    )[:8]
    mean = sum(merged) / len(merged) if merged else 0.0
    return LoadgenReport(
        requests=len(merged),
        errors=error_count,
        threads=threads,
        elapsed_seconds=wall.elapsed,
        p50_ms=_percentile(merged, 0.50) * 1e3,
        p95_ms=_percentile(merged, 0.95) * 1e3,
        p99_ms=_percentile(merged, 0.99) * 1e3,
        mean_ms=mean * 1e3,
        max_ms=(merged[-1] if merged else 0.0) * 1e3,
        per_endpoint=per_endpoint,
        error_messages=messages,
    )


def _workload_nodes(client: object, service: Optional[OracleService]) -> List[Node]:
    """Node universe for workload synthesis (service- or HTTP-sourced)."""
    if service is not None:
        return [node for node, _ in service.influence_topk(k=512)]
    assert isinstance(client, HttpClient)
    ranked = client.request({"endpoint": "topk", "k": 512})
    assert isinstance(ranked, dict)
    return [entry["node"] for entry in ranked["seeds"]]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: generate load, print (or write) the report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Closed-loop load generator for the influence-oracle server.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--snapshot", help="drive an in-process service from this snapshot")
    target.add_argument("--url", help="drive a running server, e.g. http://127.0.0.1:8750")
    parser.add_argument("--requests", type=int, default=1000, help="request count")
    parser.add_argument("--threads", type=int, default=4, help="worker threads")
    parser.add_argument(
        "--join-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for workers before reporting them stuck",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload rng seed")
    parser.add_argument(
        "--pool-size", type=int, default=32, help="distinct recurring seed sets"
    )
    parser.add_argument(
        "--ingest-fraction",
        type=float,
        default=0.0,
        help="share of requests that POST interaction batches to /v1/ingest "
        "(default: 0 = read-only)",
    )
    parser.add_argument(
        "--live-window",
        type=int,
        default=10_000,
        help="live-index omega for in-process --snapshot runs with "
        "--ingest-fraction > 0 (default: 10000)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--output", "-o", default="", help="also write the report to this file"
    )
    args = parser.parse_args(argv)

    service: Optional[OracleService] = None
    client: object
    if args.snapshot:
        service = OracleService.from_snapshot(args.snapshot)
        live = None
        if args.ingest_fraction > 0:
            from repro.ingest.live import LiveIndex

            live = LiveIndex(window=args.live_window)
        client = ServiceClient(service, live=live)
    else:
        client = HttpClient(args.url)
    try:
        nodes = _workload_nodes(client, service)
        workload = synth_workload(
            nodes,
            args.requests,
            rng=args.seed,
            pool_size=args.pool_size,
            ingest_fraction=args.ingest_fraction,
        )
        report = run_loadgen(
            client, workload, threads=args.threads, join_timeout=args.join_timeout
        )
    except (OSError, ValueError, urllib.error.URLError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    rendered = (
        json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.format == "json"
        else report.table()
    )
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if service is not None:
        cache = service.stats()["cache"]
        assert isinstance(cache, dict)
        print(f"cache hit-rate: {cache['hit_rate']:.1%}")
    return 0 if report.errors == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
