"""``repro ingest`` — the command-line face of the live subsystem.

Two subcommands, both talking HTTP to a ``repro serve --live`` process:

``repro ingest tail LOG --url http://host:port``
    Stream an interaction log into ``/v1/ingest``, batch by batch;
    ``--follow`` keeps tailing appended lines like ``tail -f``.
``repro ingest topk --url http://host:port``
    Print the continuously maintained top-k influencers from
    ``/v1/topk_live``.

Wired into the main parser through :func:`add_ingest_parser`, the same
plug-in pattern :mod:`repro.xp.cli` uses.
"""

from __future__ import annotations

import argparse
import json

from repro.ingest.tail import DEFAULT_BATCH, HttpIngestClient, tail_file

__all__ = ["add_ingest_parser", "command_ingest"]


def add_ingest_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``ingest`` subcommand on the main CLI parser."""
    ingest_cmd = commands.add_parser(
        "ingest", help="feed live interactions into a running server"
    )
    actions = ingest_cmd.add_subparsers(dest="ingest_command", required=True)

    tail_cmd = actions.add_parser(
        "tail", help="stream an interaction log into /v1/ingest"
    )
    tail_cmd.add_argument("log", help="interaction log ('source target time' lines)")
    tail_cmd.add_argument(
        "--url", required=True, help="base URL of a repro serve --live process"
    )
    tail_cmd.add_argument(
        "--batch",
        type=int,
        default=DEFAULT_BATCH,
        help=f"events per POST (default: {DEFAULT_BATCH})",
    )
    tail_cmd.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing appended lines after EOF (tail -f)",
    )
    tail_cmd.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between EOF polls in --follow mode (default: 0.2)",
    )
    tail_cmd.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="stop after posting N events (default: unbounded)",
    )
    tail_cmd.add_argument(
        "--timeout", type=float, default=10.0, help="per-request HTTP timeout"
    )

    topk_cmd = actions.add_parser(
        "topk", help="print the live top-k influencers from /v1/topk_live"
    )
    topk_cmd.add_argument(
        "--url", required=True, help="base URL of a repro serve --live process"
    )
    topk_cmd.add_argument(
        "--k", type=int, default=10, help="how many influencers (default: 10)"
    )
    topk_cmd.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output rendering (default: table)",
    )
    topk_cmd.add_argument(
        "--timeout", type=float, default=10.0, help="per-request HTTP timeout"
    )


def command_ingest(args: argparse.Namespace, out) -> int:
    """Dispatch an ``ingest`` invocation; returns a process exit code."""
    if args.ingest_command == "tail":
        client = HttpIngestClient(args.url, timeout=args.timeout)
        tally = tail_file(
            args.log,
            client.ingest,
            batch=args.batch,
            follow=args.follow,
            poll=args.poll,
            max_events=args.max_events,
        )
        print(
            f"posted {tally['posted']} events in {tally['batches']} batches: "
            f"{tally['applied']} applied, {tally['rejected']} rejected, "
            f"{tally['malformed']} malformed lines skipped",
            file=out,
        )
        return 0
    client = HttpIngestClient(args.url, timeout=args.timeout)
    response = client.topk_live(args.k)
    if args.format == "json":
        print(json.dumps(response, sort_keys=True, indent=2), file=out)
        return 0
    print(
        f"live top-{response['k']} ({response['mode']} mode, "
        f"last_time={response['last_time']}, horizon={response['horizon']})",
        file=out,
    )
    ranking = response.get("ranking")
    if not isinstance(ranking, list) or not ranking:
        print("  (no influencers yet)", file=out)
        return 0
    width = max(len(str(entry.get("node"))) for entry in ranking)
    for rank, entry in enumerate(ranking, start=1):
        print(
            f"  {rank:>3}. {str(entry.get('node')):<{width}}  "
            f"{entry.get('influence')}",
            file=out,
        )
    return 0
