"""Log tailing for the ingest front (``repro ingest tail``).

Reads ``source target time`` lines — the
:meth:`~repro.core.interactions.InteractionLog.read` on-disk format — and
posts them in batches to a running server's ``/v1/ingest`` endpoint.
``follow`` mode keeps the file open and polls for appended lines, the
classic ``tail -f`` loop, so a simulator writing interactions and a
server indexing them can run side by side.

Malformed lines are counted and skipped (one bad line must not stall a
live feed); the final tally distinguishes posted, rejected-by-server and
skipped-as-malformed events so operators can see data-quality problems
at a glance.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from typing import Callable, Dict, List, Optional, Tuple

from repro.utils.validation import require_int, require_positive, require_type

__all__ = ["HttpIngestClient", "parse_event_line", "tail_file"]

Event = Tuple[str, str, int]

#: Post this many events per ``/v1/ingest`` request by default.
DEFAULT_BATCH = 500


def parse_event_line(line: str) -> Optional[Event]:
    """``"u v t"`` → ``("u", "v", t)``; None for blank/comment/bad lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 3:
        return None
    try:
        return parts[0], parts[1], int(parts[2])
    except ValueError:
        return None


def tail_file(
    path: str,
    post: Callable[[List[Event]], Dict[str, object]],
    batch: int = DEFAULT_BATCH,
    follow: bool = False,
    poll: float = 0.2,
    max_events: Optional[int] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, int]:
    """Stream events from ``path`` through ``post`` in batches.

    Parameters
    ----------
    path:
        Interaction log to read (``source target time`` lines).
    post:
        Called with each batch; returns the server's ingest response
        (``applied`` / ``rejected`` counts are folded into the tally).
    batch:
        Maximum events per ``post`` call.
    follow:
        Keep polling for appended lines after EOF (``tail -f``).
    poll:
        Seconds to sleep between EOF polls in follow mode.
    max_events:
        Stop after posting this many events (None = unbounded).
    stop:
        Optional predicate checked at EOF; return True to end follow mode.
    """
    require_type(path, "path", str)
    require_int(batch, "batch")
    require_positive(batch, "batch")
    if max_events is not None:
        require_int(max_events, "max_events")
        require_positive(max_events, "max_events")
    tally = {"posted": 0, "applied": 0, "rejected": 0, "malformed": 0, "batches": 0}
    pending: List[Event] = []
    # Interruptible poll sleep without importing the clock module (R106);
    # nothing ever sets this event — wait() is purely a bounded sleep.
    pause = threading.Event()

    def flush() -> None:
        if not pending:
            return
        response = post(list(pending))
        tally["posted"] += len(pending)
        tally["batches"] += 1
        tally["applied"] += int(response.get("applied", 0))  # type: ignore[arg-type]
        tally["rejected"] += int(response.get("rejected", 0))  # type: ignore[arg-type]
        pending.clear()

    done = False
    with open(path, "r", encoding="utf-8") as handle:
        while not done:
            line = handle.readline()
            if not line:
                flush()
                if not follow or (stop is not None and stop()):
                    break
                pause.wait(poll)
                continue
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue  # blanks and comments are structure, not bad data
            event = parse_event_line(stripped)
            if event is None:
                tally["malformed"] += 1
                continue
            pending.append(event)
            if max_events is not None and tally["posted"] + len(pending) >= max_events:
                done = True
            if done or len(pending) >= batch:
                flush()
    flush()
    return tally


class HttpIngestClient:
    """Tiny urllib client for the ingest endpoints of a running server."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        require_type(base_url, "base_url", str)
        self._base = base_url.rstrip("/")
        self._timeout = timeout

    def _post(self, route: str, payload: Dict[str, object]) -> Dict[str, object]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self._base}{route}",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self._timeout) as response:
            decoded = json.loads(response.read().decode("utf-8"))
        if not isinstance(decoded, dict):
            raise ValueError(f"expected a JSON object from {route}, got {decoded!r}")
        return decoded

    def ingest(self, events: List[Event]) -> Dict[str, object]:
        """POST a batch to ``/v1/ingest``; returns the apply summary."""
        return self._post("/v1/ingest", {"events": [list(event) for event in events]})

    def topk_live(self, k: int) -> Dict[str, object]:
        """POST ``/v1/topk_live`` — the continuously maintained top-k."""
        require_int(k, "k")
        require_positive(k, "k")
        return self._post("/v1/topk_live", {"k": k})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HttpIngestClient(base_url={self._base!r})"
