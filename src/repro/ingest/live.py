"""``LiveIndex`` — influence tracking that keeps up with the stream.

The paper's one-pass algorithms need the log's *end*: they scan in
reverse chronological order, so a new latest interaction invalidates the
whole pass (§3).  :mod:`repro.core.streaming` already exploits the dual
direction — the influenced-by sets ``σω_in(v)`` stream forward — and this
module builds the missing half on top of it: per-**influencer** influence
``|σω(u)|``, maintained incrementally per event.

The trick is that the dual index is a perfect *channel bookkeeper*.
After applying ``(u, v, t)``, exactly one summary changed — ``σω_in(v)``
— and diffing it against its pre-event state names every influencer
``x`` that just reached ``v`` (a new entry) or refreshed an existing
channel (a later start time).  Those per-event deltas drive two forward
representations, selected by ``mode``:

``exact``
    A plain ``influencer → |σω(u)|`` counter: new entry ⇒ increment,
    decay eviction ⇒ decrement.  Inverting the dual summaries
    (``σω(u) = {v | u ∈ σω_in(v)}``) yields a full
    :class:`~repro.core.oracle.ExactInfluenceOracle` for publishing.
``sketch``
    A per-influencer :class:`~repro.sketch.sliding_hll.SlidingWindowHLL`
    over reached nodes, fed *channel start times* so one sketch answers
    every decay horizon at once.  On logs whose live window contains no
    cycle this reproduces :class:`~repro.core.approx.ApproxIRS` registers
    exactly (same ``split_hash``; the reached-node sets coincide).

Stale influence ages out through a **decay horizon** ``decay_window``:
an interaction only counts while the *start* of its channel lies within
the last ``decay_window`` ticks of the newest event.  Bounding by channel
start is both sound and complete for eviction — starts never move once
recorded, and a future merge extending an evicted channel would inherit
the same expired start — so a periodic sweep (every ``sweep_every``
events) keeps memory and the counters honest without touching
correctness (queries filter by the horizon anyway).

All shared state sits behind one writer-priority
:class:`~repro.serve.service.ReadWriteLock`: queries run concurrently,
``apply_events`` and the decay sweep exclude them briefly.  Oracle
*construction* for publishing happens under the read side — it only
reads index state — so queries keep flowing while a snapshot is cut.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import repro.obs as obs
from repro.core.oracle import (
    ApproxInfluenceOracle,
    ExactInfluenceOracle,
    InfluenceOracle,
)
from repro.core.streaming import StreamingExactIndex
from repro.obs import OBS_STATE as _OBS
from repro.serve.service import ReadWriteLock
from repro.sketch.hll import estimate_from_registers
from repro.sketch.sliding_hll import SlidingWindowHLL
from repro.utils.validation import (
    require_in_range,
    require_int,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = ["IngestResult", "LiveIndex", "LIVE_MODES"]

Node = Hashable

#: Forward representations a :class:`LiveIndex` can maintain.
LIVE_MODES = ("exact", "sketch")

_EVENTS = obs.counter(
    "ingest.events",
    "Live interactions offered to a LiveIndex, by mode and outcome.",
)
_APPLY_SECONDS = obs.histogram(
    "ingest.apply_seconds",
    "Per-batch apply latency of LiveIndex.apply_events (lock held).",
)
_DECAY_EVICTIONS = obs.counter(
    "ingest.decay_evictions",
    "Channel entries dropped by LiveIndex decay sweeps.",
)
_ENTRIES = obs.gauge(
    "ingest.entries",
    "Stored channel entries of a LiveIndex (refreshed by each decay sweep).",
)


class IngestResult:
    """Outcome of one ``apply_events`` batch (a tiny value object)."""

    __slots__ = ("applied", "rejected", "evicted", "last_time")

    def __init__(
        self, applied: int, rejected: int, evicted: int, last_time: Optional[int]
    ) -> None:
        self.applied = applied
        self.rejected = rejected
        self.evicted = evicted
        self.last_time = last_time

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``/v1/ingest`` response body)."""
        return {
            "applied": self.applied,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "last_time": self.last_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IngestResult(applied={self.applied}, rejected={self.rejected}, "
            f"evicted={self.evicted}, last_time={self.last_time})"
        )


class LiveIndex:
    """Thread-safe live influence index with optional sliding-window decay.

    Parameters
    ----------
    window:
        Maximum channel duration ω, in time ticks.
    mode:
        ``"exact"`` (per-influencer counts + invertible oracle) or
        ``"sketch"`` (per-influencer sliding HLLs, bounded query memory).
    decay_window:
        Sliding horizon in ticks; interactions only count while their
        channel *started* within the last ``decay_window`` ticks of the
        newest event.  ``None`` disables decay (pure accumulation).
    precision:
        Sketch index bits (``sketch`` mode only).
    salt:
        Hash-function selector shared by all sketches.
    sweep_every:
        Run the decay eviction sweep after this many applied events.
    """

    def __init__(
        self,
        window: int,
        mode: str = "exact",
        decay_window: Optional[int] = None,
        precision: int = 9,
        salt: int = 0,
        sweep_every: int = 1024,
    ) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        require_type(mode, "mode", str)
        if mode not in LIVE_MODES:
            raise ValueError(f"unknown live mode {mode!r}; use one of {LIVE_MODES}")
        if decay_window is not None:
            require_int(decay_window, "decay_window")
            require_positive(decay_window, "decay_window")
        require_int(precision, "precision")
        require_in_range(precision, "precision", 2, 20)
        require_int(sweep_every, "sweep_every")
        require_positive(sweep_every, "sweep_every")
        self._window = window
        self._mode = mode
        self._decay_window = decay_window
        self._precision = precision
        self._salt = salt
        self._num_cells = 1 << precision
        self._sweep_every = sweep_every
        self._lock = ReadWriteLock()
        # The dual channel bookkeeper: σω_in(v) per node, entries keyed by
        # influencer with the latest channel start (both modes need it for
        # per-event deltas — a sketch dual has no item names to diff).
        self._dual = StreamingExactIndex(window)  # repro-lint: guarded-by=_lock
        self._nodes: Set[Node] = set()  # repro-lint: guarded-by=_lock
        # Forward representation (one of the two is active, by mode).
        self._counts: Dict[Node, int] = {}  # repro-lint: guarded-by=_lock
        self._sketches: Dict[Node, SlidingWindowHLL] = {}  # repro-lint: guarded-by=_lock
        self._events_applied = 0  # repro-lint: guarded-by=_lock
        self._events_rejected = 0  # repro-lint: guarded-by=_lock
        self._since_sweep = 0  # repro-lint: guarded-by=_lock
        self._sweeps = 0  # repro-lint: guarded-by=_lock
        self._evicted_total = 0  # repro-lint: guarded-by=_lock
        self._obs_applied = _EVENTS.labels(mode=mode, outcome="applied")
        self._obs_rejected = _EVENTS.labels(mode=mode, outcome="rejected")
        self._obs_latency = _APPLY_SECONDS.labels(mode=mode)
        self._obs_evictions = _DECAY_EVICTIONS.labels(mode=mode)
        self._obs_entries = _ENTRIES.labels(mode=mode)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def mode(self) -> str:
        """The forward representation: ``exact`` or ``sketch``."""
        return self._mode

    @property
    def decay_window(self) -> Optional[int]:
        """The sliding horizon in ticks (None = no decay)."""
        return self._decay_window

    def last_time(self) -> Optional[int]:
        """Newest applied event time (None before any event)."""
        with self._lock.read():
            return self._dual.last_time

    def horizon(self) -> Optional[int]:
        """Oldest channel start that still counts (None = everything)."""
        with self._lock.read():
            return self._horizon_locked()

    def _horizon_locked(self) -> Optional[int]:
        if self._decay_window is None:
            return None
        now = self._dual.last_time
        if now is None:
            return None
        return now - self._decay_window + 1

    def node_count(self) -> int:
        """Distinct nodes seen so far."""
        with self._lock.read():
            return len(self._nodes)

    def stats(self) -> Dict[str, object]:
        """Counters for ``/v1/healthz`` and the CLI."""
        with self._lock.read():
            return {
                "mode": self._mode,
                "window": self._window,
                "decay_window": self._decay_window,
                "nodes": len(self._nodes),
                "events_applied": self._events_applied,
                "events_rejected": self._events_rejected,
                "last_time": self._dual.last_time,
                "horizon": self._horizon_locked(),
                "sweeps": self._sweeps,
                "evicted": self._evicted_total,
                "entries": self._dual.entry_count(),
            }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def apply_events(
        self, events: Sequence[Tuple[Node, Node, int]]
    ) -> IngestResult:
        """Apply a batch of ``(source, target, time)`` interactions.

        Event times must be non-decreasing across the life of the index;
        a stale event (older than the newest applied one) is *rejected and
        counted*, not raised — a tailer replaying an unordered log edge
        should keep going.  Malformed events (wrong shape or non-integer
        time) raise ``ValueError`` so protocol bugs stay loud.
        """
        require_type(events, "events", (list, tuple))
        checked: List[Tuple[Node, Node, int]] = []
        for position, event in enumerate(events):
            if not isinstance(event, (list, tuple)) or len(event) != 3:
                raise ValueError(
                    f"event #{position} must be a (source, target, time) "
                    f"triple, got {event!r}"
                )
            source, target, time = event
            require_int(time, f"event #{position} time")
            checked.append((source, target, time))
        applied = rejected = evicted = 0
        with self._obs_latency.time(), self._lock.write():
            for source, target, time in checked:
                last = self._dual.last_time
                if last is not None and time < last:
                    rejected += 1
                    continue
                self._apply_locked(source, target, time)
                applied += 1
                self._since_sweep += 1
                if (
                    self._decay_window is not None
                    and self._since_sweep >= self._sweep_every
                ):
                    evicted += self._sweep_locked()
            self._events_applied += applied
            self._events_rejected += rejected
            last_time = self._dual.last_time
        if _OBS.enabled:
            if applied:
                self._obs_applied.inc(applied)
            if rejected:
                self._obs_rejected.inc(rejected)
        return IngestResult(applied, rejected, evicted, last_time)

    def apply(self, source: Node, target: Node, time: int) -> IngestResult:
        """Apply one interaction (see :meth:`apply_events`)."""
        return self.apply_events([(source, target, time)])

    def _apply_locked(self, source: Node, target: Node, time: int) -> None:
        """One event against the dual, diffed into the forward state."""
        self._nodes.add(source)
        self._nodes.add(target)
        before = self._dual.influencer_starts(target)
        self._dual.observe(source, target, time)
        if self._mode == "exact":
            counts = self._counts
            for influencer, start in self._dual.iter_influencer_starts(target):
                if influencer not in before:
                    counts[influencer] = counts.get(influencer, 0) + 1
        else:
            for influencer, start in self._dual.iter_influencer_starts(target):
                if before.get(influencer) != start:
                    self._sketch_for(influencer).add_at(target, start)

    def _sketch_for(self, influencer: Node) -> SlidingWindowHLL:
        sketch = self._sketches.get(influencer)
        if sketch is None:
            sketch = SlidingWindowHLL(self._precision, self._salt)
            self._sketches[influencer] = sketch
        return sketch

    def sweep(self) -> int:
        """Run a decay sweep now; returns evicted entry count (0 = no decay)."""
        with self._lock.write():
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        self._since_sweep = 0
        horizon = self._horizon_locked()
        if horizon is None:
            return 0
        per_influencer = self._dual.evict_started_before(horizon)
        evicted = sum(per_influencer.values())
        if self._mode == "exact":
            counts = self._counts
            for influencer, dropped in per_influencer.items():
                remaining = counts.get(influencer, 0) - dropped
                if remaining > 0:
                    counts[influencer] = remaining
                else:
                    counts.pop(influencer, None)
        else:
            # Future queries only ask windows starting at or after the
            # (monotone) horizon, so older sketch pairs are dead weight.
            for sketch in self._sketches.values():  # repro-lint: budget=O(n·log W) decay sweep, amortised by sweep_every
                sketch.prune(horizon)
        self._sweeps += 1
        self._evicted_total += evicted
        if _OBS.enabled:
            if evicted:
                self._obs_evictions.inc(evicted)
            self._obs_entries.set(self._dual.entry_count())
        return evicted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def influence(self, node: Node) -> float:
        """``|σω(node)|`` within the decay horizon (or its estimate)."""
        with self._lock.read():
            return self._influence_locked(node, self._horizon_locked())

    def _influence_locked(self, node: Node, horizon: Optional[int]) -> float:
        if self._mode == "exact":
            if horizon is None:
                return float(self._counts.get(node, 0))
            # Between sweeps the counter may still include expired
            # channels; the authoritative answer filters by horizon.
            count = 0
            for reached in self._nodes:  # repro-lint: budget=O(n) horizon-exact influence query
                start = self._dual.latest_start(reached, node)
                if start is not None and start >= horizon:
                    count += 1
            return float(count)
        sketch = self._sketches.get(node)
        if sketch is None:
            return 0.0
        if horizon is None:
            return sketch.cardinality()
        return sketch.cardinality_since(horizon)

    def topk(self, k: int) -> List[Tuple[Node, float]]:
        """The ``k`` nodes with the largest live influence.

        Ties break deterministically by node repr, matching
        :meth:`repro.serve.service.OracleService.influence_topk`.
        """
        require_int(k, "k")
        require_positive(k, "k")
        with self._lock.read():
            horizon = self._horizon_locked()
            if self._mode == "exact" and horizon is None:
                candidates: Iterable[Tuple[Node, float]] = (
                    (node, float(count)) for node, count in self._counts.items()
                )
            elif self._mode == "exact":
                candidates = self._horizon_counts_locked(horizon)
            else:
                candidates = (
                    (node, self._influence_locked(node, horizon))
                    for node in self._sketches
                )
            # repro-lint: budget=O(n log k) — bounded-heap scan over influencers.
            ranked = heapq.nsmallest(
                k,
                ((value, repr(node), node) for node, value in candidates),
                key=lambda entry: (-entry[0], entry[1]),
            )
        return [(node, value) for value, _, node in ranked]

    def _horizon_counts_locked(self, horizon: int) -> Iterable[Tuple[Node, float]]:
        counts: Dict[Node, int] = {}
        for reached in self._nodes:  # repro-lint: budget=O(n·|σ_in|) horizon-exact topk scan
            for influencer, start in self._dual.iter_influencer_starts(reached):
                if start >= horizon:
                    counts[influencer] = counts.get(influencer, 0) + 1
        return ((node, float(count)) for node, count in counts.items())

    def influencers(self, node: Node) -> Set[Node]:
        """``σω_in(node)`` within the decay horizon (who reached ``node``)."""
        with self._lock.read():
            return self._dual.influencers(node, since=self._horizon_locked())

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def build_oracle(self) -> InfluenceOracle:
        """A queryable oracle of the current (horizon-filtered) state.

        Runs under the *read* lock — the publisher can cut a snapshot
        while ingestion pauses but queries continue.
        """
        with self._lock.read():
            horizon = self._horizon_locked()
            if self._mode == "exact":
                sets: Dict[Node, Set[Node]] = {node: set() for node in self._nodes}
                for reached in self._nodes:  # repro-lint: budget=O(n·|σ_in|) oracle inversion
                    for influencer, start in self._dual.iter_influencer_starts(reached):
                        if horizon is None or start >= horizon:
                            sets.setdefault(influencer, set()).add(reached)
                return ExactInfluenceOracle(sets)
            zeros = [0] * self._num_cells
            registers: Dict[Node, List[int]] = {}
            for node in self._nodes:
                sketch = self._sketches.get(node)
                if sketch is None:
                    registers[node] = list(zeros)
                elif horizon is None:
                    registers[node] = sketch.registers()
                else:
                    registers[node] = sketch.registers_since(horizon)
            return ApproxInfluenceOracle(registers, self._num_cells)

    def spread(self, seeds: Iterable[Node]) -> float:
        """``Inf(seeds)`` of the live state (exact mode: exact union)."""
        with self._lock.read():
            horizon = self._horizon_locked()
            if self._mode == "exact":
                covered: Set[Node] = set()
                seed_set = set(seeds)
                for reached in self._nodes:  # repro-lint: budget=O(n·|σ_in|) live spread scan
                    for influencer, start in self._dual.iter_influencer_starts(reached):
                        if influencer in seed_set and (
                            horizon is None or start >= horizon
                        ):
                            covered.add(reached)
                            break
                return float(len(covered))
            combined = [0] * self._num_cells
            for seed in seeds:  # repro-lint: budget=O(|seeds|·β)
                sketch = self._sketches.get(seed)
                if sketch is None:
                    continue
                cells = (
                    sketch.registers()
                    if horizon is None
                    else sketch.registers_since(horizon)
                )
                for index, value in enumerate(cells):
                    if value > combined[index]:
                        combined[index] = value
            return estimate_from_registers(combined, self._num_cells)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock.read():
            nodes = len(self._nodes)
        return (
            f"LiveIndex(mode={self._mode!r}, window={self._window}, "
            f"decay_window={self._decay_window}, nodes={nodes})"
        )
