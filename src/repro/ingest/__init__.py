"""Live ingestion subsystem (extension).

The offline pipeline of this repo is batch-shaped: build an index with a
reverse scan, snapshot it, serve queries.  This package closes the loop
for *live* interaction streams — apply ``(u, v, t)`` events as they
happen, keep a continuously correct top-k influencer set, age stale
interactions out of ``σω(u)`` with a sliding decay horizon, and publish
fresh ``repro-snap/1`` snapshots that the serving tier hot-reloads.

* :mod:`repro.ingest.live` — :class:`LiveIndex`, the writer-priority
  locked index behind the ``/v1/ingest`` endpoint.
* :mod:`repro.ingest.publisher` — :class:`SnapshotPublisher`, periodic
  snapshot + :class:`~repro.serve.service.OracleService` hot reload.
* :mod:`repro.ingest.tail` — log tailing (``repro ingest tail``) and the
  small HTTP client it posts through.
"""

from repro.ingest.live import IngestResult, LiveIndex
from repro.ingest.publisher import SnapshotPublisher
from repro.ingest.tail import HttpIngestClient, parse_event_line, tail_file

__all__ = [
    "HttpIngestClient",
    "IngestResult",
    "LiveIndex",
    "SnapshotPublisher",
    "parse_event_line",
    "tail_file",
]
