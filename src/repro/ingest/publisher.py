"""``SnapshotPublisher`` — periodic snapshots of a live index, hot-reloaded.

The serving tier never queries the :class:`~repro.ingest.live.LiveIndex`
directly for influence: oracles are immutable and lock-free once built,
so the publisher periodically freezes the live state into a
``repro-snap/1`` file and swaps it into the
:class:`~repro.serve.service.OracleService` — the same
build-outside-the-lock / pointer-swap discipline ``reload`` uses, now on
a timer.

Publish cadence is two-gated: a wall-clock ``interval`` *and* a
``min_events`` floor of newly applied events since the last publish.
A quiet stream publishes nothing (the snapshot would be identical); a
busy stream publishes at most once per interval.  Every attempt is
counted by outcome (``published`` / ``skipped`` / ``failed``) so the
serving dashboards can alert on a stalled publisher.

Lock discipline (see ``tests/ingest/test_locking_stress.py``): the
publisher's ``_state_lock`` guards only its counters and the
``_publishing`` in-flight flag — the expensive snapshot work (live index
read lock, then ``OracleService`` swap lock) runs with no publisher lock
held, serialised by the flag instead.  No thread ever holds two of the
subsystem's locks at once from here, so the ``REPRO_DEBUG_LOCKS`` tracer
sees an acyclic graph by construction.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import repro.obs as obs
from repro.ingest.live import LiveIndex
from repro.serve.service import OracleService
from repro.serve.snapshot import save_oracle
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["SnapshotPublisher"]

_PUBLISHES = obs.counter(
    "ingest.publishes",
    "Snapshot publish attempts by the live publisher, by outcome.",
)
_PUBLISH_SECONDS = obs.histogram(
    "ingest.publish_seconds",
    "Wall time of one publish: oracle build + snapshot write + hot swap.",
)
_GENERATION = obs.gauge(
    "ingest.generation",
    "Service snapshot generation after the latest live publish.",
)


class SnapshotPublisher:
    """Periodically snapshot ``live`` to ``path`` and hot-reload ``service``.

    Parameters
    ----------
    live:
        The index being fed by the ingest front.
    service:
        The query service to hot-swap (None = snapshot-only publishing).
    path:
        Destination ``repro-snap/1`` file (written atomically).
    interval:
        Seconds between background publish attempts.
    min_events:
        Skip a publish unless at least this many events arrived since the
        last one (0 = always publish).
    """

    def __init__(
        self,
        live: LiveIndex,
        service: Optional[OracleService],
        path: str,
        interval: float = 5.0,
        min_events: int = 1,
    ) -> None:
        require_type(live, "live", LiveIndex)
        if service is not None:
            require_type(service, "service", OracleService)
        require_type(path, "path", str)
        require_type(interval, "interval", (int, float))
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        require_int(min_events, "min_events")
        require_non_negative(min_events, "min_events")
        self._live = live
        self._service = service
        self._path = path
        self._interval = float(interval)
        self._min_events = min_events
        # Guards the publish bookkeeping below.  The snapshot write itself
        # happens *outside* this lock (blocking I/O under a lock is a
        # R203 violation); concurrent publish_once calls are instead
        # serialised by the ``_publishing`` in-flight flag.
        self._state_lock = threading.Lock()
        self._publishing = False  # repro-lint: guarded-by=_state_lock
        self._published_events = 0  # repro-lint: guarded-by=_state_lock
        self._publishes = 0  # repro-lint: guarded-by=_state_lock
        self._skipped = 0  # repro-lint: guarded-by=_state_lock
        self._failed = 0  # repro-lint: guarded-by=_state_lock
        self._last_generation: Optional[int] = None  # repro-lint: guarded-by=_state_lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None  # repro-lint: guarded-by=_state_lock

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_once(self, force: bool = False) -> Dict[str, object]:
        """Snapshot now (unless gated); returns a one-line status dict.

        ``force`` bypasses the ``min_events`` gate — the serve command
        uses it once at boot so the service starts from a consistent
        published generation even before traffic arrives.
        """
        applied = int(self._live.stats()["events_applied"])  # type: ignore[arg-type]
        with self._state_lock:
            if self._publishing:
                self._skipped += 1
                _PUBLISHES.labels(outcome="skipped").inc()
                return {"outcome": "skipped", "reason": "publish already in flight"}
            fresh = applied - self._published_events
            if not force and fresh < max(self._min_events, 1):
                self._skipped += 1
                _PUBLISHES.labels(outcome="skipped").inc()
                return {"outcome": "skipped", "fresh_events": fresh}
            self._publishing = True
        # The expensive part — oracle build, snapshot write, hot swap —
        # runs without holding _state_lock; the in-flight flag keeps
        # concurrent publishers (CLI + timer thread) from interleaving.
        try:
            with _PUBLISH_SECONDS.time():
                oracle = self._live.build_oracle()
                save_oracle(self._path, oracle)
                generation: Optional[int] = None
                if self._service is not None:
                    generation = int(self._service.reload(self._path)["generation"])  # type: ignore[arg-type]
        except (OSError, ValueError) as error:
            with self._state_lock:
                self._publishing = False
                self._failed += 1
            _PUBLISHES.labels(outcome="failed").inc()
            return {"outcome": "failed", "error": str(error)}
        with self._state_lock:
            self._publishing = False
            self._published_events = applied
            self._publishes += 1
            self._last_generation = generation
        _PUBLISHES.labels(outcome="published").inc()
        if generation is not None:
            _GENERATION.set(generation)
        return {
            "outcome": "published",
            "path": self._path,
            "events": applied,
            "generation": generation,
        }

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background publish loop (idempotent)."""
        self._stop.clear()  # Event is self-synchronising; no lock needed
        with self._state_lock:
            if self._thread is not None:
                return
            thread = threading.Thread(
                target=self._run, name="repro-snapshot-publisher", daemon=True
            )
            self._thread = thread
        thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.publish_once()

    def stop(self, final_publish: bool = True, join_timeout: float = 10.0) -> None:
        """Stop the loop; by default cut one last snapshot on the way out."""
        self._stop.set()
        with self._state_lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=join_timeout)
        if final_publish:
            self.publish_once()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Publish counters for ``/v1/healthz``."""
        with self._state_lock:
            return {
                "path": self._path,
                "interval": self._interval,
                "min_events": self._min_events,
                "publishes": self._publishes,
                "skipped": self._skipped,
                "failed": self._failed,
                "published_events": self._published_events,
                "generation": self._last_generation,
                "running": self._thread is not None,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SnapshotPublisher(path={self._path!r}, interval={self._interval}, "
            f"min_events={self._min_events})"
        )
