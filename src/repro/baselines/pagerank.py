"""PageRank baseline (paper §6, "PR").

The paper ranks nodes by PageRank on the **reversed** flattened graph:
PageRank measures incoming importance while influence flows outward, so
flipping the edges makes high scores mean "many nodes are downstream of
me".  Settings follow the paper: restart probability 0.15 and an L1
stopping threshold of 1e-4 between successive iterations.

Implemented from scratch with dangling-mass redistribution (a node without
out-links donates its mass uniformly), which the power iteration needs to
keep the scores a proper distribution.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.baselines.static import StaticGraph, flatten
from repro.core.interactions import InteractionLog
from repro.utils.validation import (
    require_int,
    require_positive,
    require_probability,
    require_type,
)

__all__ = ["pagerank", "pagerank_top_k"]

Node = Hashable


def pagerank(
    graph: StaticGraph,
    restart: float = 0.15,
    tolerance: float = 1e-4,
    max_iterations: int = 200,
) -> Dict[Node, float]:
    """Power-iteration PageRank scores of ``graph``.

    Parameters
    ----------
    graph:
        The directed graph to score (callers wanting the paper's influence
        semantics pass an already-reversed graph; :func:`pagerank_top_k`
        does this automatically).
    restart:
        Teleport probability (the paper uses 0.15).
    tolerance:
        Stop when the L1 distance between successive score vectors drops
        below this (the paper uses 1e-4).
    max_iterations:
        Hard cap to guarantee termination.
    """
    require_type(graph, "graph", StaticGraph)
    require_probability(restart, "restart")
    require_positive(tolerance, "tolerance")
    if isinstance(max_iterations, bool) or not isinstance(max_iterations, int):
        raise TypeError("max_iterations must be an int")
    require_positive(max_iterations, "max_iterations")

    nodes: List[Node] = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    out_lists = [sorted(graph.out_neighbours(node), key=repr) for node in nodes]
    out_index = [[index[t] for t in targets] for targets in out_lists]

    damping = 1.0 - restart
    scores = [1.0 / n] * n
    for _ in range(max_iterations):
        fresh = [restart / n] * n
        dangling_mass = 0.0
        for i, targets in enumerate(out_index):
            if not targets:
                dangling_mass += scores[i]
                continue
            share = damping * scores[i] / len(targets)
            for j in targets:
                fresh[j] += share
        if dangling_mass > 0.0:
            bonus = damping * dangling_mass / n
            fresh = [value + bonus for value in fresh]
        delta = sum(abs(a - b) for a, b in zip(fresh, scores))
        scores = fresh
        if delta < tolerance:
            break
    return {node: scores[index[node]] for node in nodes}


def pagerank_top_k(
    log: InteractionLog,
    k: int,
    restart: float = 0.15,
    tolerance: float = 1e-4,
) -> List[Node]:
    """The paper's PR baseline: top-``k`` by PageRank on the reversed graph."""
    require_type(log, "log", InteractionLog)
    require_int(k, "k")
    require_positive(k, "k")
    reversed_graph = flatten(log).reversed()
    scores = pagerank(reversed_graph, restart=restart, tolerance=tolerance)
    ranked = sorted(scores, key=lambda node: (-scores[node], repr(node)))
    return ranked[:k]
