"""Competitor methods the paper compares against (§6): SKIM, ConTinEst,
PageRank, HighDegree and SmartHighDegree, plus the shared static-graph
flattening they consume."""

from repro.baselines.continest import ContinEstEstimator, continest_top_k
from repro.baselines.degree import (
    degree_discount_top_k,
    high_degree_top_k,
    smart_high_degree_top_k,
)
from repro.baselines.ic_greedy import (
    estimate_ic_spread,
    ic_greedy_top_k,
    simulate_ic,
)
from repro.baselines.pagerank import pagerank, pagerank_top_k
from repro.baselines.skim import SkimSelector, skim_top_k
from repro.baselines.static import (
    StaticGraph,
    flatten,
    transmission_weighted_graph,
)

__all__ = [
    "StaticGraph",
    "flatten",
    "transmission_weighted_graph",
    "pagerank",
    "pagerank_top_k",
    "high_degree_top_k",
    "smart_high_degree_top_k",
    "degree_discount_top_k",
    "simulate_ic",
    "estimate_ic_spread",
    "ic_greedy_top_k",
    "SkimSelector",
    "skim_top_k",
    "ContinEstEstimator",
    "continest_top_k",
]
