"""SKIM baseline — Sketch-based Influence Maximization (Cohen et al., CIKM
2014), reimplemented for the paper's comparison (§6).

SKIM solves influence maximization on a **static** directed graph under
binary reachability: the influence of a seed set is the number of nodes
reachable from it.  The paper feeds it the flattened interaction graph.

Algorithm (faithful to the original's structure):

1.  Draw a uniform random permutation of the nodes; node at position ``i``
    gets rank value ``(i + 1) / n``.
2.  **Bottom-k reachability sketches** are built lazily: process nodes in
    increasing rank order; from each rank node run a *reverse* BFS, adding
    the rank to the sketch of every node that reaches it whose sketch holds
    fewer than ``k`` ranks, and pruning the BFS at nodes whose sketches are
    already full (ranks arrive in increasing order, so a full sketch already
    holds its bottom-k and — inductively — so does everything behind it).
    Construction pauses as soon as some sketch reaches size ``k`` (that node
    is the next seed candidate) and resumes on demand.
3.  **Greedy with residual updates**: the node with the largest estimated
    coverage is selected (bottom-k estimate ``(k−1)/r_k`` for full sketches,
    the exact count for exhausted ones); its exact reachability set is
    computed by forward BFS, those nodes are deleted from the residual graph
    and their ranks are removed from every sketch through an inverted index;
    sketch construction then resumes to refill.

The result is an (1−1/e−ε)-style greedy whose per-iteration work is bounded
by sketch size rather than graph size — the property that lets the original
scale; here it mainly keeps the pure-Python baseline usable in benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set

from repro.baselines.static import StaticGraph, flatten
from repro.core.interactions import InteractionLog
from repro.utils.rng import RngLike, resolve_rng
from repro.utils.validation import require_int, require_positive, require_type

__all__ = ["skim_top_k", "SkimSelector"]

Node = Hashable


class SkimSelector:
    """Stateful SKIM seed selector over a static graph.

    Parameters
    ----------
    graph:
        The (flattened) directed graph.
    sketch_size:
        Bottom-``k`` sketch capacity; larger values sharpen the coverage
        estimates (the original paper uses k = 64 by default).
    rng:
        Seed or generator for the rank permutation.
    """

    def __init__(
        self,
        graph: StaticGraph,
        sketch_size: int = 64,
        rng: RngLike = None,
    ) -> None:
        require_type(graph, "graph", StaticGraph)
        if isinstance(sketch_size, bool) or not isinstance(sketch_size, int):
            raise TypeError("sketch_size must be an int")
        require_positive(sketch_size, "sketch_size")
        self._graph = graph
        self._k = sketch_size
        generator = resolve_rng(rng)

        self._nodes: List[Node] = sorted(graph.nodes, key=repr)
        generator.shuffle(self._nodes)
        n = max(len(self._nodes), 1)
        self._rank_value: Dict[Node, float] = {
            node: (position + 1) / n for position, node in enumerate(self._nodes)
        }
        # sketches[u]: increasing rank values of sketched nodes reachable
        # from u.  inverted[v]: nodes whose sketch contains v's rank.
        self._sketches: Dict[Node, List[float]] = {node: [] for node in self._nodes}
        self._inverted: Dict[Node, List[Node]] = {node: [] for node in self._nodes}
        self._pointer = 0
        self._covered: Set[Node] = set()
        self._selected: List[Node] = []

    # ------------------------------------------------------------------
    # Sketch construction
    # ------------------------------------------------------------------
    def _fill_sketches(self) -> Optional[Node]:
        """Resume rank-order processing until some sketch fills or ranks run
        out; return the first node whose sketch reached size ``k``.

        The node whose sketch saturates first holds the smallest k-th rank
        and therefore the largest bottom-k coverage estimate — it *is* the
        round's (approximate) argmax.  This is the heart of SKIM: partially
        built sketches are never compared against each other (their sizes
        reflect construction progress, not coverage).
        """
        k = self._k
        sketches = self._sketches
        while self._pointer < len(self._nodes):
            rank_node = self._nodes[self._pointer]
            self._pointer += 1
            if rank_node in self._covered:
                continue
            rank = self._rank_value[rank_node]
            winner: Optional[Node] = None
            # Reverse BFS: which residual nodes reach rank_node?
            queue = deque([rank_node])
            visited = {rank_node}
            while queue:
                node = queue.popleft()
                sketch = sketches[node]
                if len(sketch) >= k:
                    continue  # full: prune — bottom-k already complete
                sketch.append(rank)
                self._inverted[rank_node].append(node)
                if len(sketch) >= k and winner is None:
                    winner = node
                for predecessor in self._graph.in_neighbours(node):
                    if predecessor not in visited and predecessor not in self._covered:
                        visited.add(predecessor)
                        queue.append(predecessor)
            if winner is not None:
                return winner
        return None

    # ------------------------------------------------------------------
    # Estimation and selection
    # ------------------------------------------------------------------
    def _estimate(self, node: Node) -> float:
        """Estimated residual coverage of ``node`` (itself included)."""
        sketch = self._sketches[node]
        if len(sketch) >= self._k:
            return (self._k - 1) / sketch[-1]
        # Ranks exhausted: the sketch *is* the residual reachability set
        # (restricted to uncovered rank nodes processed so far).
        return float(len(sketch))

    def next_seed(self) -> Optional[Node]:
        """Select, commit and return the next seed (``None`` if exhausted).

        Selection order: (1) an already-full sketch left over from a
        previous round's BFS (the one with the best bottom-k estimate);
        (2) the next node to saturate as rank processing resumes; (3) once
        ranks are exhausted, every remaining sketch is its node's *exact*
        residual coverage, so the largest one wins.
        """
        best: Optional[Node] = None
        best_value = -1.0
        for node in self._nodes:  # full sketches from earlier rounds
            if node in self._covered:
                continue
            sketch = self._sketches[node]
            if len(sketch) >= self._k:
                value = self._estimate(node)
                if value > best_value:
                    best = node
                    best_value = value
        if best is None:
            best = self._fill_sketches()
        if best is None and self._pointer >= len(self._nodes):
            # Exhausted: partial sketches are exact residual coverages.
            for node in self._nodes:
                if node in self._covered:
                    continue
                value = float(len(self._sketches[node]))
                if value > best_value or (
                    value == best_value
                    and best is not None
                    and repr(node) < repr(best)
                ):
                    best = node
                    best_value = value
        if best is None:
            return None
        self._commit(best)
        return best

    def _commit(self, seed: Node) -> None:
        """Remove the seed's exact residual reachability from the problem."""
        newly_covered = {seed}
        queue = deque([seed])
        while queue:
            node = queue.popleft()
            for successor in self._graph.out_neighbours(node):
                if successor not in newly_covered and successor not in self._covered:
                    newly_covered.add(successor)
                    queue.append(successor)
        for node in newly_covered:
            self._covered.add(node)
            rank = self._rank_value[node]
            for owner in self._inverted[node]:
                sketch = self._sketches[owner]
                try:
                    sketch.remove(rank)
                except ValueError:  # pragma: no cover - owner already purged
                    pass
            self._inverted[node] = []
        self._selected.append(seed)

    def select(self, k: int) -> List[Node]:
        """Select ``k`` seeds (or every node, whichever is fewer).

        When the committed seeds already cover the whole graph, remaining
        slots are filled with uncovered-rank order exhausted — we pad with
        the not-yet-selected nodes of largest out-degree so that callers
        always get ``k`` seeds to compare against other methods.
        """
        require_int(k, "k")
        require_positive(k, "k")
        while len(self._selected) < k:
            if self.next_seed() is None:
                break
        if len(self._selected) < k:
            chosen = set(self._selected)
            filler = sorted(
                (node for node in self._graph.nodes if node not in chosen),
                key=lambda node: (-self._graph.out_degree(node), repr(node)),
            )
            self._selected.extend(filler[: k - len(self._selected)])
        return list(self._selected[:k])

    @property
    def covered(self) -> Set[Node]:
        """Nodes covered by the seeds committed so far."""
        return set(self._covered)


def skim_top_k(
    log: InteractionLog,
    k: int,
    sketch_size: int = 64,
    rng: RngLike = None,
) -> List[Node]:
    """SKIM seeds for an interaction log (flattened to a static graph)."""
    require_type(log, "log", InteractionLog)
    if isinstance(k, bool) or not isinstance(k, int):
        raise TypeError("k must be an int")
    require_positive(k, "k")
    selector = SkimSelector(flatten(log), sketch_size=sketch_size, rng=rng)
    return selector.select(k)
