"""ConTinEst baseline — scalable influence estimation in continuous-time
diffusion networks (Du, Song, Gomez-Rodriguez & Zha, NIPS 2013),
reimplemented for the paper's comparison (§6).

Model: every edge ``(u, v)`` carries a transmission-time distribution; an
infection started at a seed set ``S`` reaches node ``x`` iff the shortest
*transmission time* path from ``S`` to ``x`` is at most a horizon ``T``.
The influence ``σ(S, T)`` is the expected number of such nodes.

Estimation follows the original's two-level randomisation:

1. **Transmission samples** — draw ``num_samples`` independent weighted
   graphs, each edge's length sampled from ``Exponential(mean = weight)``;
2. **Least-label lists** (Cohen's size-estimation framework, 1997) — per
   sample, draw ``num_labels`` sets of i.i.d. ``Exponential(1)`` node
   labels; for each label set, every node ``u`` records the *least* label
   among nodes within transmission distance ``T`` of ``u``.  That minimum is
   ``Exp(d)``-distributed for a neighbourhood of size ``d``, so
   ``d̂ = (num_labels − 1) / Σ_j e_j(u)`` estimates the neighbourhood size,
   and the estimate of a *set* needs only per-label minima over the seeds —
   which is what makes greedy selection cheap.

Least labels are computed by processing nodes in increasing label order and
running a reverse Dijkstra (bounded by ``T``) from each, assigning the label
to every reached node that has none yet; expansion is pruned at
already-labelled nodes.  The pruning is the standard practical shortcut of
neighbourhood-estimation implementations: it can under-reach slightly when
the only ≤T path to an unlabelled region passes through a labelled node,
in exchange for near-linear total work.

The interaction log is flattened to a weighted static graph exactly as the
paper prescribes (see :func:`repro.baselines.static.transmission_weighted_graph`).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.static import StaticGraph, transmission_weighted_graph
from repro.core.interactions import InteractionLog
from repro.utils.rng import RngLike, resolve_rng, spawn_rng
from repro.utils.validation import require_int, require_positive, require_type

__all__ = ["ContinEstEstimator", "continest_top_k"]

Node = Hashable


class ContinEstEstimator:
    """Influence estimator over sampled continuous-time diffusion graphs.

    Parameters
    ----------
    graph, weights:
        Static graph and per-edge mean transmission times (from
        :func:`~repro.baselines.static.transmission_weighted_graph`).
    horizon:
        Time budget ``T`` — the analogue of the paper's window ω.
    num_samples:
        Number of sampled transmission-time graphs (outer randomisation).
    num_labels:
        Number of exponential label sets per sample (inner randomisation).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        graph: StaticGraph,
        weights: Dict[Tuple[Node, Node], float],
        horizon: float,
        num_samples: int = 3,
        num_labels: int = 5,
        rng: RngLike = None,
    ) -> None:
        require_type(graph, "graph", StaticGraph)
        require_type(weights, "weights", dict)
        require_positive(horizon, "horizon")
        if isinstance(num_samples, bool) or not isinstance(num_samples, int):
            raise TypeError("num_samples must be an int")
        require_positive(num_samples, "num_samples")
        if isinstance(num_labels, bool) or not isinstance(num_labels, int):
            raise TypeError("num_labels must be an int")
        if num_labels < 2:
            raise ValueError("num_labels must be >= 2 for the (m-1)/sum estimator")
        self._graph = graph
        self._horizon = float(horizon)
        self._num_samples = num_samples
        self._num_labels = num_labels
        self._nodes = sorted(graph.nodes, key=repr)
        generator = resolve_rng(rng)

        # least[s][j][node] -> least label within distance T, sample s, label set j.
        self._least: List[List[Dict[Node, float]]] = []
        for sample_index in range(num_samples):
            sample_rng = spawn_rng(generator, sample_index)
            lengths = self._sample_lengths(weights, sample_rng)
            label_sets = []
            for label_index in range(self._num_labels):
                label_rng = spawn_rng(sample_rng, 1000 + label_index)
                label_sets.append(self._least_labels(lengths, label_rng))
            self._least.append(label_sets)

    # ------------------------------------------------------------------
    # Sampling machinery
    # ------------------------------------------------------------------
    def _sample_lengths(
        self,
        weights: Dict[Tuple[Node, Node], float],
        rng,
    ) -> Dict[Node, List[Tuple[Node, float]]]:
        """One sampled graph: reverse adjacency with exponential lengths."""
        reverse: Dict[Node, List[Tuple[Node, float]]] = {
            node: [] for node in self._nodes
        }
        for (source, target), mean in sorted(weights.items(), key=repr):
            length = rng.expovariate(1.0 / mean)
            # Reverse orientation: we run Dijkstra *towards* the label node.
            reverse[target].append((source, length))
        return reverse

    def _least_labels(
        self,
        reverse: Dict[Node, List[Tuple[Node, float]]],
        rng,
    ) -> Dict[Node, float]:
        """Least exponential label within distance ``horizon`` per node."""
        labels = {node: rng.expovariate(1.0) for node in self._nodes}
        order = sorted(self._nodes, key=lambda node: labels[node])
        least: Dict[Node, float] = {}
        horizon = self._horizon
        for label_node in order:
            if label_node in least:
                continue
            label = labels[label_node]
            # Reverse Dijkstra bounded by the horizon, pruned at nodes that
            # already carry a (necessarily smaller) label.
            distances = {label_node: 0.0}
            heap: List[Tuple[float, int, Node]] = [(0.0, 0, label_node)]
            counter = 1
            while heap:
                distance, _, node = heapq.heappop(heap)
                if distance > distances.get(node, math.inf):
                    continue
                if node not in least:
                    least[node] = label
                else:
                    # Labelled in an earlier (smaller-label) pass: prune.
                    continue
                for predecessor, length in reverse.get(node, ()):
                    candidate = distance + length
                    if candidate > horizon:
                        continue
                    if candidate < distances.get(predecessor, math.inf):
                        distances[predecessor] = candidate
                        heapq.heappush(heap, (candidate, counter, predecessor))
                        counter += 1
        return least

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def influence(self, seeds: List[Node]) -> float:
        """Estimated ``σ(seeds, T)`` averaged over the samples."""
        if not seeds:
            return 0.0
        total = 0.0
        for label_sets in self._least:
            label_sum = 0.0
            for least in label_sets:
                minimum = math.inf
                for seed in seeds:
                    value = least.get(seed, math.inf)
                    if value < minimum:
                        minimum = value
                if minimum is math.inf:
                    # Seeds unknown to the sample reach only themselves.
                    minimum = 1.0
                label_sum += minimum
            total += (self._num_labels - 1) / label_sum
        return total / self._num_samples

    def marginal_table(self) -> Dict[Node, float]:
        """Individual influence estimate per node (used to order candidates)."""
        return {node: self.influence([node]) for node in self._nodes}

    def select(self, k: int) -> List[Node]:
        """Greedy seed selection with lazy (CELF-style) re-evaluation."""
        require_int(k, "k")
        require_positive(k, "k")
        base = self.marginal_table()
        heap = [(-value, repr(node), node, -1) for node, value in base.items()]
        heapq.heapify(heap)
        selected: List[Node] = []
        current_value = 0.0
        current_round = 0
        while heap and len(selected) < k:
            neg_gain, tie, node, evaluated = heapq.heappop(heap)
            if evaluated == current_round:
                selected.append(node)
                current_value = self.influence(selected)
                current_round += 1
                continue
            gain = self.influence(selected + [node]) - current_value
            heapq.heappush(heap, (-gain, tie, node, current_round))
        return selected


def continest_top_k(
    log: InteractionLog,
    k: int,
    horizon: Optional[float] = None,
    num_samples: int = 3,
    num_labels: int = 5,
    rng: RngLike = None,
) -> List[Node]:
    """ConTinEst seeds for an interaction log.

    ``horizon`` defaults to the log's full time span — the uninformed choice
    a user without window knowledge would make; experiments that compare
    against IRS at a window ω pass ``horizon = ω`` for fairness.
    """
    require_type(log, "log", InteractionLog)
    if isinstance(k, bool) or not isinstance(k, int):
        raise TypeError("k must be an int")
    require_positive(k, "k")
    graph, weights = transmission_weighted_graph(log)
    effective_horizon = float(horizon) if horizon is not None else float(
        max(log.time_span, 1)
    )
    estimator = ContinEstEstimator(
        graph,
        weights,
        horizon=effective_horizon,
        num_samples=num_samples,
        num_labels=num_labels,
        rng=rng,
    )
    return estimator.select(k)
