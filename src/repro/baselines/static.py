"""Flattening interaction logs into static graphs (paper §6).

The static baselines cannot consume a timestamped interaction stream, so the
paper preprocesses: *"we convert the interaction network data into the
required static graph format by removing repeated interactions and the time
stamp of every interaction"* (for SKIM, PageRank, degree heuristics), and
for ConTinEst it derives a **weighted** static graph: *"The first time a
node u appears as the source of an interaction we assign the infection time
u_i for the source node as the interaction time.  Then each interaction
(u, v, t) is transformed into an weighted edge (u, v) with the edge weight
as the difference of the interaction time and the time when the source gets
infected, i.e., t − u_i."*

Both transformations live here so that every baseline shares the same,
tested preprocessing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

from repro.core.interactions import InteractionLog
from repro.utils.validation import require_type

__all__ = [
    "StaticGraph",
    "flatten",
    "transmission_weighted_graph",
]

Node = Hashable


class StaticGraph:
    """A minimal directed graph: adjacency sets in both directions.

    Self-contained on purpose — the baselines need only neighbour iteration,
    membership and degree, and carrying a dedicated class keeps them
    independent of any third-party graph library.
    """

    def __init__(self) -> None:
        self._out: Dict[Node, Set[Node]] = {}
        self._in: Dict[Node, Set[Node]] = {}

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (possibly isolated)."""
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())

    def add_edge(self, source: Node, target: Node) -> None:
        """Insert the directed edge ``source → target`` (idempotent)."""
        self.add_node(source)
        self.add_node(target)
        self._out[source].add(target)
        self._in[target].add(source)

    @property
    def nodes(self) -> Set[Node]:
        """All nodes."""
        return set(self._out)

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Distinct directed edge count."""
        return sum(len(targets) for targets in self._out.values())

    def out_neighbours(self, node: Node) -> Set[Node]:
        """Successors of ``node`` (empty set for unknown nodes)."""
        return self._out.get(node, set())

    def in_neighbours(self, node: Node) -> Set[Node]:
        """Predecessors of ``node`` (empty set for unknown nodes)."""
        return self._in.get(node, set())

    def out_degree(self, node: Node) -> int:
        """Number of distinct successors."""
        return len(self._out.get(node, ()))

    def in_degree(self, node: Node) -> int:
        """Number of distinct predecessors."""
        return len(self._in.get(node, ()))

    def has_edge(self, source: Node, target: Node) -> bool:
        """True iff the directed edge exists."""
        return target in self._out.get(source, ())

    def reachable_from(self, source: Node) -> Set[Node]:
        """Forward BFS closure of ``source`` (excluding ``source`` itself
        unless it lies on a cycle)."""
        seen: Set[Node] = set()
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for successor in self._out.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def reversed(self) -> "StaticGraph":
        """A new graph with every edge direction flipped."""
        flipped = StaticGraph()
        for node in self._out:
            flipped.add_node(node)
        for source, targets in self._out.items():
            for target in targets:
                flipped.add_edge(target, source)
        return flipped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticGraph(nodes={self.num_nodes}, edges={self.num_edges})"


def flatten(log: InteractionLog) -> StaticGraph:
    """The unweighted static graph: distinct ``(source, target)`` pairs."""
    require_type(log, "log", InteractionLog)
    graph = StaticGraph()
    for node in log.nodes:
        graph.add_node(node)
    for source, target, _ in log:
        if source != target:
            graph.add_edge(source, target)
    return graph


def transmission_weighted_graph(
    log: InteractionLog,
) -> tuple[StaticGraph, Dict[tuple[Node, Node], float]]:
    """The ConTinEst input: static graph + per-edge transmission weights.

    Weight of ``(u, v)`` is ``t − u_i`` minimised over the interactions
    ``(u, v, t)``, where ``u_i`` is the time ``u`` first appeared as a
    source (see module docstring).  A floor of 1.0 keeps the weight usable
    as the mean of an exponential transmission-time distribution (the first
    interaction of each source would otherwise get weight 0).
    """
    require_type(log, "log", InteractionLog)
    first_source_time: Dict[Node, int] = {}
    weights: Dict[tuple[Node, Node], float] = {}
    graph = StaticGraph()
    for node in log.nodes:
        graph.add_node(node)
    for source, target, time in log:
        if source == target:
            continue
        if source not in first_source_time:
            first_source_time[source] = time
        weight = max(float(time - first_source_time[source]), 1.0)
        key = (source, target)
        current = weights.get(key)
        if current is None or weight < current:
            weights[key] = weight
        graph.add_edge(source, target)
    return graph, weights
