"""Degree-based baselines (paper §6, "HD" and "SHD").

* **HighDegree (HD)** — the ``k`` nodes with most distinct out-neighbours in
  the flattened graph (Kempe et al.'s classical heuristic).
* **SmartHighDegree (SHD)** — the paper's overlap-aware variant: greedily
  pick nodes that together cover the most *distinct* out-neighbours.  The
  paper points out SHD is exactly the IRS method at ω = 0 (one-hop
  channels); it consistently beats HD in their Figure 5.
* **DegreeDiscount** (Chen, Wang & Yang, KDD 2009 — the paper's ref [4])
  — the classical IC-aware degree heuristic: each time a neighbour of
  ``v`` is seeded, ``v``'s effective degree is discounted by
  ``2t + (d − t)·t·p`` where ``t`` counts seeded neighbours, ``d`` is
  ``v``'s degree and ``p`` the IC probability.  Included because the paper
  cites it as the standard fast heuristic the field compares against.

SHD is a maximum-coverage greedy, implemented with CELF-style lazy gains —
the cached gain of a node only shrinks as coverage grows (submodularity), so
stale heap entries are valid upper bounds.
"""

from __future__ import annotations

import heapq
from typing import Hashable, List, Set

from repro.baselines.static import flatten
from repro.core.interactions import InteractionLog
from repro.utils.validation import (
    require_int,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "high_degree_top_k",
    "smart_high_degree_top_k",
    "degree_discount_top_k",
]

Node = Hashable


def _validate(log: InteractionLog, k: int) -> None:
    require_type(log, "log", InteractionLog)
    require_int(k, "k")
    require_positive(k, "k")


def high_degree_top_k(log: InteractionLog, k: int) -> List[Node]:
    """The ``k`` nodes with the largest distinct out-degree."""
    _validate(log, k)
    graph = flatten(log)
    ranked = sorted(
        graph.nodes, key=lambda node: (-graph.out_degree(node), repr(node))
    )
    return ranked[:k]


def degree_discount_top_k(
    log: InteractionLog, k: int, probability: float = 0.1
) -> List[Node]:
    """DegreeDiscount seeds (Chen et al. 2009) on the flattened graph.

    ``probability`` is the Independent Cascade edge probability the
    discount formula assumes.  Undirected in the original; here the
    discount flows along out-edges: seeding ``u`` discounts every
    out-neighbour ``v``'s score, since ``v`` being infected by ``u`` makes
    seeding ``v`` partially redundant.
    """
    _validate(log, k)
    require_probability(probability, "probability")
    graph = flatten(log)
    degree = {node: graph.out_degree(node) for node in graph.nodes}
    seeded_neighbours = {node: 0 for node in graph.nodes}

    # Max-heap with lazily recomputed discounted degrees.
    heap: List[tuple] = [
        (-degree[node], repr(node), node, 0) for node in graph.nodes
    ]
    heapq.heapify(heap)
    selected: List[Node] = []
    chosen: set = set()
    while heap and len(selected) < k:
        neg_score, tie, node, stamp = heapq.heappop(heap)
        if node in chosen:
            continue
        t = seeded_neighbours[node]
        if stamp != t:
            d = degree[node]
            score = d - 2 * t - (d - t) * t * probability
            heapq.heappush(heap, (-score, tie, node, t))
            continue
        selected.append(node)
        chosen.add(node)
        for neighbour in graph.out_neighbours(node):
            if neighbour not in chosen:
                seeded_neighbours[neighbour] += 1
    return selected


def smart_high_degree_top_k(log: InteractionLog, k: int) -> List[Node]:
    """Greedy maximum coverage of distinct out-neighbours (the paper's SHD)."""
    _validate(log, k)
    graph = flatten(log)
    covered: Set[Node] = set()
    selected: List[Node] = []
    # Heap of (-stale_gain, tie_break, node, round_evaluated).
    heap: List[tuple] = []
    for node in graph.nodes:
        heapq.heappush(heap, (-graph.out_degree(node), repr(node), node, -1))
    current_round = 0
    while heap and len(selected) < k:
        neg_gain, tie, node, evaluated = heapq.heappop(heap)
        if evaluated == current_round:
            selected.append(node)
            covered.update(graph.out_neighbours(node))
            current_round += 1
            continue
        fresh_gain = len(graph.out_neighbours(node) - covered)
        heapq.heappush(heap, (-fresh_gain, tie, node, current_round))
    return selected
