"""Classical simulation-based greedy influence maximization (Kempe,
Kleinberg & Tardos, KDD 2003 — the paper's ref [13]).

The method every later system (including SKIM and this paper's IRS
approach) positions itself against: influence under the **Independent
Cascade** model on a static graph, estimated by Monte-Carlo simulation,
maximized by CELF-accelerated greedy (Leskovec et al., KDD 2007 — ref
[17]).  It is provably within (1 − 1/e) of optimal but needs thousands of
cascade simulations, which is exactly the scalability wall the paper's
one-pass sketches remove.

Provided here both as an additional baseline for interaction networks
(via the usual static flattening) and as a self-contained IC toolkit
(:func:`simulate_ic`, :func:`estimate_ic_spread`).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, List, Optional, Set

from repro.baselines.static import StaticGraph, flatten
from repro.core.interactions import InteractionLog
from repro.utils.rng import RngLike, resolve_rng, spawn_rng
from repro.utils.validation import (
    require_int,
    require_positive,
    require_probability,
    require_type,
)

__all__ = ["simulate_ic", "estimate_ic_spread", "ic_greedy_top_k"]

Node = Hashable


def simulate_ic(
    graph: StaticGraph,
    seeds: Iterable[Node],
    probability: float,
    rng: RngLike = None,
) -> Set[Node]:
    """One Independent Cascade: every newly active node gets one chance to
    activate each inactive out-neighbour with ``probability``.

    Returns the final active set (seeds included).
    """
    require_type(graph, "graph", StaticGraph)
    require_probability(probability, "probability")
    generator = resolve_rng(rng)
    active: Set[Node] = {seed for seed in seeds if seed in graph.nodes}
    frontier: List[Node] = sorted(active, key=repr)
    while frontier:
        fresh: List[Node] = []
        for node in frontier:
            for neighbour in sorted(graph.out_neighbours(node), key=repr):
                if neighbour in active:
                    continue
                if probability >= 1.0 or generator.random() < probability:
                    active.add(neighbour)
                    fresh.append(neighbour)
        frontier = fresh
    return active


def estimate_ic_spread(
    graph: StaticGraph,
    seeds: Iterable[Node],
    probability: float,
    runs: int = 100,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the expected IC spread of ``seeds``."""
    require_type(graph, "graph", StaticGraph)
    if isinstance(runs, bool) or not isinstance(runs, int):
        raise TypeError("runs must be an int")
    require_positive(runs, "runs")
    generator = resolve_rng(rng)
    seed_list = list(seeds)
    effective_runs = 1 if probability >= 1.0 else runs
    total = 0
    for repetition in range(effective_runs):
        child = spawn_rng(generator, repetition)
        total += len(simulate_ic(graph, seed_list, probability, rng=child))
    return total / effective_runs


def ic_greedy_top_k(
    log: InteractionLog,
    k: int,
    probability: float = 0.1,
    runs: int = 50,
    rng: RngLike = None,
    candidates: Optional[Iterable[Node]] = None,
) -> List[Node]:
    """Kempe-style greedy seeds for an interaction log.

    The log is flattened to the static graph (as the paper does for every
    static baseline); marginal gains are Monte-Carlo estimates under IC
    with CELF lazy re-evaluation.  ``runs`` controls the simulation budget
    per gain estimate — the classical accuracy/time dial.

    Note the cost profile: this is O(k · candidates · runs · |E|) in the
    worst case, *the* motivation for sketch-based alternatives.
    """
    require_type(log, "log", InteractionLog)
    require_int(k, "k")
    require_positive(k, "k")
    require_probability(probability, "probability")
    generator = resolve_rng(rng)
    graph = flatten(log)
    pool = sorted(
        candidates if candidates is not None else graph.nodes, key=repr
    )

    selected: List[Node] = []
    current_value = 0.0
    # CELF heap of (-stale_gain, tie, node, round_evaluated).
    heap: List[tuple] = []
    for order, node in enumerate(pool):
        gain = estimate_ic_spread(
            graph, [node], probability, runs=runs, rng=spawn_rng(generator, order)
        )
        heapq.heappush(heap, (-gain, repr(node), node, -1))
    current_round = 0
    while heap and len(selected) < k:
        neg_gain, tie, node, evaluated = heapq.heappop(heap)
        if evaluated == current_round:
            selected.append(node)
            current_value = estimate_ic_spread(
                graph,
                selected,
                probability,
                runs=runs,
                rng=spawn_rng(generator, 10_000 + current_round),
            )
            current_round += 1
            continue
        fresh = (
            estimate_ic_spread(
                graph,
                selected + [node],
                probability,
                runs=runs,
                rng=spawn_rng(generator, 20_000 + len(selected) * 997 + hash(tie) % 997),
            )
            - current_value
        )
        heapq.heappush(heap, (-fresh, tie, node, current_round))
    return selected
