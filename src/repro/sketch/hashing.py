"""Stable 64-bit hashing for sketch data structures.

HyperLogLog-style sketches need a hash that is

* **deterministic across processes** — Python's built-in :func:`hash` is
  salted per process for strings, so it cannot be used;
* **uniform** — every bit of the output should look independent and fair;
* **cheap** — it sits on the hot path of the one-pass algorithms.

We use FNV-1a to fold arbitrary byte strings into 64 bits and a splitmix64
finaliser to whiten the result.  Integers skip the byte-encoding and go
straight through splitmix64.  A ``salt`` parameter derives independent hash
functions from the same primitive, which the sketch tests use to check that
accuracy guarantees hold across hash choices.
"""

from __future__ import annotations

from typing import Hashable

from repro.utils.validation import require_int

__all__ = [
    "hash64",
    "rho",
    "split_hash",
    "MASK64",
]

MASK64 = 0xFFFFFFFFFFFFFFFF

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function (public domain)."""
    x = (x + _SPLITMIX_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def _fnv1a(data: bytes) -> int:
    """64-bit FNV-1a over ``data``."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & MASK64
    return h


def hash64(item: Hashable, salt: int = 0) -> int:
    """Hash ``item`` to a uniform 64-bit integer, deterministically.

    Supported item types are ``int``, ``str``, ``bytes`` and tuples thereof;
    anything else is hashed through its ``repr`` which is stable for the node
    identifiers used in this library.

    ``salt`` selects among independent hash functions.
    """
    if isinstance(item, bool):
        base = _splitmix64(int(item) ^ 0xB00B00)
    elif isinstance(item, int):
        base = _splitmix64(item & MASK64)
    elif isinstance(item, str):
        base = _fnv1a(item.encode("utf-8"))
    elif isinstance(item, bytes):
        base = _fnv1a(item)
    elif isinstance(item, tuple):
        base = _FNV_OFFSET
        for part in item:
            base = (base ^ hash64(part, salt)) * _FNV_PRIME & MASK64
    else:
        base = _fnv1a(repr(item).encode("utf-8"))
    return _splitmix64(base ^ _splitmix64(salt & MASK64))


def rho(value: int, max_bits: int = 64) -> int:
    """Position (1-based) of the least significant 1-bit of ``value``.

    This is the ρ(x) of Flajolet et al.; a ``value`` of zero — which can
    happen when the budgeted bits are exhausted — maps to ``max_bits + 1`` by
    convention so that the estimator treats it as an extremely rare item.
    """
    if value == 0:
        return max_bits + 1
    return (value & -value).bit_length()


def split_hash(item: Hashable, index_bits: int, salt: int = 0) -> tuple[int, int]:
    """Split the hash of ``item`` into ``(cell_index, rho)``.

    The low ``index_bits`` bits pick the sketch cell; ρ is computed on the
    remaining ``64 - index_bits`` bits.  This mirrors the construction in the
    paper's §3.2.1 (there the *first* k bits pick the cell — which bits are
    used is immaterial as long as index and ρ come from disjoint bit ranges).
    """
    require_int(index_bits, "index_bits")
    if not 0 <= index_bits <= 32:
        raise ValueError(f"index_bits must be in [0, 32], got {index_bits}")
    h = hash64(item, salt)
    cell = h & ((1 << index_bits) - 1)
    rest = h >> index_bits
    return cell, rho(rest, 64 - index_bits)
