"""HyperLogLog cardinality sketch, implemented from scratch.

This follows Flajolet, Fusy, Gandouet & Meunier, *HyperLogLog: the analysis
of a near-optimal cardinality estimation algorithm* (AofA 2007), which the
paper's approximate algorithm builds on (§3.2.1):

* the sketch is an array of ``m = 2**precision`` registers;
* an item is hashed; the low ``precision`` bits select a register and ρ of
  the remaining bits (position of the least significant 1-bit) is recorded if
  it exceeds the register's current value;
* the cardinality estimate is the bias-corrected harmonic mean
  ``α_m · m² / Σ 2^{-M_j}`` with the standard small-range (linear counting)
  and large-range (hash-space saturation) corrections.

The relative standard error is ≈ ``1.04 / sqrt(m)``.

Two sketches over the same ``(precision, salt)`` merge by taking the
register-wise maximum; merging is the basis of the influence oracle's
seed-set union (§4.1 of the paper).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Iterator, Optional

from repro.sketch.hashing import split_hash
from repro.utils.validation import require_in_range, require_int, require_type

__all__ = ["HyperLogLog", "alpha", "estimate_from_registers"]


def alpha(m: int) -> float:
    """Bias-correction constant α_m from Flajolet et al. (Figure 3 therein)."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    if m >= 128:
        return 0.7213 / (1.0 + 1.079 / m)
    # Below 16 registers the asymptotic constant is a poor fit; fall back to
    # the m = 16 value, which keeps tiny test sketches sane.
    return 0.673


def estimate_from_registers(registers: Iterable[int], m: int) -> float:
    """Cardinality estimate from raw register values.

    Shared by :class:`HyperLogLog` and the versioned sketch in
    :mod:`repro.sketch.vhll`, which materialises an effective register array
    for a time window and estimates through this same formula.
    """
    indicator = 0.0
    zeros = 0
    for value in registers:
        indicator += 2.0 ** (-value)
        if value == 0:
            zeros += 1
    raw = alpha(m) * m * m / indicator
    if raw <= 2.5 * m and zeros > 0:
        # Small-range correction: linear counting on empty registers.
        return m * math.log(m / zeros)
    two_to_32 = 2.0**32
    if two_to_32 / 30.0 < raw < two_to_32:
        # Large-range correction (32-bit hash-space saturation), kept for
        # fidelity to Flajolet et al.  Our hashes are 64-bit, so a raw
        # estimate at or beyond 2^32 is a legitimate huge cardinality, not
        # saturation — it is returned unchanged (the log correction would
        # be undefined there).
        return -two_to_32 * math.log(1.0 - raw / two_to_32)
    return raw


class HyperLogLog:
    """A HyperLogLog sketch with ``2**precision`` registers.

    Parameters
    ----------
    precision:
        Number of index bits ``k``; the sketch has ``β = 2**k`` registers.
        The paper calls this ``β`` and uses β = 512 (k = 9) as its default.
    salt:
        Selects an independent hash function; sketches can only be merged
        when built with identical ``(precision, salt)``.

    Example
    -------
    >>> sk = HyperLogLog(precision=9)
    >>> for i in range(1000):
    ...     sk.add(i)
    >>> 900 < sk.cardinality() < 1100
    True
    """

    __slots__ = ("_precision", "_m", "_salt", "_registers")

    def __init__(self, precision: int = 9, salt: int = 0) -> None:
        require_int(precision, "precision")
        require_in_range(precision, "precision", 2, 20)
        require_type(salt, "salt", int)
        self._precision = precision
        self._m = 1 << precision
        self._salt = salt
        self._registers = [0] * self._m

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def precision(self) -> int:
        """Number of index bits ``k``."""
        return self._precision

    @property
    def num_registers(self) -> int:
        """Number of registers ``β = 2**precision``."""
        return self._m

    @property
    def salt(self) -> int:
        """Hash-function salt this sketch was built with."""
        return self._salt

    def registers(self) -> list[int]:
        """A copy of the raw register array."""
        return list(self._registers)

    def standard_error(self) -> float:
        """The analytic relative standard error ``1.04 / sqrt(β)``."""
        return 1.04 / math.sqrt(self._m)

    def is_empty(self) -> bool:
        """True if no item has ever been added."""
        return all(value == 0 for value in self._registers)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, item: Hashable) -> None:
        """Add ``item`` to the sketch (idempotent per distinct item)."""
        cell, r = split_hash(item, self._precision, self._salt)
        if r > self._registers[cell]:
            self._registers[cell] = r

    def update(self, items: Iterable[Hashable]) -> None:
        """Add every element of ``items``."""
        for item in items:
            self.add(item)

    def merge(self, other: "HyperLogLog") -> None:
        """In-place union with ``other`` (register-wise maximum)."""
        self._check_compatible(other)
        mine = self._registers
        theirs = other._registers
        for i in range(self._m):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]

    def union(self, other: "HyperLogLog") -> "HyperLogLog":
        """A new sketch equal to the union of ``self`` and ``other``."""
        self._check_compatible(other)
        result = HyperLogLog(self._precision, self._salt)
        result._registers = [max(a, b) for a, b in zip(self._registers, other._registers)]
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cardinality(self) -> float:
        """Bias-corrected estimate of the number of distinct items added."""
        return estimate_from_registers(self._registers, self._m)

    def __len__(self) -> int:
        """The cardinality estimate rounded to the nearest integer."""
        return round(self.cardinality())

    # ------------------------------------------------------------------
    # Serialisation (tests round-trip through this)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable representation."""
        return {
            "precision": self._precision,
            "salt": self._salt,
            "registers": list(self._registers),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HyperLogLog":
        """Inverse of :meth:`to_dict`."""
        sketch = cls(payload["precision"], payload["salt"])
        registers = payload["registers"]
        if len(registers) != sketch._m:
            raise ValueError(
                f"register array has length {len(registers)}, expected {sketch._m}"
            )
        if any(r < 0 for r in registers):
            raise ValueError("registers must be non-negative")
        sketch._registers = list(registers)
        return sketch

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "HyperLogLog") -> None:
        require_type(other, "other", HyperLogLog)
        if other._precision != self._precision or other._salt != self._salt:
            raise ValueError(
                "cannot combine sketches with different precision/salt: "
                f"({self._precision}, {self._salt}) vs ({other._precision}, {other._salt})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HyperLogLog(precision={self._precision}, salt={self._salt}, "
            f"estimate={self.cardinality():.1f})"
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self._registers)
