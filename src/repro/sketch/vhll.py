"""Versioned HyperLogLog (vHLL) — the paper's sketch (§3.2.2).

A plain HyperLogLog register keeps a single maximum ρ per cell, which is
enough to estimate the cardinality of *everything ever added*.  The
approximate IRS algorithm, however, repeatedly has to merge the sketch of a
node ``v`` into the sketch of a node ``u`` **restricted to the items whose
channel end time fits u's window** (``t_x − t < ω``).  A single maximum
cannot answer that, so each cell of the versioned sketch stores a small
dominance-pruned list of ``(ρ, t)`` pairs:

* pair ``(ρ', t')`` **dominates** ``(ρ, t)`` iff ``t' ≤ t`` and ``ρ' ≥ ρ`` —
  an earlier end time is usable by strictly more prefix extensions, and a
  larger ρ contributes a larger register value;
* each cell keeps only non-dominated pairs, so in list order of increasing
  ``t`` the ρ values are strictly increasing;
* the expected list length is ``O(log ω)`` (paper Lemma 4): a new item's ρ
  survives only if it exceeds every ρ already present at earlier times, which
  happens with probability ``1/i`` for the i-th item — a harmonic series.

Given any end-time deadline, the effective register of a cell is the ρ of
the *latest* pair not exceeding the deadline, and cardinality estimation
reduces to the standard HLL formula over those effective registers
(:func:`repro.sketch.hll.estimate_from_registers`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Hashable, Iterable, Optional

import repro.obs as obs
from repro.lint.alloctrace import hotpath
from repro.lint.contracts import invariant, post_vhll_mutation
from repro.obs import OBS_STATE as _OBS
from repro.sketch.hashing import split_hash
from repro.sketch.hll import estimate_from_registers
from repro.utils.validation import (
    require_in_range,
    require_int,
    require_non_negative,
    require_type,
)

__all__ = ["VersionedHLL"]

_TIME_KEY = lambda pair: pair[0]  # noqa: E731 - bisect key, kept tiny on purpose

_PAIRS_INSERTED = obs.counter(
    "vhll.pairs_inserted", "Pairs that survived dominance checks and were stored."
)
_PAIRS_DOMINATED = obs.counter(
    "vhll.pairs_dominated", "Incoming pairs dropped because an existing pair dominates."
)
_PAIRS_PRUNED = obs.counter(
    "vhll.pairs_pruned", "Stored pairs evicted because a new pair dominates them."
)


class VersionedHLL:
    """A HyperLogLog whose cells remember *when* each maximum was achieved.

    Parameters
    ----------
    precision:
        Number of index bits; the sketch has ``β = 2**precision`` cells.
        The paper's default is β = 512 (precision 9).
    salt:
        Hash-function selector; only sketches with equal ``(precision, salt)``
        can be merged.

    Notes
    -----
    Timestamps must be integers (the paper models time stamps as natural
    numbers).  Cell lists store ``(t, ρ)`` pairs sorted by strictly
    increasing ``t`` with strictly increasing ρ — the Pareto frontier of the
    dominance order above.
    """

    __slots__ = ("_precision", "_m", "_salt", "_cells")

    def __init__(self, precision: int = 9, salt: int = 0) -> None:
        require_int(precision, "precision")
        require_in_range(precision, "precision", 2, 20)
        require_type(salt, "salt", int)
        self._precision = precision
        self._m = 1 << precision
        self._salt = salt
        # One list of (t, rho) pairs per cell; lazily created to keep empty
        # sketches cheap (one per node of the graph is allocated).
        self._cells: list[Optional[list[tuple[int, int]]]] = [None] * self._m

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def precision(self) -> int:
        """Number of index bits."""
        return self._precision

    @property
    def num_cells(self) -> int:
        """Number of cells ``β``."""
        return self._m

    @property
    def salt(self) -> int:
        """Hash-function salt."""
        return self._salt

    def entry_count(self) -> int:
        """Total number of ``(t, ρ)`` pairs stored across all cells.

        This is the quantity the memory-accounting experiment (paper Table 4)
        tracks: each pair costs a constant number of machine words.
        """
        return sum(len(cell) for cell in self._cells if cell)

    def cell_lengths(self) -> list[int]:
        """Per-cell list lengths (used to validate Lemma 4 empirically)."""
        return [len(cell) if cell else 0 for cell in self._cells]

    def is_empty(self) -> bool:
        """True if no pair has ever been stored."""
        return all(not cell for cell in self._cells)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, item: Hashable, timestamp: int) -> None:
        """Record that ``item`` was reached by a channel ending at ``timestamp``."""
        self._check_time(timestamp)
        cell, r = split_hash(item, self._precision, self._salt)
        self.add_pair(cell, r, timestamp)

    @invariant(post_vhll_mutation)
    @hotpath
    def add_pair(self, cell: int, r: int, timestamp: int) -> None:
        """Insert a raw ``(ρ=r, t=timestamp)`` pair into ``cell``.

        Implements the paper's ``ApproxAdd``: the pair is dropped if an
        existing pair dominates it; otherwise every pair it dominates is
        removed and the new pair is spliced in, preserving the sorted
        Pareto-frontier invariant.
        """
        self._check_time(timestamp)
        self._insert_pair(cell, r, timestamp)

    # repro-lint: hotpath
    def _insert_pair(self, cell: int, r: int, timestamp: int) -> None:
        """:meth:`add_pair` without argument validation, for trusted loops."""
        if not 0 <= cell < self._m:
            raise ValueError(f"cell must be in [0, {self._m}), got {cell}")
        pairs = self._cells[cell]
        if pairs is None:
            # The (t, ρ) list-of-tuples cell layout is the paper's data
            # structure; the packed-array rewrite is ROADMAP item 3.
            self._cells[cell] = [(timestamp, r)]  # repro-lint: disable=R304 (packed layout is ROADMAP item 3)
            if _OBS.enabled:
                _PAIRS_INSERTED.inc()
            return
        # Position of the first pair with t >= timestamp.
        i = bisect_left(pairs, timestamp, key=_TIME_KEY)
        # A dominating pair has t' <= timestamp and rho' >= r.  Pairs are
        # rho-increasing, so only the latest such pair can dominate.  A pair
        # at position i with t' == timestamp also has t' <= timestamp.
        if i < len(pairs) and pairs[i][0] == timestamp:
            if pairs[i][1] >= r:
                if _OBS.enabled:
                    _PAIRS_DOMINATED.inc()
                return
            # Same time, smaller rho: strictly dominated by the new pair.
            del pairs[i]
            if _OBS.enabled:
                _PAIRS_PRUNED.inc()
        elif i > 0 and pairs[i - 1][1] >= r:
            if _OBS.enabled:
                _PAIRS_DOMINATED.inc()
            return
        # Remove pairs the new one dominates: t'' >= timestamp and rho'' <= r.
        # They form a contiguous run starting at i (rho increases with t).
        j = i
        n = len(pairs)
        while j < n and pairs[j][1] <= r:
            j += 1
        pairs[i:j] = [(timestamp, r)]  # repro-lint: disable=R304 (packed layout is ROADMAP item 3)
        if _OBS.enabled:
            _PAIRS_INSERTED.inc()
            if j > i:
                _PAIRS_PRUNED.inc(j - i)

    @invariant(post_vhll_mutation)
    @hotpath
    def merge(self, other: "VersionedHLL") -> None:
        """In-place union with ``other`` (no time constraint).

        Used by the influence oracle when combining the final sketches of
        several seed nodes (paper §4.1).
        """
        self._check_compatible(other)
        insert_pair = self._insert_pair
        for cell_index, pairs in enumerate(other._cells):  # repro-lint: budget=O(m·F)
            if not pairs:
                continue
            for t, r in pairs:  # repro-lint: disable=R304 (packed layout is ROADMAP item 3)
                insert_pair(cell_index, r, t)

    @invariant(post_vhll_mutation)
    @hotpath
    def merge_within(self, other: "VersionedHLL", start_time: int, window: int) -> None:
        """Merge ``other`` keeping only pairs with ``t − start_time < window``.

        This is the paper's ``ApproxMerge``: when an interaction
        ``(u, v, start_time)`` is processed, ``v``'s sketch is folded into
        ``u``'s, but a channel through ``v`` ending at ``t`` only fits u's
        duration budget when ``t − start_time + 1 ≤ ω``.
        """
        self._check_compatible(other)
        self._check_time(start_time)
        require_int(window, "window")
        require_non_negative(window, "window")
        deadline = start_time + window  # exclusive: keep t < deadline
        insert_pair = self._insert_pair
        for cell_index, pairs in enumerate(other._cells):  # repro-lint: budget=O(m·F)
            if not pairs:
                continue
            for t, r in pairs:  # repro-lint: disable=R304 (packed layout is ROADMAP item 3)
                if t >= deadline:
                    break  # pairs are time-sorted; the rest are too late
                insert_pair(cell_index, r, t)

    def prune_newer_than(self, max_time: int) -> int:
        """Discard pairs with ``t > max_time``; return the eviction count.

        Safe once no query or merge will ever care about pairs later than
        ``max_time`` again.  That is exactly the decay situation of the
        live dual index (:mod:`repro.ingest.live`): dual stamps are
        negated channel starts, the decay horizon only moves forward, so
        its negation only moves down — pairs above today's cutoff are
        above every future cutoff too.  Pruned pairs are the highest-t
        (hence highest-ρ) suffix of each cell, so the sorted
        Pareto-frontier invariant survives, and since the latest pair of a
        cell dominates nothing, no surviving pair's presence depended on
        a pruned one.
        """
        require_int(max_time, "max_time")
        evicted = 0
        for index, pairs in enumerate(self._cells):
            if not pairs:
                continue
            size = len(pairs)
            cut = bisect_right(pairs, max_time, key=_TIME_KEY)
            if cut < size:
                evicted += size - cut
                del pairs[cut:]
                if not pairs:
                    self._cells[index] = None
        return evicted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @hotpath
    def effective_registers(
        self,
        min_time: Optional[int] = None,
        max_time: Optional[int] = None,
    ) -> list[int]:
        """Per-cell maximum ρ over pairs with ``min_time ≤ t ≤ max_time``.

        ``None`` bounds are unconstrained.  Because ρ increases with ``t``
        within a cell, the qualifying pair with the largest ``t`` carries the
        maximum ρ, so each cell is answered with one bisection.
        """
        registers: list[int] = []
        append = registers.append
        for pairs in self._cells:
            if not pairs:
                append(0)
                continue
            hi = len(pairs)
            if max_time is not None:
                hi = bisect_right(pairs, max_time, key=_TIME_KEY)
            if hi == 0:
                append(0)
                continue
            t, r = pairs[hi - 1]
            if min_time is not None and t < min_time:
                append(0)
            else:
                append(r)
        return registers

    @hotpath
    def max_registers_into(
        self,
        registers: list[int],
        min_time: Optional[int] = None,
        max_time: Optional[int] = None,
    ) -> None:
        """Cell-wise ``registers[i] = max(registers[i], effective ρ of cell i)``.

        The allocation-free form of :meth:`effective_registers` for union
        queries: the oracle folds many sketches into one accumulator array
        without materialising an intermediate register list per sketch.
        ``registers`` must have length ``num_cells``.
        """
        if len(registers) != self._m:
            raise ValueError(
                f"registers has length {len(registers)}, expected {self._m}"
            )
        for cell, pairs in enumerate(self._cells):
            if not pairs:
                continue
            hi = len(pairs)
            if max_time is not None:
                hi = bisect_right(pairs, max_time, key=_TIME_KEY)
            if hi == 0:
                continue
            t, r = pairs[hi - 1]
            if min_time is not None and t < min_time:
                continue
            if r > registers[cell]:
                registers[cell] = r

    def cardinality(self) -> float:
        """Estimate of the number of distinct items ever added."""
        return estimate_from_registers(self.effective_registers(), self._m)

    def cardinality_within(self, min_time: Optional[int] = None, max_time: Optional[int] = None) -> float:
        """Cardinality estimate restricted to pairs inside the time bounds."""
        return estimate_from_registers(
            self.effective_registers(min_time, max_time), self._m
        )

    def __len__(self) -> int:
        """The all-time cardinality estimate, rounded."""
        return round(self.cardinality())

    def copy(self) -> "VersionedHLL":
        """An independent deep copy (cell lists are not shared)."""
        clone = VersionedHLL(self._precision, self._salt)
        clone._cells = [list(pairs) if pairs else None for pairs in self._cells]  # repro-lint: disable=R301 (deliberate deep copy; cell lists must not be shared)
        return clone

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable representation."""
        return {
            "precision": self._precision,
            "salt": self._salt,
            "cells": [list(map(list, pairs)) if pairs else [] for pairs in self._cells],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VersionedHLL":
        """Inverse of :meth:`to_dict`, with invariant checking."""
        sketch = cls(payload["precision"], payload["salt"])
        cells = payload["cells"]
        if len(cells) != sketch._m:
            raise ValueError(f"cell array has length {len(cells)}, expected {sketch._m}")
        for index, raw_pairs in enumerate(cells):  # repro-lint: budget=O(m·F)
            previous_t: Optional[int] = None
            previous_r: Optional[int] = None
            for t, r in raw_pairs:
                if previous_t is not None and (t <= previous_t or r <= previous_r):
                    raise ValueError(
                        f"cell {index} violates the Pareto-frontier invariant"
                    )
                sketch.add_pair(index, r, t)
                previous_t, previous_r = t, r
        return sketch

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "VersionedHLL") -> None:
        require_type(other, "other", VersionedHLL)
        if other._precision != self._precision or other._salt != self._salt:
            raise ValueError(
                "cannot combine sketches with different precision/salt: "
                f"({self._precision}, {self._salt}) vs ({other._precision}, {other._salt})"
            )

    @staticmethod
    def _check_time(timestamp: int) -> None:
        require_int(timestamp, "timestamp")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VersionedHLL(precision={self._precision}, salt={self._salt}, "
            f"entries={self.entry_count()}, estimate={self.cardinality():.1f})"
        )
