"""Cardinality sketches: HyperLogLog and the paper's versioned HLL."""

from repro.sketch.bottomk import BottomK, VersionedBottomK
from repro.sketch.hashing import hash64, rho, split_hash
from repro.sketch.hll import HyperLogLog, alpha, estimate_from_registers
from repro.sketch.sliding_hll import SlidingWindowHLL
from repro.sketch.vhll import VersionedHLL

__all__ = [
    "hash64",
    "rho",
    "split_hash",
    "HyperLogLog",
    "alpha",
    "estimate_from_registers",
    "VersionedHLL",
    "SlidingWindowHLL",
    "BottomK",
    "VersionedBottomK",
]
