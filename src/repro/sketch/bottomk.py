"""Bottom-k (min-hash) cardinality sketches, plain and versioned.

The natural competitor of HyperLogLog in this problem space: SKIM (Cohen
et al. 2014) and ConTinEst (Du et al. 2013) both estimate set sizes with
order statistics of hashed items — keep the ``k`` smallest hash values;
with the k-th smallest mapped into (0, 1], the cardinality estimate is
``(k − 1) / h_k``.

Two classes are provided:

* :class:`BottomK` — the textbook sketch: unions by multiset-merging and
  re-truncating; relative standard error ≈ ``1 / sqrt(k − 2)``.
* :class:`VersionedBottomK` — the windowed variant the approximate IRS
  algorithm would need if it were built on bottom-k instead of HLL: every
  retained hash carries the earliest channel end time λ, and merging into
  a predecessor filters by ``λ − t < ω`` like the paper's ApproxMerge.

:class:`VersionedBottomK` is deliberately *naive about eviction*: it keeps
the ``k`` smallest hashes overall, so a hash evicted today cannot
contribute to a later, stricter time filter even when every smaller hash
fails that filter.  Exact windowed merging would require keeping every
``(hash, λ)`` pair not dominated by ``k`` better pairs — a structure whose
size is no longer bounded by ``k``.  This asymmetry is precisely why the
paper versions *HyperLogLog* (one small Pareto list per cell, Lemma 4)
rather than bottom-k; the ablation benchmark quantifies the accuracy the
naive bottom-k loses, using :class:`~repro.core.approx.ApproxIRS`'s exact
counterpart as ground truth.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Hashable, Iterable, Optional

from repro.sketch.hashing import MASK64, hash64
from repro.utils.validation import (
    require_at_least,
    require_int,
    require_non_negative,
    require_type,
)

__all__ = ["BottomK", "VersionedBottomK"]


def _unit_hash(item: Hashable, salt: int) -> float:
    """Hash ``item`` into (0, 1]."""
    return (hash64(item, salt) + 1) / (MASK64 + 1)


class BottomK:
    """Keep the ``k`` smallest unit-interval hashes of the items seen.

    Example
    -------
    >>> sketch = BottomK(k=64)
    >>> sketch.update(range(1000))
    >>> 700 < sketch.cardinality() < 1400
    True
    """

    __slots__ = ("_k", "_salt", "_hashes")

    def __init__(self, k: int = 64, salt: int = 0) -> None:
        require_int(k, "k")
        # k >= 3 keeps the (k-1)/h_k estimator's variance bound meaningful.
        require_at_least(k, "k", 3)
        require_type(salt, "salt", int)
        self._k = k
        self._salt = salt
        self._hashes: list[float] = []  # sorted ascending, length <= k

    @property
    def k(self) -> int:
        """Sketch capacity."""
        return self._k

    @property
    def salt(self) -> int:
        """Hash-function selector."""
        return self._salt

    def add(self, item: Hashable) -> None:
        """Add one item."""
        self._insert(_unit_hash(item, self._salt))

    def update(self, items: Iterable[Hashable]) -> None:
        """Add every element of ``items``."""
        for item in items:
            self.add(item)

    def _insert(self, value: float) -> None:
        hashes = self._hashes
        if len(hashes) >= self._k and value >= hashes[-1]:
            return
        position = bisect_left(hashes, value)
        if position < len(hashes) and hashes[position] == value:
            return  # duplicate item
        hashes.insert(position, value)
        if len(hashes) > self._k:
            hashes.pop()

    def merge(self, other: "BottomK") -> None:
        """In-place union."""
        self._check_compatible(other)
        for value in other._hashes:
            self._insert(value)

    def cardinality(self) -> float:
        """The (k−1)/h_k estimate (exact count while undersaturated)."""
        hashes = self._hashes
        if len(hashes) < self._k:
            return float(len(hashes))
        return (self._k - 1) / hashes[-1]

    def is_empty(self) -> bool:
        """True when nothing was added."""
        return not self._hashes

    def __len__(self) -> int:
        return round(self.cardinality())

    def standard_error(self) -> float:
        """Analytic relative standard error ``1/sqrt(k − 2)``."""
        return 1.0 / (self._k - 2) ** 0.5

    def _check_compatible(self, other: "BottomK") -> None:
        require_type(other, "other", BottomK)
        if (self._k, self._salt) != (other._k, other._salt):
            raise ValueError(
                f"cannot merge sketches with different (k, salt): "
                f"({self._k}, {self._salt}) vs ({other._k}, {other._salt})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BottomK(k={self._k}, estimate={self.cardinality():.1f})"


class VersionedBottomK:
    """Bottom-k with per-hash earliest end times and windowed merging.

    The naive windowed bottom-k described in the module docstring: the
    ``k`` smallest hashes are kept, each with the minimal channel end time
    λ seen for it; :meth:`merge_within` transfers only entries whose λ
    fits the receiving channel's budget.  Eviction is by hash alone, which
    makes windowed estimates *approximate from below* in a way the
    versioned HLL is not — measured by the ablation benchmark.
    """

    __slots__ = ("_k", "_salt", "_entries")

    def __init__(self, k: int = 64, salt: int = 0) -> None:
        require_int(k, "k")
        require_at_least(k, "k", 3)
        require_type(salt, "salt", int)
        self._k = k
        self._salt = salt
        self._entries: Dict[float, int] = {}  # hash -> min lambda

    @property
    def k(self) -> int:
        """Sketch capacity."""
        return self._k

    def add(self, item: Hashable, timestamp: int) -> None:
        """Record ``item`` reached by a channel ending at ``timestamp``."""
        require_int(timestamp, "timestamp")
        self._insert(_unit_hash(item, self._salt), timestamp)

    def _insert(self, value: float, timestamp: int) -> None:
        entries = self._entries
        current = entries.get(value)
        if current is not None:
            if timestamp < current:
                entries[value] = timestamp
            return
        if len(entries) >= self._k:
            largest = max(entries)
            if value >= largest:
                return
            del entries[largest]
        entries[value] = timestamp

    def merge_within(
        self, other: "VersionedBottomK", start_time: int, window: int
    ) -> None:
        """Fold ``other`` in, keeping entries with ``λ − start_time < window``."""
        require_type(other, "other", VersionedBottomK)
        if (self._k, self._salt) != (other._k, other._salt):
            raise ValueError("cannot merge sketches with different (k, salt)")
        require_int(start_time, "start_time")
        require_int(window, "window")
        require_non_negative(window, "window")
        deadline = start_time + window
        for value, timestamp in other._entries.items():
            if timestamp < deadline:
                self._insert(value, timestamp)

    def merge(self, other: "VersionedBottomK") -> None:
        """Unconstrained union."""
        require_type(other, "other", VersionedBottomK)
        if (self._k, self._salt) != (other._k, other._salt):
            raise ValueError("cannot merge sketches with different (k, salt)")
        for value, timestamp in other._entries.items():
            self._insert(value, timestamp)

    def cardinality(self) -> float:
        """The (k−1)/h_k estimate over the stored entries."""
        entries = self._entries
        if len(entries) < self._k:
            return float(len(entries))
        return (self._k - 1) / max(entries)

    def entry_count(self) -> int:
        """Stored (hash, λ) pairs (≤ k by construction)."""
        return len(self._entries)

    def is_empty(self) -> bool:
        """True when nothing was added."""
        return not self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VersionedBottomK(k={self._k}, entries={len(self._entries)}, "
            f"estimate={self.cardinality():.1f})"
        )
