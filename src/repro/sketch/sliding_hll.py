"""Sliding-window HyperLogLog (Kumar, Calders, Gionis & Tatti, ECML-PKDD
2015 — the paper's ref [15], whose construction the versioned HLL adapts).

Counts distinct items over *time-based sliding windows* of a forward
stream: after feeding items with non-decreasing timestamps, the sketch can
estimate "how many distinct items arrived in ``[start, now]``" for **any**
``start`` — one sketch answers every window length at once.

The trick mirrors :mod:`repro.sketch.vhll` with the time axis flipped.
Each cell keeps the Pareto frontier of ``(timestamp, ρ)`` pairs under the
dominance "newer and larger ρ wins": a pair survives only while it holds
the maximum ρ for *some* suffix window.  Stored in arrival order the
timestamps increase and the ρ values strictly decrease, so

* inserting prunes a suffix of the list (amortised O(1) per arrival), and
* a window query binary-searches the first pair inside the window — whose
  ρ is the window's register value — in O(log log n) expected.

Expected list length is O(log W) for windows of W arrivals, by the same
record-value argument as the paper's Lemma 4.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Hashable, Optional

from repro.sketch.hashing import split_hash
from repro.sketch.hll import estimate_from_registers
from repro.utils.validation import require_in_range, require_int, require_type

__all__ = ["SlidingWindowHLL"]


class SlidingWindowHLL:
    """HyperLogLog over every suffix window of a forward stream.

    Parameters
    ----------
    precision:
        Index bits; β = ``2**precision`` cells.
    salt:
        Hash-function selector.

    Example
    -------
    >>> sketch = SlidingWindowHLL(precision=8)
    >>> for t in range(1000):
    ...     sketch.add(f"user-{t % 400}", timestamp=t)
    >>> 300 < sketch.cardinality_since(600) < 500   # last 400 ticks
    True
    """

    __slots__ = ("_precision", "_m", "_salt", "_cells", "_last_time")

    def __init__(self, precision: int = 9, salt: int = 0) -> None:
        require_int(precision, "precision")
        require_in_range(precision, "precision", 2, 20)
        require_type(salt, "salt", int)
        self._precision = precision
        self._m = 1 << precision
        self._salt = salt
        # Per cell: list of (timestamp, rho), timestamps increasing and rho
        # strictly decreasing (the suffix-maxima frontier).
        self._cells: list[Optional[list[tuple[int, int]]]] = [None] * self._m
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def precision(self) -> int:
        """Number of index bits."""
        return self._precision

    @property
    def num_cells(self) -> int:
        """β — number of cells."""
        return self._m

    @property
    def last_time(self) -> Optional[int]:
        """Timestamp of the most recent arrival (None when empty)."""
        return self._last_time

    def entry_count(self) -> int:
        """Stored ``(t, ρ)`` pairs across all cells."""
        return sum(len(cell) for cell in self._cells if cell)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, item: Hashable, timestamp: int) -> None:
        """Feed one arrival; timestamps must be non-decreasing."""
        require_int(timestamp, "timestamp")
        if self._last_time is not None and timestamp < self._last_time:
            raise ValueError(
                f"stream must be fed in time order: got t={timestamp} "
                f"after t={self._last_time}"
            )
        self._last_time = timestamp
        cell_index, r = split_hash(item, self._precision, self._salt)
        pairs = self._cells[cell_index]
        if pairs is None:
            self._cells[cell_index] = [(timestamp, r)]
            return
        # Remove every trailing pair with rho <= r: the new arrival is at
        # least as recent AND at least as large, so it dominates them.
        while pairs and pairs[-1][1] <= r:
            pairs.pop()
        pairs.append((timestamp, r))

    def add_at(self, item: Hashable, timestamp: int) -> None:
        """Like :meth:`add`, but accepts out-of-order timestamps.

        The live influence tracker (:mod:`repro.ingest.live`) feeds each
        node's sketch with *channel start times*, which do not arrive
        monotonically: a late interaction can extend a channel that began
        long ago.  General-position insertion costs an extra binary search
        over the fast append path; the dominance frontier is identical.
        """
        require_int(timestamp, "timestamp")
        if self._last_time is None or timestamp >= self._last_time:
            self.add(item, timestamp)
            return
        cell_index, r = split_hash(item, self._precision, self._salt)
        pairs = self._cells[cell_index]
        if pairs is None:
            self._cells[cell_index] = [(timestamp, r)]
            return
        i = bisect_left(pairs, timestamp, key=lambda pair: pair[0])
        # At most one stored pair can share this timestamp (same-t pairs
        # dominate each other); it sits exactly at position i.
        if i < len(pairs) and pairs[i][0] == timestamp:
            if pairs[i][1] >= r:
                return
            del pairs[i]
        # rho decreases with t, so pairs[i] holds the max rho of every
        # strictly newer pair: it alone decides domination of the new pair.
        if i < len(pairs) and pairs[i][1] >= r:
            return
        # Strictly older pairs with rho <= r are dominated by the new pair;
        # they form a contiguous run ending at i.
        j = i
        while j > 0 and pairs[j - 1][1] <= r:
            j -= 1
        pairs[j:i] = [(timestamp, r)]

    def prune(self, before: int) -> None:
        """Discard pairs with ``t < before``.

        Safe once only windows starting at or after ``before`` will ever be
        queried: a pair older than every future window start can never be a
        window's register again.  Call periodically to bound memory when
        tracking an endless stream with a fixed maximum window length.
        """
        require_int(before, "before")
        for index, pairs in enumerate(self._cells):
            if not pairs:
                continue
            cut = bisect_left(pairs, before, key=lambda pair: pair[0])
            if cut:
                del pairs[:cut]
                if not pairs:
                    self._cells[index] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def registers_since(self, start: int) -> list[int]:
        """Per-cell max ρ over arrivals with ``t >= start``.

        Within a cell the frontier's ρ decreases with time, so the first
        pair inside the window carries the maximum.
        """
        registers = []
        append = registers.append
        for pairs in self._cells:
            if not pairs:
                append(0)
                continue
            index = bisect_left(pairs, start, key=lambda pair: pair[0])
            append(pairs[index][1] if index < len(pairs) else 0)
        return registers

    def cardinality_since(self, start: int) -> float:
        """Estimated distinct items among arrivals with ``t >= start``."""
        return estimate_from_registers(self.registers_since(start), self._m)

    def registers(self) -> list[int]:
        """Per-cell max ρ over the whole stream (the plain HLL registers)."""
        return [pairs[0][1] if pairs else 0 for pairs in self._cells]

    def cardinality(self) -> float:
        """Estimated distinct items over the whole stream seen so far."""
        return estimate_from_registers(self.registers(), self._m)

    def __len__(self) -> int:
        """Whole-stream estimate, rounded."""
        return round(self.cardinality())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SlidingWindowHLL(precision={self._precision}, "
            f"entries={self.entry_count()}, last_time={self._last_time})"
        )
