"""Experiment-matrix orchestration (``repro xp ...``).

The evaluation of the paper is a five-axis parameter space — dataset ×
window ω × sketch precision × method × seed — and every figure/table is
one slice of it.  This package turns that space into a declared,
resumable, comparable artefact instead of a pile of bespoke script
invocations:

* :mod:`repro.xp.spec`   — declarative matrix specs (JSON/TOML or the
  built-in ``paper``/``smoke`` matrices) with validation and
  deterministic cell expansion;
* :mod:`repro.xp.runner` — resumable execution: every cell is keyed by a
  content hash of its parameters, persisted on completion, and skipped
  on re-run while the code fingerprint still matches;
* :mod:`repro.xp.store`  — the versioned (``repro-xp/1``) per-cell
  result store with full machine/code provenance;
* :mod:`repro.xp.stats`  — significance testing over per-seed replicates
  (Mann-Whitney U, bootstrap CIs) sharing the IQR rule of
  :mod:`repro.obs.trend`;
* :mod:`repro.xp.report` — markdown/HTML evidence reports and cross-run
  trend deltas (``repro xp report`` / ``repro xp diff``).

See ``docs/experiments.md`` for the workflow walkthrough.
"""

from repro.xp.spec import MatrixSpec, load_spec, paper_spec, smoke_spec
from repro.xp.store import XP_SCHEMA, ResultStore
from repro.xp.runner import RunSummary, run_matrix

__all__ = [
    "MatrixSpec",
    "load_spec",
    "paper_spec",
    "smoke_spec",
    "XP_SCHEMA",
    "ResultStore",
    "RunSummary",
    "run_matrix",
]
