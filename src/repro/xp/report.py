"""Evidence reports and cross-run trend deltas over a result store.

The report engine renders every paper artefact present in a run
directory from the persisted cells — never by re-running anything — so
a reviewer can regenerate the exact tables from the store alone:

* :func:`aggregate` — pool per-seed replicates into *groups* (one
  logical measurement: experiment + dataset + axes + row identity) with
  a value list per metric;
* :func:`build_sections` — one section per paper artefact, each group
  summarised as ``median``/IQR/bootstrap-CI with Mann-Whitney
  significance annotations against the best method in its panel;
* :func:`diff_runs` / :func:`render_diff` — trend deltas versus a prior
  run directory under the three-part rule of
  :func:`repro.xp.stats.compare_samples` (median shift + disjoint IQRs
  + rank-test rejection), exit-coded like ``repro obs diff``;
* :func:`render_markdown` / :func:`render_html` — the same section
  model as GitHub-flavoured markdown or a self-contained HTML page
  (CI uploads the latter as the run artifact).
"""

from __future__ import annotations

import html
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trend import DEFAULT_THRESHOLD, quartiles
from repro.xp.spec import EXPERIMENTS
from repro.xp.stats import (
    DEFAULT_ALPHA,
    bootstrap_ci,
    compare_samples,
    mann_whitney_u,
    significance_marker,
)
from repro.xp.store import ResultStore

__all__ = [
    "Group",
    "aggregate",
    "Section",
    "build_sections",
    "render_markdown",
    "render_html",
    "diff_runs",
    "render_diff",
    "has_regressions",
]

#: Cell identity columns, in display order.
_IDENTITY_AXES = ("dataset", "window_pct", "precision", "method", "seed")


@dataclass
class Group:
    """One logical measurement pooled across seed replicates."""

    experiment: str
    identity: Tuple[Tuple[str, object], ...]  #: sorted (column, value) pairs, seed excluded
    metrics: Dict[str, List[float]] = field(default_factory=dict)
    info: Dict[str, object] = field(default_factory=dict)  #: non-metric payload (Table 2 rows)

    def label(self) -> str:
        parts = [self.experiment] + [
            f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in self.identity
        ]
        return " ".join(parts)


def aggregate(store: ResultStore) -> Dict[Tuple[str, Tuple[Tuple[str, object], ...]], Group]:
    """Pool every persisted cell into groups keyed by measurement identity.

    The ``seed`` axis is the replicate axis: cells differing only in
    seed pool their metric values into one group, which is what the
    significance layer tests over.  Unknown experiments (from a newer
    build's store) are skipped rather than fatal.
    """
    groups: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], Group] = {}
    for document in store.results():
        experiment = str(document["experiment"])
        definition = EXPERIMENTS.get(experiment)
        if definition is None:
            continue
        params: Mapping[str, object] = document["params"]  # type: ignore[assignment]
        base_identity = {
            axis: params[axis]
            for axis in _IDENTITY_AXES
            if axis in params and axis != "seed"
        }
        for row in document["rows"]:  # type: ignore[union-attr]
            identity = dict(base_identity)
            for column in definition.group_columns:
                if column in row:
                    identity[column] = row[column]
            key = (experiment, tuple(sorted(identity.items(), key=lambda kv: kv[0])))
            group = groups.get(key)
            if group is None:
                group = Group(experiment=experiment, identity=key[1])
                groups[key] = group
            if definition.metrics:
                for metric, _direction in definition.metrics:
                    value = row.get(metric)
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        group.metrics.setdefault(metric, []).append(float(value))
            else:
                group.info.update(row)
    return groups


# ---------------------------------------------------------------------------
# Section building
# ---------------------------------------------------------------------------

@dataclass
class Section:
    """One rendered block of the report (a table with context)."""

    title: str
    intro: str
    headers: Tuple[str, ...]
    rows: List[Tuple[str, ...]]
    note: str = ""


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def _identity_columns(groups: Sequence[Group]) -> List[str]:
    columns: List[str] = []
    for group in groups:
        for key, _value in group.identity:
            if key not in columns:
                columns.append(key)
    ordered = [c for c in _IDENTITY_AXES if c in columns]
    ordered += [c for c in columns if c not in ordered]
    return ordered


def _panel_key(group: Group, metric: str) -> Tuple[object, ...]:
    """Identity minus the method axis: the set of rows a method competes in."""
    return (metric,) + tuple(
        (key, value) for key, value in group.identity if key != "method"
    )


def build_sections(
    store: ResultStore,
    alpha: float = DEFAULT_ALPHA,
) -> List[Section]:
    """One section per paper artefact present in the store."""
    groups_by_experiment: Dict[str, List[Group]] = {}
    for (experiment, _identity), group in sorted(
        aggregate(store).items(), key=lambda item: (item[0][0], repr(item[0][1]))
    ):
        groups_by_experiment.setdefault(experiment, []).append(group)

    sections: List[Section] = []
    for name, definition in EXPERIMENTS.items():
        groups = groups_by_experiment.get(name)
        if not groups:
            continue
        identity_columns = _identity_columns(groups)
        if not definition.metrics:
            info_columns: List[str] = []
            for group in groups:
                for column in group.info:
                    if column not in info_columns:
                        info_columns.append(column)
            headers = tuple(identity_columns + info_columns)
            rows = [
                tuple(
                    [_fmt(dict(group.identity).get(c)) for c in identity_columns]
                    + [_fmt(group.info.get(c)) for c in info_columns]
                )
                for group in groups
            ]
            sections.append(
                Section(
                    title=f"{definition.artifact} — {name}",
                    intro=f"{len(rows)} measurement(s), informational.",
                    headers=headers,
                    rows=rows,
                )
            )
            continue

        has_methods = any("method" in dict(group.identity) for group in groups)
        # Best-per-panel for the significance annotation: within one panel
        # (same identity minus method) the best method is the reference.
        best_values: Dict[Tuple[object, ...], Tuple[float, List[float]]] = {}
        if has_methods:
            for group in groups:
                for (metric, direction) in definition.metrics:
                    values = group.metrics.get(metric)
                    if not values:
                        continue
                    median = quartiles(values)["median"]
                    panel = _panel_key(group, metric)
                    current = best_values.get(panel)
                    better = (
                        current is None
                        or (direction == "lower" and median < current[0])
                        or (direction == "higher" and median > current[0])
                    )
                    if better:
                        best_values[panel] = (median, values)

        headers = tuple(
            identity_columns
            + [
                column
                for metric, _ in definition.metrics
                for column in (f"{metric} (median)", "IQR", "CI95", "n")
            ]
            + (["vs best"] if has_methods else [])
        )
        rows = []
        replicated = False
        for group in groups:
            cells: List[str] = [
                _fmt(dict(group.identity).get(c)) for c in identity_columns
            ]
            annotation = ""
            for (metric, direction) in definition.metrics:
                values = group.metrics.get(metric, [])
                if not values:
                    cells += ["-", "-", "-", "0"]
                    continue
                stats = quartiles(values)
                if len(values) > 1:
                    replicated = True
                    lo, hi = bootstrap_ci(values, resamples=500)
                    ci_text = f"[{lo:.4g}, {hi:.4g}]"
                else:
                    ci_text = "-"
                cells += [
                    _fmt(stats["median"]),
                    _fmt(stats["iqr"]),
                    ci_text,
                    str(len(values)),
                ]
                if has_methods:
                    panel = _panel_key(group, metric)
                    best = best_values.get(panel)
                    if best is not None:
                        if best[1] is values:
                            annotation = "best"
                        else:
                            test = mann_whitney_u(best[1], values)
                            marker = significance_marker(test.p_value)
                            annotation = f"p={test.p_value:.3f}{(' ' + marker) if marker else ''}"
            if has_methods:
                cells.append(annotation)
            rows.append(tuple(cells))
        note = (
            f"significance: Mann-Whitney U vs the best method per panel, "
            f"two-sided, alpha={alpha:g} (*, **, *** at 0.05/0.01/0.001); "
            f"CI95 is a seeded bootstrap over seed replicates."
            if has_methods
            else "CI95 is a seeded percentile bootstrap over seed replicates."
        )
        if not replicated:
            note += " Single replicate per group: add seeds to the matrix for significance."
        sections.append(
            Section(
                title=f"{definition.artifact} — {name}",
                intro=f"{len(rows)} measurement group(s).",
                headers=headers,
                rows=rows,
                note=note,
            )
        )
    return sections


# ---------------------------------------------------------------------------
# Cross-run trend deltas
# ---------------------------------------------------------------------------

def diff_runs(
    old: ResultStore,
    new: ResultStore,
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, object]:
    """Compare two run directories group by group.

    Returns ``rows`` (shared groups × metrics, each with the
    :func:`~repro.xp.stats.compare_samples` verdict), plus ``added`` /
    ``removed`` group labels.  Groups match by measurement identity
    (parameter content), so baselines recorded by older code keep
    matching after refactors.
    """
    old_groups = aggregate(old)
    new_groups = aggregate(new)
    rows: List[Dict[str, object]] = []
    for key in sorted(set(old_groups) & set(new_groups), key=repr):
        before, after = old_groups[key], new_groups[key]
        definition = EXPERIMENTS[before.experiment]
        for (metric, direction) in definition.metrics:
            old_values = before.metrics.get(metric)
            new_values = after.metrics.get(metric)
            if not old_values or not new_values:
                continue
            comparison = compare_samples(
                old_values,
                new_values,
                direction=direction,
                threshold=threshold,
                alpha=alpha,
            )
            comparison["name"] = f"{before.label()} :{metric}"
            rows.append(comparison)
    return {
        "schema": "repro-xp-diff/1",
        "threshold": threshold,
        "alpha": alpha,
        "rows": rows,
        "added": [new_groups[k].label() for k in sorted(set(new_groups) - set(old_groups), key=repr)],
        "removed": [old_groups[k].label() for k in sorted(set(old_groups) - set(new_groups), key=repr)],
    }


def has_regressions(diff: Mapping[str, object]) -> bool:
    """True when any compared metric regressed under the three-part rule."""
    return any(row["verdict"] == "regression" for row in diff["rows"])  # type: ignore[index,union-attr]


def _diff_cells(diff: Mapping[str, object]) -> Tuple[Tuple[str, ...], List[Tuple[str, ...]], str]:
    rows: Sequence[Mapping[str, object]] = diff["rows"]  # type: ignore[assignment]
    headers = ("measurement", "old_median", "new_median", "delta", "p", "verdict")
    cells = []
    for row in rows:
        ratio = row.get("ratio")
        delta = (
            f"{(float(ratio) - 1.0) * 100.0:+.1f}%"
            if isinstance(ratio, float) and ratio != float("inf")
            else "-"
        )
        cells.append(
            (
                str(row["name"]),
                _fmt(row.get("old_median")),
                _fmt(row.get("new_median")),
                delta,
                f"{float(row['p_value']):.3f}",
                str(row["verdict"]),
            )
        )
    regressions = sum(1 for row in rows if row["verdict"] == "regression")
    improvements = sum(1 for row in rows if row["verdict"] == "improvement")
    summary = (
        f"{len(cells)} measurements compared, {regressions} regression(s), "
        f"{improvements} improvement(s) at threshold "
        f"+{float(diff.get('threshold', DEFAULT_THRESHOLD)) * 100.0:g}% with disjoint "
        f"IQRs and alpha={float(diff.get('alpha', DEFAULT_ALPHA)):g}"
    )
    extra = []
    if diff.get("added"):
        extra.append(f"{len(diff['added'])} group(s) only in the new run")  # type: ignore[arg-type]
    if diff.get("removed"):
        extra.append(f"{len(diff['removed'])} group(s) only in the baseline")  # type: ignore[arg-type]
    if extra:
        summary += "; " + ", ".join(extra)
    return headers, cells, summary


def render_diff(diff: Mapping[str, object], format: str = "table") -> str:
    """Render a :func:`diff_runs` report (``table``/``json``/``markdown``)."""
    if format == "json":
        return json.dumps(diff, indent=2, sort_keys=True) + "\n"
    headers, cells, summary = _diff_cells(diff)
    if format == "markdown":
        lines = ["| " + " | ".join(headers) + " |"]
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        lines.extend("| " + " | ".join(row) + " |" for row in cells)
        lines.append("")
        lines.append(summary)
        return "\n".join(lines) + "\n"
    if format == "table":
        from repro.obs.export import _render_table

        if not cells:
            return "(no measurements to compare)\n" + summary + "\n"
        return "\n".join(_render_table(headers, [list(c) for c in cells]) + ["", summary]) + "\n"
    raise ValueError(f"unknown diff format {format!r}; use table, json or markdown")


# ---------------------------------------------------------------------------
# Whole-report rendering
# ---------------------------------------------------------------------------

def _provenance_lines(store: ResultStore) -> List[str]:
    manifest = store.load_manifest() or {}
    machine = manifest.get("machine", {})
    lines = [f"- run directory: `{store.root}`"]
    spec = manifest.get("spec")
    if isinstance(spec, dict):
        lines.append(
            f"- spec: `{spec.get('name', '?')}` (hash `{manifest.get('spec_hash', '?')}`), "
            f"scale {spec.get('scale', '?')}"
        )
    lines.append(f"- cells: {len(store.keys())} persisted")
    if isinstance(machine, dict) and machine:
        lines.append(
            f"- machine: {machine.get('implementation', '?')} "
            f"{machine.get('python', '?')} on {machine.get('platform', '?')} "
            f"({machine.get('cpu_count', '?')} CPUs)"
        )
    if manifest.get("code_fingerprint"):
        lines.append(f"- code fingerprint: `{manifest['code_fingerprint']}`")
    if manifest.get("status"):
        lines.append(f"- run status: {manifest['status']}")
    return lines


def render_markdown(
    store: ResultStore,
    baseline: Optional[ResultStore] = None,
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> str:
    """The full evidence report as GitHub-flavoured markdown."""
    manifest = store.load_manifest() or {}
    spec = manifest.get("spec", {})
    name = spec.get("name", "experiment run") if isinstance(spec, dict) else "experiment run"
    lines = [f"# Experiment report — {name}", ""]
    lines += _provenance_lines(store)
    lines.append(f"- generated: {time.strftime('%Y-%m-%d %H:%M:%S')}")
    lines.append("")
    for section in build_sections(store, alpha=alpha):
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append(section.intro)
        lines.append("")
        if section.rows:
            lines.append("| " + " | ".join(section.headers) + " |")
            lines.append("|" + "|".join("---" for _ in section.headers) + "|")
            lines.extend("| " + " | ".join(row) + " |" for row in section.rows)
        else:
            lines.append("(no rows)")
        if section.note:
            lines.append("")
            lines.append(f"_{section.note}_")
        lines.append("")
    if baseline is not None:
        lines.append(f"## Trend deltas vs `{baseline.root}`")
        lines.append("")
        diff = diff_runs(baseline, store, threshold=threshold, alpha=alpha)
        lines.append(render_diff(diff, "markdown"))
    return "\n".join(lines).rstrip() + "\n"


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1f2328; }
h1 { border-bottom: 2px solid #d0d7de; padding-bottom: .3rem; }
h2 { margin-top: 2rem; border-bottom: 1px solid #d0d7de; padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .85rem; }
th, td { border: 1px solid #d0d7de; padding: .25rem .6rem; text-align: left; }
th { background: #f6f8fa; }
tr:nth-child(even) td { background: #fafbfc; }
td.regression { background: #ffebe9; font-weight: 600; }
td.improvement { background: #dafbe1; }
.note { color: #57606a; font-style: italic; font-size: .85rem; }
ul.provenance { color: #57606a; font-size: .9rem; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px; }
"""


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{html.escape(h)}</th>" for h in headers) + "</tr>"]
    for row in rows:
        cells = []
        for value in row:
            css = ""
            if value in ("regression", "improvement"):
                css = f' class="{value}"'
            cells.append(f"<td{css}>{html.escape(str(value))}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    return out


def render_html(
    store: ResultStore,
    baseline: Optional[ResultStore] = None,
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> str:
    """The evidence report as one self-contained HTML page."""
    manifest = store.load_manifest() or {}
    spec = manifest.get("spec", {})
    name = spec.get("name", "experiment run") if isinstance(spec, dict) else "experiment run"
    parts = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>Experiment report — {html.escape(str(name))}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Experiment report — {html.escape(str(name))}</h1>",
        "<ul class=\"provenance\">",
    ]
    for line in _provenance_lines(store):
        parts.append(f"<li>{html.escape(line.lstrip('- '))}</li>")
    parts.append(f"<li>generated: {time.strftime('%Y-%m-%d %H:%M:%S')}</li>")
    parts.append("</ul>")
    for section in build_sections(store, alpha=alpha):
        parts.append(f"<h2>{html.escape(section.title)}</h2>")
        parts.append(f"<p>{html.escape(section.intro)}</p>")
        if section.rows:
            parts += _html_table(section.headers, section.rows)
        else:
            parts.append("<p>(no rows)</p>")
        if section.note:
            parts.append(f"<p class=\"note\">{html.escape(section.note)}</p>")
    if baseline is not None:
        parts.append(f"<h2>Trend deltas vs {html.escape(baseline.root)}</h2>")
        diff = diff_runs(baseline, store, threshold=threshold, alpha=alpha)
        headers, cells, summary = _diff_cells(diff)
        if cells:
            parts += _html_table(headers, cells)
        parts.append(f"<p class=\"note\">{html.escape(summary)}</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
