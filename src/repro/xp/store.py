"""The versioned (``repro-xp/1``) per-cell experiment result store.

A *run directory* holds one JSON document per executed cell plus a run
manifest::

    <run-dir>/
      run.json            # manifest: spec, totals, provenance
      cells/<key>.json    # one repro-xp/1 document per cell

Cell file names are the cell's parameter hash (:meth:`repro.xp.spec.Cell.key`),
which is what makes runs resumable (an existing file with a matching
code fingerprint is a finished cell) *and* cross-run comparable (the
same parameters hash to the same key in a prior run directory, so trend
deltas match cells without any name bookkeeping).

Every document carries full provenance — the machine fingerprint shared
with :mod:`repro.obs.trend` and the code fingerprint of the ``repro``
sources that produced it (:mod:`repro.utils.provenance`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Mapping, Optional

from repro.utils.provenance import code_fingerprint, machine_fingerprint
from repro.utils.timer import wall_clock_unix

__all__ = [
    "XP_SCHEMA",
    "XP_SCHEMA_PREFIX",
    "ResultStore",
    "validate_cell_result",
    "cell_result_document",
]

#: Version marker of every persisted cell result.  Bump on breaking
#: field changes; readers refuse foreign versions with a one-line error.
XP_SCHEMA = "repro-xp/1"
XP_SCHEMA_PREFIX = "repro-xp/"

_REQUIRED_FIELDS = ("schema", "key", "experiment", "params", "rows", "duration_s")


def cell_result_document(
    key: str,
    experiment: str,
    params: Mapping[str, object],
    rows: List[Dict[str, object]],
    duration_s: float,
    obs: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a ``repro-xp/1`` document for one executed cell."""
    return {
        "schema": XP_SCHEMA,
        "key": key,
        "experiment": experiment,
        "params": dict(params),
        "rows": [dict(row) for row in rows],
        "duration_s": float(duration_s),
        "obs": dict(obs) if obs is not None else None,
        "created_unix": wall_clock_unix(),
        "machine": machine_fingerprint(),
        "code_fingerprint": code_fingerprint(),
    }


def validate_cell_result(document: object) -> None:
    """Raise a one-line ``ValueError`` when ``document`` is malformed."""
    if not isinstance(document, dict):
        raise ValueError("cell result must be a JSON object")
    schema = document.get("schema")
    if not isinstance(schema, str) or not schema.startswith(XP_SCHEMA_PREFIX):
        raise ValueError(
            f"not an experiment cell result: missing/foreign schema marker "
            f"{schema!r} (expected {XP_SCHEMA!r})"
        )
    if schema != XP_SCHEMA:
        raise ValueError(
            f"unsupported cell schema {schema!r}; this build reads {XP_SCHEMA!r}"
        )
    for field in _REQUIRED_FIELDS:
        if field not in document:
            raise ValueError(f"cell result missing required field {field!r}")
    if not isinstance(document["params"], dict):
        raise ValueError("cell result field 'params' must be an object")
    if not isinstance(document["rows"], list) or not all(
        isinstance(row, dict) for row in document["rows"]
    ):
        raise ValueError("cell result field 'rows' must be a list of objects")
    duration = document["duration_s"]
    if isinstance(duration, bool) or not isinstance(duration, (int, float)) or duration < 0:
        raise ValueError(
            f"cell result field 'duration_s' must be a non-negative number, "
            f"got {duration!r}"
        )
    key = document["key"]
    if not isinstance(key, str) or not key:
        raise ValueError(f"cell result field 'key' must be a non-empty string, got {key!r}")


class ResultStore:
    """Filesystem-backed store of one run directory.

    Writes are atomic (temp file + rename), so a run killed mid-write
    never leaves a truncated cell behind — the resume pass either sees a
    complete document or nothing.
    """

    def __init__(self, root: str, create: bool = False) -> None:
        self.root = root
        self._cells_dir = os.path.join(root, "cells")
        if create:
            os.makedirs(self._cells_dir, exist_ok=True)
        elif not os.path.isdir(self._cells_dir):
            raise ValueError(
                f"{root}: not an experiment run directory (no cells/ inside; "
                f"create one with 'repro xp run --out {root} ...')"
            )

    # -- cells --------------------------------------------------------

    def _cell_path(self, key: str) -> str:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid cell key {key!r}")
        return os.path.join(self._cells_dir, f"{key}.json")

    def has(self, key: str) -> bool:
        """True when a completed result for ``key`` is persisted."""
        return os.path.isfile(self._cell_path(key))

    def fresh(self, key: str, fingerprint: Optional[str] = None) -> bool:
        """True when ``key`` is persisted *and* was produced by the same
        code (``fingerprint`` defaults to the current one).  A stale cell
        (parameters match, code changed) must be recomputed."""
        path = self._cell_path(key)
        if not os.path.isfile(path):
            return False
        try:
            document = self.load(key)
        except ValueError:
            return False  # unreadable/truncated: treat as missing
        expected = fingerprint if fingerprint is not None else code_fingerprint()
        return document.get("code_fingerprint") == expected

    def load(self, key: str) -> Dict[str, object]:
        """Read + validate one cell document (one-line errors, like
        :func:`repro.obs.trend.load_bench_snapshot`)."""
        path = self._cell_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ValueError(
                f"{path}: cannot read cell result: {exc.strerror or exc}"
            ) from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: truncated or invalid JSON: {exc}") from exc
        try:
            validate_cell_result(document)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc
        return document

    def save(self, document: Mapping[str, object]) -> str:
        """Validate and atomically persist one cell document."""
        validate_cell_result(document)
        key = str(document["key"])
        path = self._cell_path(key)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)
        return path

    def keys(self) -> List[str]:
        """Persisted cell keys, sorted."""
        try:
            names = os.listdir(self._cells_dir)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    def results(self) -> Iterator[Dict[str, object]]:
        """All persisted cell documents, in sorted key order."""
        for key in self.keys():
            yield self.load(key)

    # -- manifest -----------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "run.json")

    def write_manifest(self, manifest: Mapping[str, object]) -> None:
        document = dict(manifest)
        document.setdefault("schema", XP_SCHEMA)
        document.setdefault("machine", machine_fingerprint())
        document.setdefault("code_fingerprint", code_fingerprint())
        document["updated_unix"] = wall_clock_unix()
        temporary = f"{self.manifest_path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, self.manifest_path)

    def load_manifest(self) -> Optional[Dict[str, object]]:
        """The run manifest, or ``None`` for a store that has no (or a
        corrupt) one — cells remain readable either way."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None
