"""The ``repro xp`` command family: ``run`` / ``report`` / ``diff`` / ``ls``.

Wired into the main :mod:`repro.cli` parser; kept here so the matrix
machinery only imports when an ``xp`` command actually runs.

Exit codes follow ``repro obs diff``: ``xp diff`` exits 1 when any
measurement regressed (unless ``--warn-only``), ``xp run`` exits 1 when
any cell failed or was interrupted, ``xp report``/``xp ls`` exit 1 only
on unreadable inputs.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List

from repro.obs.trend import DEFAULT_THRESHOLD
from repro.xp.stats import DEFAULT_ALPHA

__all__ = ["add_xp_parser", "command_xp"]


def add_xp_parser(commands: argparse._SubParsersAction) -> None:
    """Attach the ``xp`` subcommand tree to the main parser."""
    xp = commands.add_parser(
        "xp",
        help="experiment-matrix orchestration (resumable runs, evidence reports)",
    )
    actions = xp.add_subparsers(dest="xp_command", required=True)

    run = actions.add_parser(
        "run", help="execute a matrix spec into a resumable run directory"
    )
    run.add_argument(
        "--spec",
        default="smoke",
        help="spec file (JSON/TOML) or built-in name: paper, smoke "
        "(default: %(default)s)",
    )
    run.add_argument(
        "--out", "-o", required=True, metavar="DIR", help="run directory (created)"
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker threads; >1 disables per-cell obs capture "
        "(default: %(default)s)",
    )
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override the spec's dataset scale (e.g. 0.05 for smoke runs)",
    )
    run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="stop after executing N cells (simulates an interrupted run; "
        "the rest stay pending for the next invocation)",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even when a fresh cached result exists",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    report = actions.add_parser(
        "report", help="render the evidence report from a run directory"
    )
    report.add_argument("run", help="run directory (from 'repro xp run')")
    report.add_argument(
        "--baseline",
        default="",
        metavar="DIR",
        help="prior run directory to render trend deltas against",
    )
    report.add_argument(
        "--format",
        choices=("markdown", "html"),
        default="markdown",
        help="output rendering (default: %(default)s)",
    )
    report.add_argument(
        "--output", "-o", default="", help="write to this file instead of stdout"
    )
    report.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative median shift tolerated in trend deltas (default: %(default)s)",
    )
    report.add_argument(
        "--alpha",
        type=float,
        default=DEFAULT_ALPHA,
        help="significance level of the annotations (default: %(default)s)",
    )

    diff = actions.add_parser(
        "diff",
        help="compare two run directories "
        "(exit 1 on regression unless --warn-only)",
    )
    diff.add_argument("old", help="baseline run directory")
    diff.add_argument("new", help="candidate run directory")
    diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative median shift tolerated before the IQR and rank-test "
        "rules are consulted (default: %(default)s)",
    )
    diff.add_argument(
        "--alpha",
        type=float,
        default=DEFAULT_ALPHA,
        help="Mann-Whitney significance level (default: %(default)s)",
    )
    diff.add_argument(
        "--format",
        choices=("table", "json", "markdown"),
        default="table",
        help="output rendering (default: %(default)s)",
    )
    diff.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI soft gate)",
    )

    ls = actions.add_parser("ls", help="list the persisted cells of a run directory")
    ls.add_argument("run", help="run directory")


def command_xp(args: argparse.Namespace, out) -> int:
    if args.xp_command == "run":
        return _command_run(args, out)
    if args.xp_command == "report":
        return _command_report(args, out)
    if args.xp_command == "diff":
        return _command_diff(args, out)
    return _command_ls(args, out)


def _command_run(args: argparse.Namespace, out) -> int:
    from repro.xp.runner import run_matrix
    from repro.xp.spec import load_spec
    from repro.xp.store import ResultStore

    spec = load_spec(args.spec)
    if args.scale is not None:
        if args.scale <= 0:
            raise ValueError(f"--scale must be positive, got {args.scale}")
        spec = dataclasses.replace(spec, scale=float(args.scale))
    if args.max_cells is not None and args.max_cells < 1:
        raise ValueError(f"--max-cells must be >= 1, got {args.max_cells}")
    store = ResultStore(args.out, create=True)
    progress = None if args.quiet else (lambda line: print(line, file=out, flush=True))
    print(
        f"matrix {spec.name!r} (hash {spec.spec_hash()}): "
        f"{len(spec.cells())} cells -> {args.out}",
        file=out,
        flush=True,
    )
    summary = run_matrix(
        spec,
        store,
        jobs=args.jobs,
        max_cells=args.max_cells,
        force=args.force,
        progress=progress,
    )
    print(summary.describe(), file=out)
    for label, error in summary.failures:
        print(f"  failed: {label}: {error}", file=sys.stderr)
    return 0 if summary.ok or (summary.deferred and not summary.failures) else 1


def _command_report(args: argparse.Namespace, out) -> int:
    from repro.xp.report import render_html, render_markdown
    from repro.xp.store import ResultStore

    store = ResultStore(args.run)
    baseline = ResultStore(args.baseline) if args.baseline else None
    renderer = render_html if args.format == "html" else render_markdown
    rendered = renderer(
        store, baseline=baseline, threshold=args.threshold, alpha=args.alpha
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} report to {args.output}", file=out)
    else:
        print(rendered, file=out, end="")
    return 0


def _command_diff(args: argparse.Namespace, out) -> int:
    from repro.xp.report import diff_runs, has_regressions, render_diff
    from repro.xp.store import ResultStore

    old = ResultStore(args.old)
    new = ResultStore(args.new)
    diff = diff_runs(old, new, threshold=args.threshold, alpha=args.alpha)
    print(render_diff(diff, args.format), file=out, end="")
    if has_regressions(diff) and not args.warn_only:
        return 1
    return 0


def _command_ls(args: argparse.Namespace, out) -> int:
    from repro.obs.export import _render_table
    from repro.xp.store import ResultStore

    store = ResultStore(args.run)
    manifest = store.load_manifest()
    if manifest:
        spec = manifest.get("spec", {})
        name = spec.get("name", "?") if isinstance(spec, dict) else "?"
        print(
            f"run {args.run}: spec {name!r}, status "
            f"{manifest.get('status', '?')}, code {manifest.get('code_fingerprint', '?')}",
            file=out,
        )
    rows: List[List[str]] = []
    for document in store.results():
        params = document["params"]
        axes = ", ".join(
            f"{key}={value}"
            for key, value in sorted(params.items())  # type: ignore[union-attr]
            if key in ("window_pct", "precision", "method", "seed")
        )
        rows.append(
            [
                str(document["key"]),
                str(document["experiment"]),
                str(params["dataset"]),  # type: ignore[index]
                axes,
                f"{float(document['duration_s']):.2f}",  # type: ignore[arg-type]
                str(len(document["rows"])),  # type: ignore[arg-type]
            ]
        )
    if not rows:
        print("(no cells persisted yet)", file=out)
        return 0
    headers = ("key", "experiment", "dataset", "axes", "duration_s", "rows")
    print("\n".join(_render_table(headers, rows)), file=out)
    print(f"\n{len(rows)} cell(s)", file=out)
    return 0
