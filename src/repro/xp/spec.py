"""Declarative experiment-matrix specs and deterministic cell expansion.

A *matrix spec* declares which slices of the evaluation space to run:

.. code-block:: json

    {
      "name": "smoke",
      "scale": 0.05,
      "blocks": [
        {"experiment": "runtime",
         "datasets": ["enron-sim", "slashdot-sim"],
         "window_percents": [1, 10],
         "precisions": [7],
         "seeds": [1, 2]}
      ]
    }

Each *block* names one experiment (one paper artefact, see
:data:`EXPERIMENTS`) and the axis values to sweep; expansion is the
cartesian product over the axes that experiment actually uses, in
declaration order — deterministic, so a spec always produces the same
cell list and the same cell keys.  Axes an experiment does not use must
not be declared (validation rejects them: a silently-ignored axis is how
grids drift).  Missing applicable axes fall back to the canonical paper
grid (:mod:`repro.analysis.grid`).

Specs load from JSON or TOML files (suffix-dispatch) or by built-in
name: ``paper`` (the full Table 2–6 / Figure 3–5 matrix) and ``smoke``
(a minutes-scale matrix used by CI and the committed ``XP_9`` baseline).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis import grid
from repro.analysis.experiments import ALL_METHODS, EXTRA_METHODS
from repro.datasets.catalog import dataset_names

__all__ = [
    "AXES",
    "ExperimentDef",
    "EXPERIMENTS",
    "Cell",
    "Block",
    "MatrixSpec",
    "spec_from_dict",
    "load_spec",
    "paper_spec",
    "smoke_spec",
    "BUILTIN_SPECS",
]

#: Sweep axes beyond the always-present dataset axis, in expansion order.
AXES = ("window_pct", "precision", "method", "seed")

#: Spec-file keys carrying each axis's value list.
_AXIS_KEYS = {
    "window_pct": "window_percents",
    "precision": "precisions",
    "method": "methods",
    "seed": "seeds",
}

_KNOWN_METHODS = tuple(ALL_METHODS) + tuple(EXTRA_METHODS)


@dataclass(frozen=True)
class ExperimentDef:
    """Declarative description of one runnable experiment (paper artefact)."""

    name: str
    artifact: str
    #: Axes (beyond dataset) whose values vary the computation.
    axes: Tuple[str, ...]
    #: Numeric row columns the report/diff layer compares, with direction
    #: (``"lower"``: smaller is better — timings; ``"higher"``: spread).
    metrics: Tuple[Tuple[str, str], ...]
    #: Non-metric row columns identifying a sub-measurement within a cell
    #: (e.g. ``beta`` for accuracy rows, ``k`` for spread rows).
    group_columns: Tuple[str, ...]
    #: Default datasets when a block omits the ``datasets`` key.
    default_datasets: Tuple[str, ...]
    #: Default method panel (only for experiments with a method axis).
    default_methods: Tuple[str, ...] = ()
    #: Extra tunables with defaults, overridable via a block's ``params``.
    default_params: Mapping[str, object] = field(default_factory=dict)


#: All runnable experiments, keyed by spec name.  ``seed`` doubles as the
#: replicate axis for the timing experiments (same computation, repeated
#: measurement) and as the sketch salt / rng stream elsewhere, so every
#: experiment can carry per-seed replicates for significance testing.
EXPERIMENTS: Dict[str, ExperimentDef] = {
    definition.name: definition
    for definition in (
        ExperimentDef(
            name="datasets",
            artifact="Table 2",
            axes=(),
            metrics=(),
            group_columns=(),
            default_datasets=tuple(dataset_names()),
        ),
        ExperimentDef(
            name="accuracy",
            artifact="Table 3",
            axes=("window_pct", "seed"),
            metrics=(("avg_rel_error", "lower"),),
            group_columns=("beta",),
            default_datasets=grid.ACCURACY_DATASETS,
            default_params={"betas": list(grid.BETAS)},
        ),
        ExperimentDef(
            name="memory",
            artifact="Table 4",
            axes=("window_pct", "precision"),
            metrics=(("megabytes", "lower"),),
            group_columns=(),
            default_datasets=tuple(dataset_names()),
        ),
        ExperimentDef(
            name="runtime",
            artifact="Figure 3",
            axes=("window_pct", "precision", "seed"),
            metrics=(("seconds", "lower"),),
            group_columns=(),
            default_datasets=tuple(dataset_names()),
        ),
        ExperimentDef(
            name="query",
            artifact="Figure 4",
            axes=("precision", "seed"),
            metrics=(("milliseconds", "lower"),),
            group_columns=("num_seeds",),
            default_datasets=grid.QUERY_DATASETS,
            default_params={
                "seed_counts": list(grid.SEED_COUNTS),
                "window_percent": grid.QUERY_WINDOW_PERCENT,
                "repetitions": 3,
            },
        ),
        ExperimentDef(
            name="spread",
            artifact="Figure 5",
            axes=("window_pct", "precision", "method", "seed"),
            metrics=(("spread", "higher"),),
            group_columns=("k", "probability"),
            default_datasets=grid.SPREAD_DATASETS,
            default_methods=tuple(grid.SPREAD_METHODS),
            default_params={
                "ks": list(grid.SPREAD_KS),
                "probabilities": list(grid.SPREAD_PROBABILITIES),
                "runs": 3,
            },
        ),
        ExperimentDef(
            name="overlap",
            artifact="Table 5",
            axes=("precision",),
            metrics=(("common", "higher"),),
            group_columns=("pair",),
            default_datasets=tuple(dataset_names()),
            default_params={
                "window_percents": list(grid.WINDOW_PERCENTS),
                "k": grid.OVERLAP_K,
            },
        ),
        ExperimentDef(
            name="seed_time",
            artifact="Table 6",
            axes=("window_pct", "precision", "method", "seed"),
            metrics=(("seconds", "lower"),),
            group_columns=(),
            default_datasets=grid.SMALL_DATASETS,
            default_methods=tuple(grid.SEED_TIME_METHODS),
            default_params={"k": grid.SEED_TIME_K},
        ),
    )
}


@dataclass(frozen=True)
class Cell:
    """One executable point of the matrix (one persisted result).

    Axes the experiment does not use are ``None`` and excluded from the
    parameter document, so a cell's identity covers exactly the knobs
    that influence its computation.
    """

    experiment: str
    dataset: str
    window_pct: Optional[float]
    precision: Optional[int]
    method: Optional[str]
    seed: Optional[int]
    scale: float
    dataset_rng: int
    extra: Tuple[Tuple[str, object], ...] = ()

    def params(self) -> Dict[str, object]:
        """The cell's full parameter document (stable key order)."""
        doc: Dict[str, object] = {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "scale": self.scale,
            "dataset_rng": self.dataset_rng,
        }
        for axis in AXES:
            value = getattr(self, axis)
            if value is not None:
                doc[axis] = value
        for key, value in self.extra:
            doc[key] = value
        return doc

    def key(self) -> str:
        """Content hash of the parameters — the persisted-cell identity.

        Stable across runs and machines; *not* covering the code
        fingerprint (that is stored alongside the result and checked at
        resume time), so prior-run stores remain matchable for trend
        deltas after the code changes.
        """
        canonical = json.dumps(self.params(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Short human-readable identity for progress lines and reports."""
        parts = [self.experiment, self.dataset]
        if self.window_pct is not None:
            parts.append(f"w{self.window_pct:g}%")
        if self.precision is not None:
            parts.append(f"p{self.precision}")
        if self.method is not None:
            parts.append(self.method)
        if self.seed is not None:
            parts.append(f"s{self.seed}")
        return "/".join(parts)


def _canonical_extra(value: object) -> object:
    """Normalise params values to JSON-stable plain types."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_extra(item) for item in value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise ValueError(f"unsupported params value {value!r} (use numbers/strings/lists)")


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class Block:
    """One experiment plus the axis values it sweeps."""

    experiment: str
    datasets: Tuple[str, ...]
    window_percents: Tuple[float, ...] = ()
    precisions: Tuple[int, ...] = ()
    methods: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"experiment": self.experiment}
        doc["datasets"] = list(self.datasets)
        for axis, key in _AXIS_KEYS.items():
            values = getattr(self, key)
            if values:
                doc[key] = [_jsonable(v) for v in values]
        if self.params:
            doc["params"] = {k: _jsonable(v) for k, v in self.params}
        return doc


@dataclass(frozen=True)
class MatrixSpec:
    """A named, validated experiment matrix."""

    name: str
    blocks: Tuple[Block, ...]
    scale: float = 1.0
    dataset_rng: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scale": self.scale,
            "dataset_rng": self.dataset_rng,
            "blocks": [block.to_dict() for block in self.blocks],
        }

    def spec_hash(self) -> str:
        """Content hash of the whole spec (recorded in the run manifest)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def cells(self) -> List[Cell]:
        """Deterministic expansion: blocks in order, axes nested in
        :data:`AXES` order, values in declaration order."""
        cells: List[Cell] = []
        seen: Dict[str, str] = {}
        for block in self.blocks:
            definition = EXPERIMENTS[block.experiment]
            axis_values: Dict[str, Sequence[object]] = {}
            for axis in AXES:
                if axis in definition.axes:
                    axis_values[axis] = getattr(self, "_axis_values")(block, definition, axis)
                else:
                    axis_values[axis] = (None,)
            extra = _merged_params(block, definition)
            for dataset in block.datasets:
                for window_pct in axis_values["window_pct"]:
                    for precision in axis_values["precision"]:
                        for method in axis_values["method"]:
                            for seed in axis_values["seed"]:
                                cell = Cell(
                                    experiment=block.experiment,
                                    dataset=dataset,
                                    window_pct=window_pct,  # type: ignore[arg-type]
                                    precision=precision,  # type: ignore[arg-type]
                                    method=method,  # type: ignore[arg-type]
                                    seed=seed,  # type: ignore[arg-type]
                                    scale=self.scale,
                                    dataset_rng=self.dataset_rng,
                                    extra=extra,
                                )
                                key = cell.key()
                                previous = seen.get(key)
                                if previous is not None:
                                    raise ValueError(
                                        f"matrix spec {self.name!r}: duplicate cell "
                                        f"{cell.label()} (same parameters declared "
                                        f"twice, first as {previous})"
                                    )
                                seen[key] = cell.label()
                                cells.append(cell)
        return cells

    @staticmethod
    def _axis_values(block: Block, definition: ExperimentDef, axis: str) -> Sequence[object]:
        declared = getattr(block, _AXIS_KEYS[axis])
        if declared:
            return declared
        if axis == "window_pct":
            return grid.WINDOW_PERCENTS
        if axis == "precision":
            return (grid.DEFAULT_PRECISION,)
        if axis == "method":
            return definition.default_methods
        return (0,)  # seed


def _merged_params(block: Block, definition: ExperimentDef) -> Tuple[Tuple[str, object], ...]:
    merged = {key: _canonical_extra(value) for key, value in definition.default_params.items()}
    for key, value in block.params:
        merged[key] = value
    return tuple(sorted(merged.items()))


# ---------------------------------------------------------------------------
# Validation + loading
# ---------------------------------------------------------------------------

def _fail(spec_name: str, message: str) -> ValueError:
    return ValueError(f"matrix spec {spec_name!r}: {message}")


def _validate_block(spec_name: str, index: int, raw: Mapping[str, object]) -> Block:
    where = f"blocks[{index}]"
    if not isinstance(raw, Mapping):
        raise _fail(spec_name, f"{where} must be an object")
    experiment = raw.get("experiment")
    if experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise _fail(
            spec_name,
            f"{where}: unknown experiment {experiment!r}; known: {known}",
        )
    definition = EXPERIMENTS[experiment]
    allowed_keys = {"experiment", "datasets", "params"} | {
        _AXIS_KEYS[axis] for axis in definition.axes
    }
    for key in raw:
        if key in allowed_keys:
            continue
        if key in _AXIS_KEYS.values():
            raise _fail(
                spec_name,
                f"{where} ({experiment}): axis {key!r} does not apply to this "
                f"experiment (it sweeps: "
                f"{', '.join(_AXIS_KEYS[a] for a in definition.axes) or 'datasets only'})",
            )
        raise _fail(spec_name, f"{where} ({experiment}): unknown key {key!r}")

    datasets_raw = raw.get("datasets", list(definition.default_datasets))
    if not isinstance(datasets_raw, Sequence) or isinstance(datasets_raw, str) or not datasets_raw:
        raise _fail(spec_name, f"{where}: 'datasets' must be a non-empty list")
    known_datasets = set(dataset_names())
    for dataset in datasets_raw:
        if dataset not in known_datasets:
            raise _fail(
                spec_name,
                f"{where}: unknown dataset {dataset!r}; known: "
                f"{', '.join(sorted(known_datasets))}",
            )

    def _numbers(key: str, kind: type, check, describe: str) -> Tuple:
        values = raw.get(key, [])
        if not isinstance(values, Sequence) or isinstance(values, str):
            raise _fail(spec_name, f"{where}: {key!r} must be a list")
        out = []
        for value in values:
            if isinstance(value, bool) or not isinstance(value, kind):
                raise _fail(spec_name, f"{where}: {key!r} entry {value!r} must be {describe}")
            if not check(value):
                raise _fail(spec_name, f"{where}: {key!r} entry {value!r} out of range ({describe})")
            out.append(value)
        if len(set(out)) != len(out):
            raise _fail(spec_name, f"{where}: {key!r} has duplicate entries")
        return tuple(out)

    window_percents = _numbers(
        "window_percents", (int, float), lambda v: 0 < v <= 100, "a % in (0, 100]"
    )
    precisions = _numbers("precisions", int, lambda v: 4 <= v <= 16, "an int in [4, 16]")
    seeds = _numbers("seeds", int, lambda v: v >= 0, "a non-negative int")

    methods_raw = raw.get("methods", [])
    if not isinstance(methods_raw, Sequence) or isinstance(methods_raw, str):
        raise _fail(spec_name, f"{where}: 'methods' must be a list")
    for method in methods_raw:
        if method not in _KNOWN_METHODS:
            raise _fail(
                spec_name,
                f"{where}: unknown method {method!r}; known: {', '.join(_KNOWN_METHODS)}",
            )
    if len(set(methods_raw)) != len(methods_raw):
        raise _fail(spec_name, f"{where}: 'methods' has duplicate entries")

    params_raw = raw.get("params", {})
    if not isinstance(params_raw, Mapping):
        raise _fail(spec_name, f"{where}: 'params' must be an object")
    for key in params_raw:
        if key not in definition.default_params:
            known = ", ".join(sorted(definition.default_params)) or "(none)"
            raise _fail(
                spec_name,
                f"{where} ({experiment}): unknown params key {key!r}; known: {known}",
            )
    try:
        params = tuple(
            sorted((str(k), _canonical_extra(v)) for k, v in params_raw.items())
        )
    except ValueError as exc:
        raise _fail(spec_name, f"{where}: {exc}") from exc

    if experiment == "accuracy":
        betas = dict(params).get("betas", dict(_merged_params(Block(experiment, ()), definition)).get("betas"))
        for beta in betas:  # type: ignore[union-attr]
            if not isinstance(beta, int) or beta <= 0 or beta & (beta - 1):
                raise _fail(
                    spec_name,
                    f"{where}: accuracy beta {beta!r} must be a positive power of two",
                )

    return Block(
        experiment=str(experiment),
        datasets=tuple(str(d) for d in datasets_raw),
        window_percents=window_percents,
        precisions=precisions,
        methods=tuple(str(m) for m in methods_raw),
        seeds=seeds,
        params=params,
    )


def spec_from_dict(raw: Mapping[str, object]) -> MatrixSpec:
    """Validate a parsed spec document; every failure is one clear line."""
    if not isinstance(raw, Mapping):
        raise ValueError("matrix spec must be a JSON/TOML object")
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("matrix spec: 'name' must be a non-empty string")
    for key in raw:
        if key not in ("name", "scale", "dataset_rng", "blocks"):
            raise _fail(name, f"unknown key {key!r}")
    scale = raw.get("scale", 1.0)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)) or scale <= 0:
        raise _fail(name, f"'scale' must be a positive number, got {scale!r}")
    dataset_rng = raw.get("dataset_rng", 1)
    if isinstance(dataset_rng, bool) or not isinstance(dataset_rng, int) or dataset_rng < 0:
        raise _fail(name, f"'dataset_rng' must be a non-negative int, got {dataset_rng!r}")
    blocks_raw = raw.get("blocks")
    if not isinstance(blocks_raw, Sequence) or isinstance(blocks_raw, str) or not blocks_raw:
        raise _fail(name, "'blocks' must be a non-empty list")
    blocks = tuple(
        _validate_block(name, index, block) for index, block in enumerate(blocks_raw)
    )
    spec = MatrixSpec(
        name=name, blocks=blocks, scale=float(scale), dataset_rng=dataset_rng
    )
    spec.cells()  # surfaces duplicate-cell declarations at load time
    return spec


def paper_spec(scale: float = 1.0, seeds: Sequence[int] = (0, 1, 2)) -> MatrixSpec:
    """The full paper matrix (Tables 2–6, Figures 3–5) on the shared grid.

    ``seeds`` controls the replicate count of every experiment with a
    seed axis — three replicates is the floor for the rank-based
    significance tests to have any resolution.
    """
    seed_list = list(seeds)
    return spec_from_dict(
        {
            "name": "paper",
            "scale": scale,
            "blocks": [
                {"experiment": "datasets"},
                {
                    "experiment": "accuracy",
                    "window_percents": list(grid.WINDOW_PERCENTS),
                    "seeds": seed_list,
                },
                {
                    "experiment": "memory",
                    "window_percents": list(grid.WINDOW_PERCENTS),
                    "precisions": [grid.DEFAULT_PRECISION],
                },
                {
                    "experiment": "runtime",
                    "window_percents": list(grid.WINDOW_SWEEP),
                    "precisions": [grid.DEFAULT_PRECISION],
                    "seeds": seed_list,
                },
                {
                    "experiment": "query",
                    "precisions": [grid.DEFAULT_PRECISION],
                    "seeds": seed_list,
                },
                {
                    "experiment": "spread",
                    "window_percents": list(grid.SPREAD_WINDOW_PERCENTS),
                    "precisions": [grid.DEFAULT_PRECISION],
                    "methods": list(grid.SPREAD_METHODS),
                    "seeds": seed_list,
                },
                {
                    "experiment": "overlap",
                    "precisions": [grid.DEFAULT_PRECISION],
                },
                {
                    "experiment": "seed_time",
                    "window_percents": [grid.SEED_TIME_WINDOW_PERCENT],
                    "precisions": [grid.DEFAULT_PRECISION],
                    "methods": list(grid.SEED_TIME_METHODS),
                    "seeds": seed_list,
                },
            ],
        }
    )


def smoke_spec() -> MatrixSpec:
    """A minutes-scale matrix for CI and the committed ``XP_9`` baseline:
    two datasets × two windows × one precision, two seeds per cell."""
    return spec_from_dict(
        {
            "name": "smoke",
            "scale": 0.05,
            "blocks": [
                {
                    "experiment": "runtime",
                    "datasets": ["enron-sim", "slashdot-sim"],
                    "window_percents": [1, 10],
                    "precisions": [7],
                    "seeds": [1, 2],
                },
                {
                    "experiment": "spread",
                    "datasets": ["enron-sim", "slashdot-sim"],
                    "window_percents": [1, 10],
                    "precisions": [7],
                    "methods": ["HD", "IRS-approx"],
                    "seeds": [1, 2],
                    "params": {"ks": [2, 4], "probabilities": [1.0], "runs": 2},
                },
            ],
        }
    )


BUILTIN_SPECS = {"paper": paper_spec, "smoke": smoke_spec}


def load_spec(name_or_path: str) -> MatrixSpec:
    """Load a matrix spec by built-in name or file path.

    ``.toml`` files parse via :mod:`tomllib`, everything else as JSON.
    Every failure mode — missing file, bad syntax, invalid matrix — is a
    one-line ``ValueError`` naming the source.
    """
    builtin = BUILTIN_SPECS.get(name_or_path)
    if builtin is not None:
        return builtin()
    path = name_or_path
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise ValueError(
            f"{path}: cannot read matrix spec: {exc.strerror or exc} "
            f"(built-in specs: {', '.join(sorted(BUILTIN_SPECS))})"
        ) from exc
    if path.endswith(".toml"):
        import tomllib

        try:
            raw = tomllib.loads(data.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            raw = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return spec_from_dict(raw)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
