"""Resumable execution of an experiment matrix.

:func:`run_matrix` expands a spec into cells, skips every cell whose
result is already persisted *by the same code* (parameter-hash file
name + code-fingerprint check, see :mod:`repro.xp.store`), and executes
the rest — sequentially by default, or across a thread pool with
``jobs > 1``.  Each executed cell is persisted atomically the moment it
finishes, so a run killed at any point resumes with only the incomplete
cells recomputed.

Observability: with ``capture_obs`` (the default for sequential runs)
each cell executes under an enabled :mod:`repro.obs` registry that is
reset around the cell, so the cell document carries exactly the
counters/spans its own computation produced — the same numbers a
``REPRO_OBS=1`` run of the equivalent benchmark would show.  Parallel
runs skip per-cell capture (the registry is process-global; concurrent
cells would bleed into each other) and record ``obs: null``.

Dataset generation is memoised per ``(name, rng, scale)`` so a matrix
sweeping windows/methods/seeds over the same dataset pays generation
once, exactly like the session-scoped fixtures under ``benchmarks/``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.analysis.experiments import (
    accuracy_experiment,
    dataset_characteristics,
    memory_experiment,
    oracle_query_experiment,
    runtime_experiment,
    seed_overlap_experiment,
    select_seeds,
    spread_comparison,
)
from repro.core.interactions import InteractionLog
from repro.datasets.catalog import load_dataset
from repro.utils.provenance import code_fingerprint
from repro.utils.timer import Timer
from repro.xp.spec import Cell, MatrixSpec
from repro.xp.store import ResultStore, cell_result_document

__all__ = ["RunSummary", "run_matrix", "execute_cell"]


# ---------------------------------------------------------------------------
# Dataset cache
# ---------------------------------------------------------------------------

_DATASET_CACHE: Dict[Tuple[str, int, float], InteractionLog] = {}
_DATASET_LOCK = threading.Lock()


def _dataset(cell: Cell) -> InteractionLog:
    cache_key = (cell.dataset, cell.dataset_rng, cell.scale)
    with _DATASET_LOCK:
        log = _DATASET_CACHE.get(cache_key)
        if log is None:
            log = load_dataset(cell.dataset, rng=cell.dataset_rng, scale=cell.scale)
            _DATASET_CACHE[cache_key] = log
    return log


# ---------------------------------------------------------------------------
# Per-experiment adapters: Cell -> metric rows
# ---------------------------------------------------------------------------
# Each adapter runs exactly one cell's worth of computation and returns
# rows containing only the metric + group columns declared by the
# experiment's ExperimentDef (cell identity lives in the params, not in
# the rows).

def _run_datasets(cell: Cell) -> List[Dict[str, object]]:
    rows = dataset_characteristics([cell.dataset], rng=cell.dataset_rng, scale=cell.scale)
    return [
        {"nodes": row["nodes"], "interactions": row["interactions"], "span_ticks": row["span_ticks"]}
        for row in rows
    ]


def _run_accuracy(cell: Cell) -> List[Dict[str, object]]:
    extra = dict(cell.extra)
    rows = accuracy_experiment(
        _dataset(cell),
        cell.dataset,
        betas=tuple(extra["betas"]),  # type: ignore[arg-type]
        window_percents=(cell.window_pct,),  # type: ignore[arg-type]
        salt=cell.seed or 0,
    )
    return [{"beta": row["beta"], "avg_rel_error": row["avg_rel_error"]} for row in rows]


def _run_memory(cell: Cell) -> List[Dict[str, object]]:
    rows = memory_experiment(
        {cell.dataset: _dataset(cell)},
        window_percents=(cell.window_pct,),  # type: ignore[arg-type]
        precision=cell.precision,  # type: ignore[arg-type]
    )
    (row,) = rows
    (megabytes,) = [value for key, value in row.items() if key.startswith("mb_at_")]
    return [{"megabytes": megabytes}]


def _run_runtime(cell: Cell) -> List[Dict[str, object]]:
    rows = runtime_experiment(
        {cell.dataset: _dataset(cell)},
        window_percents=(cell.window_pct,),  # type: ignore[arg-type]
        precision=cell.precision,  # type: ignore[arg-type]
    )
    return [{"seconds": row["seconds"]} for row in rows]


def _run_query(cell: Cell) -> List[Dict[str, object]]:
    extra = dict(cell.extra)
    rows = oracle_query_experiment(
        _dataset(cell),
        cell.dataset,
        seed_counts=tuple(extra["seed_counts"]),  # type: ignore[arg-type]
        window_percent=float(extra["window_percent"]),  # type: ignore[arg-type]
        precision=cell.precision,  # type: ignore[arg-type]
        repetitions=int(extra["repetitions"]),  # type: ignore[arg-type]
        rng=cell.seed or 0,
    )
    return [
        {"num_seeds": row["num_seeds"], "milliseconds": row["milliseconds"]} for row in rows
    ]


def _run_spread(cell: Cell) -> List[Dict[str, object]]:
    extra = dict(cell.extra)
    rows = spread_comparison(
        _dataset(cell),
        cell.dataset,
        ks=tuple(extra["ks"]),  # type: ignore[arg-type]
        window_percents=(cell.window_pct,),  # type: ignore[arg-type]
        probabilities=tuple(extra["probabilities"]),  # type: ignore[arg-type]
        methods=(cell.method,),  # type: ignore[arg-type]
        runs=int(extra["runs"]),  # type: ignore[arg-type]
        precision=cell.precision,  # type: ignore[arg-type]
        rng=cell.seed or 0,
    )
    return [
        {"k": row["k"], "probability": row["probability"], "spread": row["spread"]}
        for row in rows
    ]


def _run_overlap(cell: Cell) -> List[Dict[str, object]]:
    extra = dict(cell.extra)
    window_percents = tuple(extra["window_percents"])  # type: ignore[arg-type]
    rows = seed_overlap_experiment(
        {cell.dataset: _dataset(cell)},
        window_percents=window_percents,
        k=int(extra["k"]),  # type: ignore[arg-type]
        precision=cell.precision,  # type: ignore[arg-type]
    )
    (row,) = rows
    out = []
    for i, first in enumerate(window_percents):
        for second in window_percents[i + 1 :]:
            out.append(
                {
                    "pair": f"{first:g}-{second:g}",
                    "common": row[f"common_{first:g}pct_{second:g}pct"],
                }
            )
    return out


def _run_seed_time(cell: Cell) -> List[Dict[str, object]]:
    extra = dict(cell.extra)
    log = _dataset(cell)
    window = log.window_from_percent(cell.window_pct)  # type: ignore[arg-type]
    with obs.span("xp.seed_time", dataset=cell.dataset, method=cell.method):
        with Timer() as timer:
            select_seeds(
                log,
                cell.method,  # type: ignore[arg-type]
                int(extra["k"]),  # type: ignore[arg-type]
                window,
                precision=cell.precision or 9,
                rng=cell.seed or 0,
            )
    return [{"seconds": timer.elapsed}]


_ADAPTERS: Dict[str, Callable[[Cell], List[Dict[str, object]]]] = {
    "datasets": _run_datasets,
    "accuracy": _run_accuracy,
    "memory": _run_memory,
    "runtime": _run_runtime,
    "query": _run_query,
    "spread": _run_spread,
    "overlap": _run_overlap,
    "seed_time": _run_seed_time,
}


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------

#: Serialises the obs-captured sections: the registry is process-global,
#: so only one cell may own an enabled+reset registry at a time.
_OBS_CAPTURE_LOCK = threading.Lock()


def _capture_obs(run: Callable[[], List[Dict[str, object]]]):
    """Run ``run()`` under a reset, enabled obs registry; return
    ``(rows, obs_payload)`` where the payload holds the cell's own
    non-zero counters and span count."""
    with _OBS_CAPTURE_LOCK:
        was_enabled = obs.enabled()
        obs.reset()
        obs.enable()
        try:
            rows = run()
            counters: Dict[str, float] = {}
            for sample in obs.snapshot(include_spans=False):
                if sample.get("type") != "counter" or not sample.get("value"):
                    continue
                labels = sample.get("labels", {})
                label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                name = sample["name"] + (f"{{{label_text}}}" if label_text else "")
                counters[name] = float(sample["value"])
            span_count = len(obs.span_records())
        finally:
            obs.reset()
            if not was_enabled:
                obs.disable()
    return rows, {"counters": counters, "span_count": span_count}


def execute_cell(cell: Cell, capture_obs: bool = True) -> Dict[str, object]:
    """Execute one cell and return its (unsaved) ``repro-xp/1`` document."""
    adapter = _ADAPTERS.get(cell.experiment)
    if adapter is None:
        raise ValueError(f"no adapter for experiment {cell.experiment!r}")
    with Timer() as timer:
        if capture_obs:
            rows, obs_payload = _capture_obs(lambda: adapter(cell))
        else:
            rows, obs_payload = adapter(cell), None
    return cell_result_document(
        key=cell.key(),
        experiment=cell.experiment,
        params=cell.params(),
        rows=rows,
        duration_s=timer.elapsed,
        obs=obs_payload,
    )


# ---------------------------------------------------------------------------
# Matrix runner
# ---------------------------------------------------------------------------

@dataclass
class RunSummary:
    """What one :func:`run_matrix` invocation did."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    deferred: int = 0
    interrupted: bool = False
    duration_s: float = 0.0
    failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted and self.deferred == 0

    def describe(self) -> str:
        parts = [
            f"{self.total} cells",
            f"{self.executed} executed",
            f"{self.skipped} skipped (cached)",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.deferred:
            parts.append(f"{self.deferred} deferred (--max-cells)")
        if self.interrupted:
            parts.append("interrupted")
        return ", ".join(parts) + f" in {self.duration_s:.1f}s"


def run_matrix(
    spec: MatrixSpec,
    store: ResultStore,
    jobs: int = 1,
    max_cells: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> RunSummary:
    """Execute every incomplete cell of ``spec`` into ``store``.

    ``jobs`` > 1 runs cells across a thread pool (per-cell obs capture
    is disabled there — see the module docstring).  ``max_cells`` stops
    after executing that many cells, leaving the rest *deferred* — used
    by tests and CI to simulate an interrupted run.  ``force`` recomputes
    every cell even when a fresh persisted result exists.  Ctrl-C
    (``KeyboardInterrupt``) stops cleanly: finished cells stay persisted
    and the summary says so.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    emit = progress or (lambda line: None)
    cells = spec.cells()
    fingerprint = code_fingerprint()
    summary = RunSummary(total=len(cells))
    run_timer = Timer()
    run_timer.__enter__()

    pending: List[Cell] = []
    for cell in cells:
        if not force and store.fresh(cell.key(), fingerprint):
            summary.skipped += 1
            emit(f"[cached] {cell.label()}")
        else:
            pending.append(cell)
    if max_cells is not None and len(pending) > max_cells:
        summary.deferred = len(pending) - max_cells
        pending = pending[:max_cells]

    manifest = {
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "status": "running",
        "cells_total": len(cells),
    }
    store.write_manifest(manifest)

    def _execute(cell: Cell, capture: bool) -> Dict[str, object]:
        document = execute_cell(cell, capture_obs=capture)
        store.save(document)
        return document

    try:
        if jobs == 1:
            for index, cell in enumerate(pending, start=1):
                try:
                    document = _execute(cell, capture=True)
                except KeyboardInterrupt:
                    raise
                except Exception as error:  # noqa: BLE001 - cell isolation
                    summary.failures.append((cell.label(), f"{type(error).__name__}: {error}"))
                    emit(f"[{index}/{len(pending)}] FAIL {cell.label()}: {error}")
                    continue
                summary.executed += 1
                emit(
                    f"[{index}/{len(pending)}] ran {cell.label()} "
                    f"({document['duration_s']:.2f}s, {len(document['rows'])} rows)"  # type: ignore[arg-type]
                )
        else:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(_execute, cell, False): cell for cell in pending
                }
                done = 0
                try:
                    for future in as_completed(futures):
                        cell = futures[future]
                        done += 1
                        try:
                            document = future.result()
                        except Exception as error:  # noqa: BLE001
                            summary.failures.append(
                                (cell.label(), f"{type(error).__name__}: {error}")
                            )
                            emit(f"[{done}/{len(pending)}] FAIL {cell.label()}: {error}")
                            continue
                        summary.executed += 1
                        emit(
                            f"[{done}/{len(pending)}] ran {cell.label()} "
                            f"({document['duration_s']:.2f}s)"  # type: ignore[arg-type]
                        )
                except KeyboardInterrupt:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
    except KeyboardInterrupt:
        summary.interrupted = True

    run_timer.__exit__(None, None, None)
    summary.duration_s = run_timer.elapsed
    if summary.interrupted:
        status = "interrupted"
    elif summary.deferred:
        status = "partial"
    else:
        status = "complete"
    manifest.update(
        {
            "status": status,
            "executed": summary.executed,
            "skipped": summary.skipped,
            "deferred": summary.deferred,
            "failures": [{"cell": label, "error": err} for label, err in summary.failures],
            "duration_s": summary.duration_s,
        }
    )
    store.write_manifest(manifest)
    return summary
