"""Significance testing for experiment-cell comparisons.

Dependency-free implementations of the two tests the evidence reports
need, plus the comparison rule shared with the performance-trend gate:

* :func:`mann_whitney_u` — two-sided Mann-Whitney U (Wilcoxon rank-sum)
  with tie correction and continuity-corrected normal approximation.
  The replicate counts here (3–10 seeds per cell) are far below any
  asymptotic regime, so the p-value is advisory — which is exactly why
  the verdict below *also* requires the median shift and disjoint-IQR
  conditions of :func:`repro.obs.trend.diff_snapshots`.
* :func:`bootstrap_ci` — seeded percentile-bootstrap confidence interval
  of the median (or mean), for annotating point estimates.
* :func:`compare_samples` — the three-part verdict rule: a difference
  counts only when (1) the median moved more than ``threshold``,
  (2) the ``[q1, q3]`` ranges do not overlap (the trend-gate noise
  rule, numerically identical via the shared :func:`quartiles`), and
  (3) Mann-Whitney rejects at ``alpha``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.obs.trend import DEFAULT_THRESHOLD, quartiles

__all__ = [
    "DEFAULT_ALPHA",
    "MannWhitneyResult",
    "rankdata",
    "mann_whitney_u",
    "bootstrap_ci",
    "significance_marker",
    "compare_samples",
]

#: Default two-sided significance level of the report annotations.
DEFAULT_ALPHA = 0.05


def rankdata(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based), ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tail = position
        while (
            tail + 1 < len(order)
            and values[order[tail + 1]] == values[order[position]]
        ):
            tail += 1
        average = (position + tail) / 2.0 + 1.0
        for index in order[position : tail + 1]:
            ranks[index] = average
        position = tail + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann-Whitney U test."""

    u: float  #: U statistic of the *first* sample.
    p_value: float  #: two-sided, normal approximation (1.0 when degenerate)
    n_x: int
    n_y: int

    @property
    def significant(self) -> bool:
        return self.p_value < DEFAULT_ALPHA


def mann_whitney_u(xs: Sequence[float], ys: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U over two independent samples.

    Uses the tie-corrected normal approximation with continuity
    correction.  Degenerate inputs (an empty sample, or all values
    identical) return ``p = 1.0`` rather than raising: a cell comparison
    with no variation carries no evidence either way.
    """
    n_x, n_y = len(xs), len(ys)
    if n_x == 0 or n_y == 0:
        return MannWhitneyResult(u=0.0, p_value=1.0, n_x=n_x, n_y=n_y)
    pooled = [float(v) for v in xs] + [float(v) for v in ys]
    ranks = rankdata(pooled)
    rank_sum_x = sum(ranks[:n_x])
    u_x = rank_sum_x - n_x * (n_x + 1) / 2.0
    mean_u = n_x * n_y / 2.0
    total = n_x + n_y
    # Tie correction on the variance: sum over tie groups of (t^3 - t).
    tie_term = 0.0
    counts: Dict[float, int] = {}
    for value in pooled:
        counts[value] = counts.get(value, 0) + 1
    for count in counts.values():
        tie_term += count**3 - count
    variance = (
        n_x * n_y / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
        if total > 1
        else 0.0
    )
    if variance <= 0.0:
        return MannWhitneyResult(u=u_x, p_value=1.0, n_x=n_x, n_y=n_y)
    z = (abs(u_x - mean_u) - 0.5) / math.sqrt(variance)
    z = max(z, 0.0)
    p = 2.0 * (1.0 - _normal_cdf(z))
    return MannWhitneyResult(u=u_x, p_value=min(max(p, 0.0), 1.0), n_x=n_x, n_y=n_y)


def _normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def bootstrap_ci(
    values: Sequence[float],
    statistic: str = "median",
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI of ``median`` or ``mean``.

    Deterministic for a given ``seed`` so report regeneration is
    reproducible bit for bit.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if statistic == "median":
        stat: Callable[[Sequence[float]], float] = _median
    elif statistic == "mean":
        stat = lambda sample: sum(sample) / len(sample)  # noqa: E731
    else:
        raise ValueError(f"unknown bootstrap statistic {statistic!r}; use median or mean")
    data = [float(v) for v in values]
    if len(data) == 1:
        return (data[0], data[0])
    rng = random.Random(seed)
    n = len(data)
    estimates = []
    for _ in range(resamples):
        sample = [data[rng.randrange(n)] for _ in range(n)]
        estimates.append(stat(sample))
    estimates.sort()
    lower = (1.0 - confidence) / 2.0
    lo = estimates[min(int(lower * resamples), resamples - 1)]
    hi = estimates[min(int((1.0 - lower) * resamples), resamples - 1)]
    return (lo, hi)


def _median(sample: Sequence[float]) -> float:
    ordered = sorted(sample)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


#: Cache of "can an (n_x, n_y, alpha) rank test ever reject?" answers.
_POWER_CACHE: Dict[Tuple[int, int, float], bool] = {}


def _test_is_powered(n_x: int, n_y: int, alpha: float) -> bool:
    """Whether Mann-Whitney at these sample sizes can reject at ``alpha``.

    The best case is two perfectly separated tie-free samples; if even
    that p-value misses ``alpha`` (e.g. 3 vs 3 bottoms out near 0.08),
    requiring rejection would make a regression verdict unreachable, so
    :func:`compare_samples` treats the test as advisory instead.
    """
    cache_key = (n_x, n_y, alpha)
    cached = _POWER_CACHE.get(cache_key)
    if cached is None:
        floor = mann_whitney_u(
            [float(i) for i in range(n_x)],
            [float(n_x + i) for i in range(n_y)],
        ).p_value
        cached = floor < alpha
        _POWER_CACHE[cache_key] = cached
    return cached


def significance_marker(p_value: float) -> str:
    """The usual star notation: ``***`` <0.001, ``**`` <0.01, ``*`` <0.05."""
    if p_value < 0.001:
        return "***"
    if p_value < 0.01:
        return "**"
    if p_value < 0.05:
        return "*"
    return ""


def compare_samples(
    baseline: Sequence[float],
    candidate: Sequence[float],
    direction: str = "lower",
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, object]:
    """Compare two replicate samples of one metric; the trend-delta rule.

    ``direction`` is ``"lower"`` (smaller is better: timings, error,
    memory) or ``"higher"`` (spread, overlap).  The returned dict has the
    two medians, the ratio, the Mann-Whitney ``p_value`` and a
    ``verdict``: ``regression`` / ``improvement`` only when *all three*
    conditions hold (median shift beyond ``threshold``, disjoint IQRs,
    ``p < alpha``); otherwise ``ok``.  When the replicate counts are too
    small for the rank test ever to reject at ``alpha`` (a 3-vs-3 split
    bottoms out near ``p = 0.08``; single replicates are fully
    degenerate), the test becomes advisory and the plain trend rule
    (median shift + disjoint IQRs) decides alone — the recorded
    ``p_value`` still shows what the test said (``1.0`` for single
    replicates), visible in the report as unannotated.
    """
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old = quartiles(baseline)
    new = quartiles(candidate)
    overlap = new["q1"] <= old["q3"] and old["q1"] <= new["q3"]
    old_median, new_median = old["median"], new["median"]
    ratio = new_median / old_median if old_median else math.inf
    test = mann_whitney_u(baseline, candidate)
    multi = test.n_x > 1 and test.n_y > 1
    grew = new_median > old_median * (1.0 + threshold)
    shrank = new_median < old_median * (1.0 - threshold)
    if direction == "higher":
        grew, shrank = shrank, grew  # a drop in spread is the regression
    powered = multi and _test_is_powered(test.n_x, test.n_y, alpha)
    tested_ok = test.p_value < alpha if powered else True
    if grew and not overlap and tested_ok:
        verdict = "regression"
    elif shrank and not overlap and tested_ok:
        verdict = "improvement"
    else:
        verdict = "ok"
    return {
        "old_median": old_median,
        "new_median": new_median,
        "ratio": ratio,
        "iqr_overlap": overlap,
        "p_value": test.p_value if multi else 1.0,
        "n_old": test.n_x,
        "n_new": test.n_y,
        "direction": direction,
        "verdict": verdict,
    }
