"""Baseline ratchet: fail only on *new* violations.

A committed ``lint-baseline.json`` records the violations a tree is
known (and excused) to contain.  ``--baseline FILE`` subtracts them from
a run — CI then fails only when a change *adds* a violation, while the
recorded debt can be burned down independently.  ``--update-baseline``
rewrites the file from the current run, which is also how entries are
retired: re-running after a fix shrinks the baseline (the ratchet only
ever turns one way if updates accompany fixes).

Entries are keyed by ``(path, rule, message)`` with an occurrence count
rather than by line number, so unrelated edits that shift code around do
not invalidate the baseline, while a *second* identical violation in the
same file is still reported as new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Baseline", "BaselineError", "normalize_path"]

_FORMAT_VERSION = 1

Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for malformed baseline files (a usage error, exit code 2)."""


def normalize_path(raw: str) -> str:
    """Repo-relative POSIX form of a violation path, for stable keys."""
    path = Path(raw)
    if path.is_absolute():
        try:
            path = path.relative_to(Path.cwd())
        except ValueError:
            pass
    return str(PurePosixPath(*path.parts))


@dataclass
class Baseline:
    """An accepted-violation multiset keyed by ``(path, rule, message)``."""

    entries: Dict[Key, int]

    @classmethod
    def from_violations(cls, violations: Sequence) -> "Baseline":
        entries: Dict[Key, int] = {}
        for violation in violations:
            key = _key(violation)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"malformed baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "violations" not in payload:
            raise BaselineError(
                f"malformed baseline {path}: expected an object with a "
                "'violations' list"
            )
        entries: Dict[Key, int] = {}
        for record in payload["violations"]:
            try:
                key = (record["path"], record["rule"], record["message"])
                count = int(record.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"malformed baseline {path}: each entry needs "
                    "path/rule/message fields"
                ) from exc
            if count < 1:
                raise BaselineError(
                    f"malformed baseline {path}: counts must be positive"
                )
            entries[key] = entries.get(key, 0) + count
        return cls(entries)

    def save(self, path: Path) -> None:
        records: List[dict] = [
            {"path": key[0], "rule": key[1], "message": key[2], "count": count}
            for key, count in sorted(self.entries.items())
        ]
        payload = {"version": _FORMAT_VERSION, "violations": records}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def apply(
        self, violations: Iterable, active_rules: Optional[Set[str]] = None
    ) -> Tuple[list, int, list]:
        """Split a run into ``(new, suppressed_count, stale_entries)``.

        Up to ``count`` occurrences of each baselined key are suppressed
        (the earliest by line, so a newly added duplicate — later in the
        file — is the one reported).  ``stale_entries`` lists baseline
        keys whose recorded count exceeds what the run produced: fixed
        debt whose entries should be retired with ``--update-baseline``.

        ``active_rules`` names the rule ids this run actually executed
        (``None`` = all): entries for rules outside the set are neither
        spent nor reported stale, so ``--select``/``--ignore`` subset
        runs do not masquerade unexecuted debt as fixed.
        """
        budget = {
            key: count
            for key, count in self.entries.items()
            if active_rules is None or key[1] in active_rules
        }
        new: list = []
        suppressed = 0
        for violation in sorted(violations, key=lambda v: (v.path, v.line, v.col)):
            key = _key(violation)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                new.append(violation)
        stale = [key for key, remaining in sorted(budget.items()) if remaining > 0]
        return new, suppressed, stale


def _key(violation) -> Key:
    return (normalize_path(violation.path), violation.rule_id, violation.message)
