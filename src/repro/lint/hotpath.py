"""Hot-path performance lint: the hot-region model and rules R301–R305.

ROADMAP item 3 names the sketch hot path — dict-of-lists of ``(t, ρ)``
pairs in ``VersionedHLL``/``IRSSummary`` — as the dominant cost of an
approx build (~414k pair inserts per run), and the planned packed-array
rewrite needs a machine-checked map of where allocation and
pointer-chasing happen before anyone touches the layout.  This module
provides that map as lint rules, so hot-path regressions are caught the
same way lock-discipline regressions already are (R201–R205).

Hot-region model
----------------
A function is **hot** when it is reachable, over the project call graph,
from a hot *seed* without passing through a *cold boundary*:

* seeds — functions decorated ``@hotpath`` (re-exported here from
  :mod:`repro.lint.alloctrace`), functions carrying a
  ``# repro-lint: hotpath`` comment on or directly above their ``def``,
  and the call roots of ``benchmarks/bench_*.py`` (what the benchmark
  harness actually drives: a benchmarked classmethod constructor seeds
  its class's public methods, a constructed class seeds the same);
* boundaries — ``@coldpath`` / ``# repro-lint: coldpath`` marks, which
  closure neither enters nor traverses.

Closure uses :meth:`~repro.lint.project.ProjectIndex.call_graph` plus
two local extensions: bound-method aliases (``insert = self._insert``
keeps ``_insert`` hot after the R302 hoist fix) and receiver-typed calls
(``sketch.add_pair(...)`` where ``sketch``'s class is inferable from a
constructor call, an annotated ``self._attr``, or ``.values()`` of an
annotated mapping attribute).

Findings are only *reported* for the hot subsystems the paper's
efficiency claims rest on — ``repro/core`` and ``repro/sketch`` (plus
out-of-package lint fixtures) — though closure traverses everything.

The rules
---------
* **R301** ``hot-loop-allocation`` — per-iteration container allocation:
  ``list(x)``/``.copy()`` copies in loop bodies, aggregation builtins fed
  a throwaway list/set comprehension, and loops over a callee that
  builds and returns a fresh container on every call of an enclosing
  hot loop.
* **R302** ``hot-loop-invariant-lookup`` — an attribute/global lookup
  chain that cannot change during the loop (base never rebound, no
  attribute store on a prefix) evaluated twice per iteration or inside
  a nested loop: hoist it to a local.
* **R303** ``hot-loop-repeated-lookup`` — the same subscript, ``len()``
  or loop-variant attribute computed twice in a loop body with no
  intervening rebind: compute once, reuse.
* **R304** ``hot-tuple-churn`` — ``(t, ρ)``-style tuple pack/unpack in a
  hot region (small-tuple ``for``-unpacking over a stored sequence,
  small tuples packed into containers) where parallel arrays — the
  packed register layout ``serve/snapshot.py`` already serialises
  (``repro-snap/1``) — would avoid per-pair objects.
* **R305** ``hot-linear-membership`` — ``x in some_list`` inside a hot
  loop, or ``x in d.keys()`` anywhere hot.

All five are project-scope rules (they need the call graph), thread
through the baseline ratchet and ``--select``/``--ignore`` prefix
machinery (``R3`` selects the family), and honour the standard
``# repro-lint: disable=R30x`` suppressions.  The runtime cross-check —
confirming a static finding corresponds to measured allocations — lives
in :mod:`repro.lint.alloctrace`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.lint.alloctrace import coldpath, hotpath  # noqa: F401 — re-export
from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _call_dotted_name,
    annotation_class_name,
    mapping_value_class,
    module_name_for_path,
)
from repro.lint.rules import Rule, register

__all__ = [
    "hotpath",
    "coldpath",
    "collect_benchmark_roots",
    "hot_region",
    "HotLoopAllocation",
    "HotLoopInvariantLookup",
    "HotLoopRepeatedLookup",
    "HotTupleChurn",
    "HotLinearMembership",
]

#: Sub-packages whose hot functions are *reported* on (closure still
#: traverses the whole project).  ``None`` (out-of-package fixtures) is
#: always eligible.
HOT_SCOPES = frozenset({"core", "sketch"})

_MARK_RE = re.compile(r"#\s*repro-lint:\s*(hotpath|coldpath)\b")

_COPY_BUILTINS = frozenset({"list", "dict", "set", "tuple", "frozenset"})
_AGG_BUILTINS = frozenset({"sum", "min", "max", "any", "all", "sorted"})
_ITER_WRAPPERS = frozenset({"enumerate", "zip", "reversed"})
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Where R304 points: the packed register layout the snapshot format
#: already uses, and the roadmap item that will adopt it in memory.
_PACKED_LAYOUT_HINT = (
    "parallel arrays — the packed (t, rho) register layout serve/snapshot.py "
    "serialises as repro-snap/1 — avoid per-pair tuple objects (ROADMAP item 3)"
)


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a dotted string when the chain bottoms out in a Name."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and parts:
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _is_name_or_chain(node: ast.AST) -> bool:
    """Name, attribute chain, or a subscript of one — a cheap re-read."""
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.Attribute):
        return _attr_chain(node) is not None
    if isinstance(node, ast.Subscript):
        return _is_name_or_chain(node.value)
    return False


def _expr_label(node: ast.AST) -> str:
    """A short printable form of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        return "<expr>"
    return text if len(text) <= 60 else text[:57] + "..."


def _target_names(target: ast.AST) -> Set[str]:
    """Names bound by a ``for`` target (handles tuple nesting)."""
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _is_small_name_tuple(node: ast.AST) -> bool:
    """A 2–3 element tuple literal of plain names/constants."""
    return (
        isinstance(node, ast.Tuple)
        and 2 <= len(node.elts) <= 3
        and all(isinstance(e, (ast.Name, ast.Constant)) for e in node.elts)
    )


def _is_fresh_container_expr(node: ast.AST) -> bool:
    """An expression that always evaluates to a newly built container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _COPY_BUILTINS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return isinstance(node.left, ast.List) or isinstance(node.right, ast.List)
    return False


def _copy_call_label(node: ast.AST) -> Optional[str]:
    """Label when ``node`` copies an existing container, else ``None``."""
    if not isinstance(node, ast.Call) or node.keywords:
        return None
    func = node.func
    if (
        isinstance(func, ast.Name)
        and func.id in _COPY_BUILTINS
        and len(node.args) == 1
        and _is_name_or_chain(node.args[0])
    ):
        return f"{func.id}({_expr_label(node.args[0])})"
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "copy"
        and not node.args
        and _is_name_or_chain(func.value)
    ):
        return f"{_expr_label(func.value)}.copy()"
    return None


def _kills_in(tree: ast.AST) -> Set[str]:
    """Names (re)bound, deleted, or possibly mutated anywhere in ``tree``."""
    kills: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            kills.add(node.id)
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            base: ast.AST = node
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                kills.add(base.id)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                kills.add(node.func.value.id)
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    kills.add(arg.id)
    return kills


def _child_loops(stmts: Sequence[ast.stmt]) -> List[ast.stmt]:
    """Loops in ``stmts`` whose nearest enclosing loop is the caller's."""
    found: List[ast.stmt] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.For, ast.While)):
            found.append(stmt)
        elif isinstance(stmt, ast.If):
            found.extend(_child_loops(stmt.body))
            found.extend(_child_loops(stmt.orelse))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            found.extend(_child_loops(stmt.body))
        elif isinstance(stmt, ast.Try):
            found.extend(_child_loops(stmt.body))
            for handler in stmt.handlers:
                found.extend(_child_loops(handler.body))
            found.extend(_child_loops(stmt.orelse))
            found.extend(_child_loops(stmt.finalbody))
    return found


class _ChainLoads(ast.NodeVisitor):
    """Collect *maximal* attribute chains read (Load) in an expression.

    Comprehensions, lambdas and nested scopes are not entered — their
    iteration structure is separate from the loop under analysis.
    """

    def __init__(self) -> None:
        self.chains: List[Tuple[str, ast.Attribute]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            chain = _attr_chain(node)
            if chain is not None:
                self.chains.append((chain, node))
                return  # don't record sub-chains of this chain
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return None

    def visit_ListComp(self, node: ast.ListComp) -> None:
        return None

    def visit_SetComp(self, node: ast.SetComp) -> None:
        return None

    def visit_DictComp(self, node: ast.DictComp) -> None:
        return None

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        return None


def _chain_loads(node: ast.AST) -> List[Tuple[str, ast.Attribute]]:
    visitor = _ChainLoads()
    visitor.visit(node)
    return visitor.chains


# ----------------------------------------------------------------------
# Benchmark-root seeding
# ----------------------------------------------------------------------


def _seed_function(fn: FunctionInfo, seeds: Set[str]) -> None:
    seeds.add(fn.qualname)
    owner = fn.owner
    if owner is not None and (fn.is_classmethod or fn.is_staticmethod):
        # A benchmarked constructor classmethod (``ApproxIRS.from_log``)
        # returns an instance the harness keeps driving — its public
        # methods are benchmark roots too.
        _seed_class(owner, seeds)


def _seed_class(cls_info: ClassInfo, seeds: Set[str]) -> None:
    for method in cls_info.methods.values():
        if method.is_public:
            seeds.add(method.qualname)


def _roots_from_bench_module(index: ProjectIndex, info: ModuleInfo) -> Set[str]:
    """Hot seeds a single benchmark module's calls resolve to."""
    seeds: Set[str] = set()
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _call_dotted_name(node)
        if dotted is None:
            continue
        resolved = index.resolve_call(info, dotted, None)
        if resolved is None:
            continue
        kind, target = resolved
        if kind == "function":
            _seed_function(target, seeds)  # type: ignore[arg-type]
        elif kind == "class":
            _seed_class(target, seeds)  # type: ignore[arg-type]
    return seeds


def collect_benchmark_roots(
    index: ProjectIndex, reference_roots: Iterable
) -> Set[str]:
    """Hot-seed qualnames from ``benchmarks/bench_*.py`` next to ``src``.

    The engine calls this after building the project index and stores
    the result on ``index.benchmark_roots``; benchmark files are parsed
    standalone (they are never part of the linted tree) and their calls
    resolved against the index.  Unparsable files are skipped — a broken
    benchmark must not turn linting into a hard failure.
    """
    seeds: Set[str] = set()
    for root in reference_roots:
        root = Path(root)
        if root.name != "benchmarks" or not root.is_dir():
            continue
        for path in sorted(root.glob("bench_*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            info = ModuleInfo(
                name=module_name_for_path(str(path)),
                path=str(path),
                tree=tree,
                subpackage=None,
            )
            index._collect_imports(info)
            seeds |= _roots_from_bench_module(index, info)
    return seeds


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------

#: rule_id, anchoring path, anchoring node, message
_Finding = Tuple[str, str, ast.AST, str]


class _Anchor:
    """The minimal ``ctx`` shim :meth:`Rule.violation` needs."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path


class _HotAnalysis:
    """Hot-region closure plus all R301–R305 findings for one index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._fns: Dict[str, FunctionInfo] = {
            fn.qualname: fn for fn in index.all_functions()
        }
        self._marker_cache: Dict[str, Dict[int, str]] = {}
        self.seeds, self.cold = self._collect_marks()
        self.seeds |= set(getattr(index, "benchmark_roots", ())) & set(self._fns)
        self.seeds |= self._bench_module_seeds()
        self.hot = self._closure()
        self.findings: List[_Finding] = self._compute()

    # -- seeding -------------------------------------------------------
    def _module_markers(self, module: ModuleInfo) -> Dict[int, str]:
        marks = self._marker_cache.get(module.path)
        if marks is None:
            marks = {}
            for lineno, line in enumerate(module.source.splitlines(), start=1):
                match = _MARK_RE.search(line)
                if match:
                    marks[lineno] = match.group(1)
            self._marker_cache[module.path] = marks
        return marks

    def _comment_mark(self, fn: FunctionInfo) -> Optional[str]:
        marks = self._module_markers(fn.module)
        if not marks:
            return None
        node = fn.node
        start = min(
            [dec.lineno for dec in node.decorator_list] + [node.lineno]  # type: ignore[attr-defined]
        )
        for lineno in range(start - 1, node.lineno + 1):  # type: ignore[attr-defined]
            mark = marks.get(lineno)
            if mark is not None:
                return mark
        return None

    def _collect_marks(self) -> Tuple[Set[str], Set[str]]:
        seeds: Set[str] = set()
        cold: Set[str] = set()
        for qualname, fn in self._fns.items():
            decorators = fn.decorators
            mark: Optional[str] = None
            if "coldpath" in decorators:
                mark = "coldpath"
            elif "hotpath" in decorators:
                mark = "hotpath"
            else:
                mark = self._comment_mark(fn)
            if mark == "hotpath":
                seeds.add(qualname)
            elif mark == "coldpath":
                cold.add(qualname)
        return seeds, cold

    def _bench_module_seeds(self) -> Set[str]:
        seeds: Set[str] = set()
        for module in self.index.modules.values():
            if Path(module.path).name.startswith("bench_"):
                seeds |= _roots_from_bench_module(self.index, module)
        return seeds

    # -- type inference ------------------------------------------------
    def _class_named(
        self, module: ModuleInfo, name: Optional[str], owner: Optional[ClassInfo]
    ) -> Optional[ClassInfo]:
        if name is None:
            return None
        resolved = self.index.resolve_call(module, name, owner)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]  # type: ignore[return-value]
        return None

    def _attr_class(
        self, module: ModuleInfo, owner: Optional[ClassInfo], attr: str
    ) -> Optional[ClassInfo]:
        if owner is None:
            return None
        ann = owner.attr_annotations.get(attr)
        if ann is None:
            return None
        return self._class_named(module, annotation_class_name(ann), owner)

    def _attr_value_class(
        self, module: ModuleInfo, owner: Optional[ClassInfo], attr: str
    ) -> Optional[ClassInfo]:
        """Value class of an annotated mapping attribute (``Dict[K, V]``)."""
        if owner is None:
            return None
        ann = owner.attr_annotations.get(attr)
        if ann is None:
            return None
        return self._class_named(module, mapping_value_class(ann), owner)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            return node.attr
        return None

    def _value_class(
        self, fn: FunctionInfo, value: ast.AST
    ) -> Optional[ClassInfo]:
        module, owner = fn.module, fn.owner
        if isinstance(value, ast.Call):
            func = value.func
            # ``x = self._attr.get(...)`` on an annotated mapping attr.
            if isinstance(func, ast.Attribute) and func.attr == "get":
                attr = self._self_attr(func.value)
                if attr is not None:
                    return self._attr_value_class(module, owner, attr)
            dotted = _call_dotted_name(value)
            if dotted is not None:
                resolved = self.index.resolve_call(module, dotted, owner)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]  # type: ignore[return-value]
                if resolved is not None and resolved[0] == "function":
                    # ``sketch = self._sketch_for(node)`` — follow the
                    # callee's return annotation to type the local.
                    callee: FunctionInfo = resolved[1]  # type: ignore[assignment]
                    returns = getattr(callee.node, "returns", None)
                    return self._class_named(
                        callee.module, annotation_class_name(returns), callee.owner
                    )
            return None
        if isinstance(value, ast.Subscript):
            attr = self._self_attr(value.value)
            if attr is not None:
                return self._attr_value_class(module, owner, attr)
            return None
        attr = self._self_attr(value)
        if attr is not None:
            return self._attr_class(module, owner, attr)
        return None

    def _local_classes(self, fn: FunctionInfo) -> Dict[str, ClassInfo]:
        """Local name → class, from the cheap dataflow facts we trust."""
        result: Dict[str, ClassInfo] = {}
        module, owner = fn.module, fn.owner
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                inferred = self._value_class(fn, node.value)
                if inferred is not None:
                    result[node.targets[0].id] = inferred
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                inferred = self._class_named(
                    module, annotation_class_name(node.annotation), owner
                )
                if inferred is not None:
                    result[node.target.id] = inferred
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                it = node.iter
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and it.func.attr == "values"
                ):
                    attr = self._self_attr(it.func.value)
                    if attr is not None:
                        inferred = self._attr_value_class(module, owner, attr)
                        if inferred is not None:
                            result[node.target.id] = inferred
        return result

    def _resolve_call_target(
        self,
        fn: FunctionInfo,
        locals_map: Dict[str, ClassInfo],
        call: ast.Call,
    ) -> Optional[FunctionInfo]:
        """Resolve a call to an indexed function, using receiver types."""
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            cls_info = locals_map.get(receiver)
            if cls_info is not None:
                return cls_info.methods.get(func.attr)
        if isinstance(func, ast.Attribute):
            attr = self._self_attr(func.value)
            if attr is not None:
                cls_info = self._attr_class(fn.module, fn.owner, attr)
                if cls_info is not None:
                    return cls_info.methods.get(func.attr)
        dotted = _call_dotted_name(call)
        if dotted is not None:
            resolved = self.index.resolve_call(fn.module, dotted, fn.owner)
            if resolved is not None and resolved[0] == "function":
                return resolved[1]  # type: ignore[return-value]
        return None

    # -- closure -------------------------------------------------------
    def _extra_edges(self, fn: FunctionInfo) -> Set[str]:
        """Call edges the base graph misses: aliases + typed receivers."""
        edges: Set[str] = set()
        locals_map = self._local_classes(fn)
        owner = fn.owner
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                target = self._resolve_call_target(fn, locals_map, node)
                if target is not None:
                    edges.add(target.qualname)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                # Bound-method alias (``insert = self._insert_pair``) —
                # the hoist R302 recommends must keep its callee hot.
                attr = node.value
                if isinstance(attr.value, ast.Name):
                    receiver = attr.value.id
                    cls_info: Optional[ClassInfo]
                    if receiver in ("self", "cls"):
                        cls_info = owner
                    else:
                        cls_info = locals_map.get(receiver)
                    if cls_info is not None:
                        method = cls_info.methods.get(attr.attr)
                        if method is not None:
                            edges.add(method.qualname)
        return edges

    def _closure(self) -> Set[str]:
        graph = self.index.call_graph()
        for fn in self._fns.values():
            extra = self._extra_edges(fn)
            if extra:
                graph.setdefault(fn.qualname, set()).update(extra)
        hot: Set[str] = set()
        stack = [seed for seed in self.seeds if seed not in self.cold]
        while stack:
            qualname = stack.pop()
            if qualname in hot or qualname in self.cold:
                continue
            if qualname not in self._fns:
                continue
            hot.add(qualname)
            stack.extend(graph.get(qualname, ()))
        return hot

    # -- findings ------------------------------------------------------
    @staticmethod
    def _eligible(module: ModuleInfo) -> bool:
        if Path(module.path).name.startswith("bench_"):
            return False
        if module.subpackage is None:
            return True
        return module.subpackage in HOT_SCOPES

    def _compute(self) -> List[_Finding]:
        findings: List[_Finding] = []
        for qualname in sorted(self.hot):
            fn = self._fns[qualname]
            if not self._eligible(fn.module):
                continue
            locals_map = self._local_classes(fn)
            self._check_r301(fn, locals_map, findings)
            self._check_r302(fn, findings)
            self._check_r303(fn, findings)
            self._check_r304(fn, findings)
            self._check_r305(fn, findings)
        return findings

    def violations(self, rule: Rule) -> list:
        out = []
        for rule_id, path, node, message in self.findings:
            if rule_id != rule.rule_id:
                continue
            out.append(rule.violation(_Anchor(path), node, message))
        return sorted(out, key=lambda v: (v.path, v.line, v.col))

    # -- R301: per-iteration allocation --------------------------------
    def _per_iteration_trees(self, fn: FunctionInfo) -> Iterator[ast.AST]:
        """Subtrees that execute once per iteration of some loop."""
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.While)):
                yield from node.body
            elif isinstance(node, _COMPREHENSIONS):
                if isinstance(node, ast.DictComp):
                    yield node.key
                    yield node.value
                else:
                    yield node.elt
                for gen in node.generators:
                    yield from gen.ifs
                for gen in node.generators[1:]:
                    yield gen.iter

    def _check_r301(
        self,
        fn: FunctionInfo,
        locals_map: Dict[str, ClassInfo],
        findings: List[_Finding],
    ) -> None:
        path = fn.module.path
        seen: Set[Tuple[int, int]] = set()
        # (a) container copies in per-iteration position.
        for tree in self._per_iteration_trees(fn):
            for node in ast.walk(tree):
                label = _copy_call_label(node)
                if label is None:
                    continue
                key = (node.lineno, node.col_offset)  # type: ignore[attr-defined]
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    (
                        "R301",
                        path,
                        node,
                        f"hot loop copies a container every iteration: `{label}` "
                        "allocates per pass — hoist the copy or restructure to "
                        "avoid it",
                    )
                )
        # (b) aggregation builtins fed a throwaway comprehension.
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _AGG_BUILTINS
                and node.args
                and isinstance(node.args[0], (ast.ListComp, ast.SetComp))
            ):
                kind = "list" if isinstance(node.args[0], ast.ListComp) else "set"
                findings.append(
                    (
                        "R301",
                        path,
                        node.args[0],
                        f"`{node.func.id}(...)` in a hot region materialises a "
                        f"throwaway {kind} comprehension — use a generator "
                        "expression",
                    )
                )
        # (c) loop over a fresh-container callee inside an enclosing loop.
        loops = [n for n in ast.walk(fn.node) if isinstance(n, (ast.For, ast.While))]
        nested: Set[int] = set()
        for loop in loops:
            for sub in ast.walk(loop):
                if sub is not loop and isinstance(sub, (ast.For, ast.While)):
                    nested.add(id(sub))
        for loop in loops:
            if id(loop) not in nested or not isinstance(loop, ast.For):
                continue
            for call in self._iter_calls(loop.iter):
                callee = self._resolve_call_target(fn, locals_map, call)
                if callee is not None and self._returns_fresh_container(callee):
                    findings.append(
                        (
                            "R301",
                            path,
                            loop,
                            f"`{_expr_label(call)}` builds and returns a fresh "
                            "container on every call, and this loop runs it once "
                            "per iteration of an enclosing hot loop — reuse a "
                            "preallocated buffer (an `*_into(...)` variant) or "
                            "hoist the call",
                        )
                    )

    @staticmethod
    def _iter_calls(iter_node: ast.AST) -> List[ast.Call]:
        """Candidate callee calls in a ``for`` iterable, unwrapping
        ``enumerate``/``zip``/``reversed``."""
        if not isinstance(iter_node, ast.Call):
            return []
        func = iter_node.func
        if isinstance(func, ast.Name) and func.id in _ITER_WRAPPERS:
            return [arg for arg in iter_node.args if isinstance(arg, ast.Call)]
        return [iter_node]

    def _returns_fresh_container(self, fn_info: FunctionInfo) -> bool:
        """Every return path hands back a container built in this call."""
        fresh_names: Set[str] = set()
        for node in ast.walk(fn_info.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if len(targets) == 1 and isinstance(targets[0], ast.Name) and value is not None:
                if _is_fresh_container_expr(value):
                    fresh_names.add(targets[0].id)
                else:
                    fresh_names.discard(targets[0].id)
        returns = [n for n in ast.walk(fn_info.node) if isinstance(n, ast.Return)]
        if not returns:
            return False
        for ret in returns:
            if ret.value is None:
                return False
            if _is_fresh_container_expr(ret.value):
                continue
            if isinstance(ret.value, ast.Name) and ret.value.id in fresh_names:
                continue
            return False
        return True

    # -- R302: loop-invariant lookups ----------------------------------
    def _check_r302(self, fn: FunctionInfo, findings: List[_Finding]) -> None:
        for loop in _child_loops(fn.node.body):  # type: ignore[attr-defined]
            self._r302_loop(fn, loop, set(), findings)

    def _r302_loop(
        self,
        fn: FunctionInfo,
        loop: ast.stmt,
        inherited: Set[str],
        findings: List[_Finding],
    ) -> None:
        body = loop.body  # type: ignore[attr-defined]
        rebound: Set[str] = set()
        attr_stores: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    rebound.add(node.id)
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    chain = _attr_chain(node)
                    if chain is not None:
                        attr_stores.add(chain)
        loop_targets = (
            _target_names(loop.target) if isinstance(loop, ast.For) else set()
        )

        occurrences: Dict[str, List[Tuple[ast.Attribute, bool]]] = {}

        def record(node: ast.AST, in_nested: bool) -> None:
            for chain, attr_node in _chain_loads(node):
                occurrences.setdefault(chain, []).append((attr_node, in_nested))

        def scan(stmts: Sequence[ast.stmt], in_nested: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.Raise, ast.Assert)) or isinstance(
                    stmt, _SCOPE_STMTS
                ):
                    continue
                if isinstance(stmt, ast.For):
                    record(stmt.iter, in_nested)
                    scan(stmt.body, True)
                    scan(stmt.orelse, True)
                elif isinstance(stmt, ast.While):
                    record(stmt.test, True)
                    scan(stmt.body, True)
                    scan(stmt.orelse, True)
                elif isinstance(stmt, ast.If):
                    record(stmt.test, in_nested)
                    scan(stmt.body, in_nested)
                    scan(stmt.orelse, in_nested)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        record(item.context_expr, in_nested)
                    scan(stmt.body, in_nested)
                elif isinstance(stmt, ast.Try):
                    scan(stmt.body, in_nested)
                    for handler in stmt.handlers:
                        scan(handler.body, in_nested)
                    scan(stmt.orelse, in_nested)
                    scan(stmt.finalbody, in_nested)
                else:
                    record(stmt, in_nested)

        scan(body, False)

        flagged: Set[str] = set()
        for chain, occs in sorted(occurrences.items()):
            if chain in inherited:
                continue
            base = chain.split(".", 1)[0]
            if base in rebound or base in loop_targets:
                continue
            if any(
                chain == store
                or chain.startswith(store + ".")
                or store.startswith(chain + ".")
                for store in attr_stores
            ):
                continue
            count = len(occs)
            in_nested_any = any(flag for _, flag in occs)
            if count < 2 and not in_nested_any:
                continue
            if count >= 2:
                anchor = occs[1][0]
                detail = f"evaluated {count}x per iteration"
            else:
                anchor = occs[0][0]
                detail = "re-evaluated on every iteration of a nested loop"
            flagged.add(chain)
            findings.append(
                (
                    "R302",
                    fn.module.path,
                    anchor,
                    f"loop-invariant lookup `{chain}` is {detail} — hoist it "
                    "to a local before the loop",
                )
            )
        passed_down = inherited | flagged
        for child in _child_loops(body):
            self._r302_loop(fn, child, passed_down, findings)

    # -- R303: repeated identical computations -------------------------
    def _check_r303(self, fn: FunctionInfo, findings: List[_Finding]) -> None:
        seen: Set[str] = set()
        for loop in _child_loops(fn.node.body):  # type: ignore[attr-defined]
            targets = (
                _target_names(loop.target) if isinstance(loop, ast.For) else set()
            )
            self._scan303(fn, loop.body, {}, targets, seen, findings)  # type: ignore[attr-defined]

    class _R303Recorder(ast.NodeVisitor):
        """Collect repeat-lookup candidate keys from one expression."""

        def __init__(self, loop_targets: Set[str]) -> None:
            self.loop_targets = loop_targets
            #: (display, mentioned names, anchoring node)
            self.keys: List[Tuple[str, Set[str], ast.AST]] = []

        def visit_Subscript(self, node: ast.Subscript) -> None:
            if (
                isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and isinstance(node.slice, (ast.Name, ast.Constant))
            ):
                mentions = {node.value.id}
                if isinstance(node.slice, ast.Name):
                    mentions.add(node.slice.id)
                self.keys.append((_expr_label(node), mentions, node))
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
            ):
                name = node.args[0].id
                self.keys.append((f"len({name})", {name}, node))
            self.generic_visit(node)

        def visit_Attribute(self, node: ast.Attribute) -> None:
            if isinstance(node.ctx, ast.Load):
                chain = _attr_chain(node)
                if chain is not None:
                    base = chain.split(".", 1)[0]
                    if base in self.loop_targets:
                        self.keys.append((chain, {base}, node))
                    return
            self.generic_visit(node)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return None

        def visit_ListComp(self, node: ast.ListComp) -> None:
            return None

        def visit_SetComp(self, node: ast.SetComp) -> None:
            return None

        def visit_DictComp(self, node: ast.DictComp) -> None:
            return None

        def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
            return None

    def _record303(
        self,
        fn: FunctionInfo,
        expr: ast.AST,
        counts: Dict[str, Tuple[int, Set[str]]],
        loop_targets: Set[str],
        seen: Set[str],
        findings: List[_Finding],
    ) -> None:
        recorder = self._R303Recorder(loop_targets)
        recorder.visit(expr)
        for display, mentions, node in recorder.keys:
            count, known = counts.get(display, (0, mentions))
            count += 1
            counts[display] = (count, known | mentions)
            if count == 2 and display not in seen:
                seen.add(display)
                findings.append(
                    (
                        "R303",
                        fn.module.path,
                        node,
                        f"`{display}` is computed repeatedly in this hot loop "
                        "body with no intervening rebind — compute it once and "
                        "reuse the local",
                    )
                )

    @staticmethod
    def _apply_kills(
        counts: Dict[str, Tuple[int, Set[str]]], killed: Set[str]
    ) -> None:
        if not killed:
            return
        for display in [
            key for key, (_, mentions) in counts.items() if mentions & killed
        ]:
            del counts[display]

    def _scan303(
        self,
        fn: FunctionInfo,
        stmts: Sequence[ast.stmt],
        counts: Dict[str, Tuple[int, Set[str]]],
        loop_targets: Set[str],
        seen: Set[str],
        findings: List[_Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Raise, ast.Assert)) or isinstance(
                stmt, _SCOPE_STMTS
            ):
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                inner_targets = set(loop_targets)
                if isinstance(stmt, ast.For):
                    self._record303(
                        fn, stmt.iter, counts, loop_targets, seen, findings
                    )
                    inner_targets |= _target_names(stmt.target)
                self._scan303(fn, stmt.body, {}, inner_targets, seen, findings)
                self._scan303(fn, stmt.orelse, {}, inner_targets, seen, findings)
                self._apply_kills(counts, _kills_in(stmt))
            elif isinstance(stmt, ast.If):
                self._record303(fn, stmt.test, counts, loop_targets, seen, findings)
                self._scan303(fn, stmt.body, dict(counts), loop_targets, seen, findings)
                self._scan303(
                    fn, stmt.orelse, dict(counts), loop_targets, seen, findings
                )
                self._apply_kills(counts, _kills_in(stmt))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._record303(
                        fn, item.context_expr, counts, loop_targets, seen, findings
                    )
                self._scan303(fn, stmt.body, counts, loop_targets, seen, findings)
            elif isinstance(stmt, ast.Try):
                self._scan303(fn, stmt.body, counts, loop_targets, seen, findings)
                for handler in stmt.handlers:
                    self._scan303(
                        fn, handler.body, dict(counts), loop_targets, seen, findings
                    )
                self._scan303(
                    fn, stmt.orelse, dict(counts), loop_targets, seen, findings
                )
                self._scan303(fn, stmt.finalbody, counts, loop_targets, seen, findings)
                self._apply_kills(counts, _kills_in(stmt))
            else:
                self._record303(fn, stmt, counts, loop_targets, seen, findings)
                self._apply_kills(counts, _kills_in(stmt))

    # -- R304: tuple pack/unpack churn ---------------------------------
    def _check_r304(self, fn: FunctionInfo, findings: List[_Finding]) -> None:
        path = fn.module.path

        def unpack_finding(target: ast.Tuple, it: ast.AST, anchor: ast.AST) -> None:
            if not (
                2 <= len(target.elts) <= 3
                and all(isinstance(e, ast.Name) for e in target.elts)
            ):
                return
            if not isinstance(it, (ast.Name, ast.Attribute, ast.Subscript)):
                return
            names = ", ".join(e.id for e in target.elts)  # type: ignore[attr-defined]
            findings.append(
                (
                    "R304",
                    path,
                    anchor,
                    f"`for {names} in {_expr_label(it)}` unpacks a stored tuple "
                    f"per element in a hot region; {_PACKED_LAYOUT_HINT}",
                )
            )

        for node in ast.walk(fn.node):
            if isinstance(node, ast.For) and isinstance(node.target, ast.Tuple):
                unpack_finding(node.target, node.iter, node)
            elif isinstance(node, _COMPREHENSIONS):
                for gen in node.generators:
                    if isinstance(gen.target, ast.Tuple):
                        unpack_finding(gen.target, gen.iter, gen.target)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "add", "insert")
            ):
                for arg in node.args:
                    if _is_small_name_tuple(arg):
                        findings.append(
                            (
                                "R304",
                                path,
                                arg,
                                f"packing `{_expr_label(arg)}` into "
                                f"`{_expr_label(node.func)}(...)` builds a tuple "
                                f"per entry in a hot region; {_PACKED_LAYOUT_HINT}",
                            )
                        )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
            ):
                value = node.value
                packed: Optional[ast.AST] = None
                if _is_small_name_tuple(value):
                    packed = value
                elif (
                    isinstance(value, ast.List)
                    and value.elts
                    and all(_is_small_name_tuple(e) for e in value.elts)
                ):
                    packed = value
                if packed is not None:
                    findings.append(
                        (
                            "R304",
                            path,
                            packed,
                            f"storing `{_expr_label(packed)}` through "
                            f"`{_expr_label(node.targets[0])}` packs tuples in a "
                            f"hot region; {_PACKED_LAYOUT_HINT}",
                        )
                    )

    # -- R305: accidental O(n) membership ------------------------------
    def _check_r305(self, fn: FunctionInfo, findings: List[_Finding]) -> None:
        path = fn.module.path
        list_names: Set[str] = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                value = node.value
                is_list = isinstance(value, ast.List) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("list", "sorted")
                )
                if is_list:
                    list_names.add(node.targets[0].id)
                else:
                    list_names.discard(node.targets[0].id)
        per_iteration: Set[int] = set()
        for tree in self._per_iteration_trees(fn):
            for node in ast.walk(tree):
                per_iteration.add(id(node))
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
            ):
                continue
            comparator = node.comparators[0]
            if (
                isinstance(comparator, ast.Call)
                and isinstance(comparator.func, ast.Attribute)
                and comparator.func.attr == "keys"
                and not comparator.args
            ):
                findings.append(
                    (
                        "R305",
                        path,
                        node,
                        f"membership against `{_expr_label(comparator)}` in a hot "
                        "region — test `in` on the mapping itself (O(1)) instead "
                        "of materialising `.keys()`",
                    )
                )
            elif (
                isinstance(comparator, ast.Name)
                and comparator.id in list_names
                and id(node) in per_iteration
            ):
                findings.append(
                    (
                        "R305",
                        path,
                        node,
                        f"`in {comparator.id}` scans a list per iteration of a "
                        "hot loop — build a set once and test membership "
                        "against it",
                    )
                )


_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectIndex, _HotAnalysis]" = WeakKeyDictionary()


def _analysis_for(index: ProjectIndex) -> _HotAnalysis:
    analysis = _ANALYSIS_CACHE.get(index)
    if analysis is None:
        analysis = _HotAnalysis(index)
        _ANALYSIS_CACHE[index] = analysis
    return analysis


def hot_region(index: ProjectIndex) -> Set[str]:
    """Qualnames of the hot region for ``index`` — the test/debug view."""
    return set(_analysis_for(index).hot)


# ----------------------------------------------------------------------
# The registered rules
# ----------------------------------------------------------------------


class _HotPathRule(Rule):
    """Shared dispatch: all R30x findings come from one cached analysis."""

    scopes = None
    project_scope = True

    def check(self, ctx) -> list:
        return []

    def check_project(self, index: ProjectIndex) -> list:
        return _analysis_for(index).violations(self)


@register
class HotLoopAllocation(_HotPathRule):
    rule_id = "R301"
    name = "hot-loop-allocation"
    description = (
        "Per-iteration container allocation in a hot loop: copies, throwaway "
        "comprehension intermediates, or loops over callees that build a "
        "fresh container per call."
    )


@register
class HotLoopInvariantLookup(_HotPathRule):
    rule_id = "R302"
    name = "hot-loop-invariant-lookup"
    description = (
        "Loop-invariant attribute/global lookup re-evaluated on every "
        "iteration of a hot loop (base never rebound inside the loop) — "
        "hoist it to a local."
    )


@register
class HotLoopRepeatedLookup(_HotPathRule):
    rule_id = "R303"
    name = "hot-loop-repeated-lookup"
    description = (
        "Identical subscript, len(), or loop-variant attribute computed "
        "repeatedly in a hot loop body with no intervening rebind."
    )


@register
class HotTupleChurn(_HotPathRule):
    rule_id = "R304"
    name = "hot-tuple-churn"
    description = (
        "(t, rho)-style tuple pack/unpack churn in a hot region where "
        "parallel arrays (the serve/snapshot.py packed register layout) "
        "would serve."
    )


@register
class HotLinearMembership(_HotPathRule):
    rule_id = "R305"
    name = "hot-linear-membership"
    description = (
        "Accidental O(n) membership test in a hot region: `x in some_list` "
        "inside a loop, or `x in d.keys()` anywhere hot."
    )
