"""Repro-specific static analysis and runtime contracts.

Two complementary layers guard the invariants the paper's correctness
rests on but the Python type system never sees:

* a custom AST linter (``python -m repro.lint``) with repro-specific
  rules — see :mod:`repro.lint.rules` for the rule catalogue and
  ``docs/static_analysis.md`` for the rationale behind each rule;
* a runtime contract layer (:mod:`repro.lint.contracts`) whose
  ``@invariant`` decorator self-checks the λ-map and vHLL dominance
  invariants on every update when ``REPRO_DEBUG_CONTRACTS=1`` and is a
  zero-cost identity otherwise;
* a runtime lock sanitizer (:mod:`repro.lint.locktrace`) that traces
  lock acquisition order and hold times when ``REPRO_DEBUG_LOCKS=1`` —
  the dynamic counterpart of the static concurrency rules R201–R205 in
  :mod:`repro.lint.concurrency` — and patches nothing otherwise;
* a runtime allocation sanitizer (:mod:`repro.lint.alloctrace`) that
  measures per-call and per-site allocations in hot regions when
  ``REPRO_DEBUG_ALLOC=1`` — the dynamic counterpart of the hot-path
  performance rules R301–R305 in :mod:`repro.lint.hotpath` — and whose
  ``@hotpath``/``@coldpath`` decorators double as the static pass's
  hot-region seed and boundary marks.

This package deliberately depends on nothing outside the standard
library so that the algorithm modules can import the contract decorators
without creating import cycles.
"""

from __future__ import annotations

# NOTE: the @hotpath/@coldpath decorators are imported from
# repro.lint.alloctrace directly (like @invariant from .contracts) —
# re-exporting them here would shadow the repro.lint.hotpath submodule.
from repro.lint.alloctrace import ALLOC_ENV, allocs_enabled
from repro.lint.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    contracts_enabled,
    invariant,
)
from repro.lint.baseline import Baseline
from repro.lint.engine import (
    LintEngine,
    Violation,
    lint_paths,
    lint_project_sources,
    lint_source,
)
from repro.lint.locktrace import LOCKS_ENV, locks_enabled
from repro.lint.project import ProjectIndex
from repro.lint.reporting import render_json, render_text
from repro.lint.rules import Rule, all_rules, expand_rule_selectors, get_rule
from repro.lint.sarif import render_sarif

__all__ = [
    "ALLOC_ENV",
    "Baseline",
    "CONTRACTS_ENV",
    "ContractViolation",
    "LOCKS_ENV",
    "LintEngine",
    "ProjectIndex",
    "Rule",
    "Violation",
    "all_rules",
    "allocs_enabled",
    "contracts_enabled",
    "expand_rule_selectors",
    "get_rule",
    "invariant",
    "locks_enabled",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
]
