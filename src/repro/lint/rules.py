"""The rule catalogue of the repro linter.

Each rule guards an invariant of the reproduction that ordinary Python
tooling cannot see (see ``docs/static_analysis.md`` for the paper-side
rationale):

* **R001** — no wall-clock time or unseeded randomness inside the
  algorithm packages (``core``, ``sketch``, ``simulation``,
  ``baselines``).  Experiments must be bit-for-bit reproducible from a
  seed; stochastic components go through :mod:`repro.utils.rng`.
* **R002** — public algorithm entry points taking window/precision/
  probability parameters must validate them through
  :mod:`repro.utils.validation` (or forward them to a callee that does).
* **R003** — no in-place mutation of a sequence bound from a sort or
  loader result.  The one-pass algorithms assume time-sorted input;
  mutating a sorted sequence silently breaks Definition 2.
* **R004** — public functions in ``core`` and ``sketch`` carry complete
  type annotations, keeping the mypy gate meaningful.
* **R006** — no direct timing calls (``time.perf_counter()``,
  ``time.time()``, …) outside ``repro/utils/timer.py`` and
  ``repro/obs/``; all measurement flows through the instrumented layer
  so observability sees every clock read.
* **R007** — no mutable default argument values (``{}``, ``[]``,
  ``set()``, comprehensions, …).  Defaults are evaluated once at
  definition time, so a mutable default is shared across every call —
  state leaking between exporter invocations is exactly how label sets
  bleed between metric families.  Use ``None`` and materialise inside.

Rules are plain classes registered in :data:`REGISTRY`; adding a rule is
subclassing :class:`Rule` and decorating with :func:`register`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "select_rules",
    "expand_rule_selectors",
    "NoWallClockOrUnseededRandom",
    "ValidateAlgorithmParameters",
    "NoMutationAfterSort",
    "PublicApiFullyAnnotated",
    "NoDirectTimingCalls",
    "NoMutableDefaultArguments",
]

ALGORITHM_SCOPES = frozenset({"core", "sketch", "simulation", "baselines", "serve"})
TYPED_SCOPES = frozenset({"core", "sketch", "serve"})


class Rule:
    """Base class for lint rules.

    Attributes
    ----------
    rule_id:
        Stable identifier (``R001`` …) used in reports and suppressions.
    scopes:
        ``repro`` sub-packages the rule applies to, or ``None`` for all.
    """

    rule_id: str = "R000"
    name: str = "abstract-rule"
    description: str = ""
    scopes: Optional[frozenset] = None
    #: Project-scope rules run once per lint invocation over the whole
    #: :class:`~repro.lint.project.ProjectIndex` instead of per file; the
    #: engine dispatches them through ``check_project(index)``.
    project_scope: bool = False

    def check(self, ctx) -> list:
        """Return the rule's violations for one :class:`FileContext`."""
        raise NotImplementedError

    def violation(self, ctx, node: ast.AST, message: str):
        """Build a :class:`Violation` anchored at ``node``."""
        from repro.lint.engine import Violation

        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule (as a singleton instance) to the registry."""
    instance = cls()
    if instance.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> list:
    """Every registered rule, ordered by id."""
    return [REGISTRY[key] for key in sorted(REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises ``KeyError`` with the known ids on miss."""
    try:
        return REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(REGISTRY))}"
        ) from None


def select_rules(ids) -> list:
    """The subset of the registry named by ``ids`` (ordered, validated)."""
    return [get_rule(rule_id) for rule_id in sorted(set(ids))]


def expand_rule_selectors(selectors) -> List[str]:
    """Rule ids matching a list of exact-id or prefix selectors.

    ``R201`` matches only itself; ``R2`` matches every registered rule
    whose id starts with ``R2``.  A selector matching nothing raises
    ``KeyError`` (the CLI maps that to a usage error), so typos never
    silently lint with an empty rule set.
    """
    matched: set = set()
    for selector in selectors:
        selector = selector.strip()
        if not selector:
            continue
        if selector in REGISTRY:
            matched.add(selector)
            continue
        prefixed = [rule_id for rule_id in REGISTRY if rule_id.startswith(selector)]
        if not prefixed:
            raise KeyError(
                f"selector {selector!r} matches no rule; known rules: "
                f"{', '.join(sorted(REGISTRY))}"
            )
        matched.update(prefixed)
    return sorted(matched)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    """Dotted name of a call's target, else ``None`` for dynamic calls."""
    return _dotted_name(call.func)


def _walk_functions(tree: ast.Module) -> Iterator:
    """Yield every (sync or async) function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_public_entry_point(func) -> bool:
    """Public API functions plus ``__init__`` (the main constructor gate)."""
    name = func.name
    if name == "__init__":
        return True
    return not name.startswith("_")


# ----------------------------------------------------------------------
# R001 — determinism
# ----------------------------------------------------------------------


@register
class NoWallClockOrUnseededRandom(Rule):
    """Forbid wall-clock reads and unseeded module-level randomness."""

    rule_id = "R001"
    name = "no-wall-clock-or-unseeded-random"
    description = (
        "Algorithm code must not read the wall clock (time.time, datetime.now) "
        "or draw from unseeded module-level RNGs (random.*, argless "
        "np.random.*); use repro.utils.rng helpers so runs are reproducible."
    )
    scopes = ALGORITHM_SCOPES

    #: Calls that read the wall clock — non-deterministic across runs.
    WALL_CLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, ctx) -> list:
        violations = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node)
            if name is None:
                continue
            if name in self.WALL_CLOCK:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"wall-clock call {name}() is non-deterministic; "
                        "pass times in explicitly or use utils.timer for benchmarks",
                    )
                )
            elif self._is_unseeded_random(name, node):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"unseeded randomness {name}(...) breaks reproducibility; "
                        "use repro.utils.rng.resolve_rng / spawn_rng instead",
                    )
                )
        return violations

    @staticmethod
    def _is_unseeded_random(name: str, call: ast.Call) -> bool:
        has_args = bool(call.args or call.keywords)
        if name.startswith("random."):
            # random.Random(seed) constructs a seeded local generator and
            # is fine; everything else on the module draws from (or
            # reseeds) the hidden global state.
            return not (name == "random.Random" and has_args)
        if name.startswith(("np.random.", "numpy.random.")):
            # Seeded construction (np.random.default_rng(seed),
            # np.random.Generator(...), np.random.RandomState(seed)) is
            # deterministic; everything else on the module — and argless
            # constructors — draws from the unseeded global generator.
            short = name.rsplit(".", 1)[-1]
            if short in ("default_rng", "Generator", "RandomState"):
                return not has_args
            return True
        return False


# ----------------------------------------------------------------------
# R002 — parameter validation
# ----------------------------------------------------------------------


@register
class ValidateAlgorithmParameters(Rule):
    """Require repro.utils.validation checks on algorithm parameters."""

    rule_id = "R002"
    name = "validate-algorithm-parameters"
    description = (
        "Public entry points taking window/omega, precision/num_registers or "
        "probability parameters must validate them via repro.utils.validation "
        "(or forward them, by name, to a callee that does)."
    )
    scopes = ALGORITHM_SCOPES

    #: Monitored parameter name → validator names that discharge it.
    MONITORED: Dict[str, frozenset] = {
        "window": frozenset(
            {"require_non_negative", "require_positive", "require_in_range", "require_int"}
        ),
        "omega": frozenset(
            {"require_non_negative", "require_positive", "require_in_range", "require_int"}
        ),
        "precision": frozenset(
            {"require_in_range", "require_power_of_two", "require_positive", "require_int"}
        ),
        "num_registers": frozenset(
            {"require_in_range", "require_power_of_two", "require_positive", "require_int"}
        ),
        "probability": frozenset({"require_probability", "require_in_range"}),
    }

    def check(self, ctx) -> list:
        violations = []
        for func in _walk_functions(ctx.tree):
            if not _is_public_entry_point(func):
                continue
            monitored = [
                arg.arg
                for arg in (func.args.posonlyargs + func.args.args + func.args.kwonlyargs)
                if arg.arg in self.MONITORED
            ]
            if not monitored:
                continue
            validated, forwarded = self._classify_uses(func)
            for param in monitored:
                if param in validated or param in forwarded:
                    continue
                violations.append(
                    self.violation(
                        ctx,
                        func,
                        f"parameter {param!r} of {func.name}() is neither validated "
                        f"via repro.utils.validation ("
                        f"{'/'.join(sorted(self.MONITORED[param]))}) nor forwarded "
                        "to a callee that validates it",
                    )
                )
        return violations

    def _classify_uses(self, func) -> tuple:
        """Partition monitored params into validated / forwarded-by-name."""
        validated: set = set()
        forwarded: set = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            short = callee.rsplit(".", 1)[-1] if callee else ""
            is_validator = short.startswith("require_")
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in self.MONITORED:
                    if is_validator and short in self.MONITORED[arg.id]:
                        validated.add(arg.id)
                    elif not is_validator:
                        forwarded.add(arg.id)
            for keyword in node.keywords:
                value = keyword.value
                if not (isinstance(value, ast.Name) and value.id in self.MONITORED):
                    continue
                if is_validator and short in self.MONITORED[value.id]:
                    validated.add(value.id)
                elif not is_validator and keyword.arg == value.id:
                    forwarded.add(value.id)
        return validated, forwarded


# ----------------------------------------------------------------------
# R003 — sorted sequences stay immutable
# ----------------------------------------------------------------------


@register
class NoMutationAfterSort(Rule):
    """Flag in-place mutation of names bound from sort/loader results."""

    rule_id = "R003"
    name = "no-mutation-after-sort"
    description = (
        "A sequence bound from sorted(...) or a loader must not be mutated "
        "in place (.sort/.append/…, item assignment); the one-pass scans "
        "assume the time order fixed at construction."
    )
    scopes = None  # everywhere under src/repro

    MUTATORS = frozenset(
        {"sort", "append", "extend", "insert", "remove", "pop", "clear", "reverse"}
    )

    #: A call binds a "sorted sequence" when its callee matches one of
    #: these: the builtin sort, any loader (`load_*`), or the log's
    #: order-materialising helpers.
    PRODUCER_NAMES = frozenset({"sorted"})
    PRODUCER_PREFIXES = ("load_",)
    PRODUCER_ATTRS = frozenset({"reverse_time_order", "forward"})

    def check(self, ctx) -> list:
        violations = []
        module_tracked: Dict[str, int] = {}
        self._scan_body(ctx, ctx.tree.body, module_tracked, violations)
        return violations

    # -- producers ------------------------------------------------------
    def _is_producer(self, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = _callee_name(value)
        if name is None:
            return False
        short = name.rsplit(".", 1)[-1]
        return (
            short in self.PRODUCER_NAMES
            or short in self.PRODUCER_ATTRS
            or any(short.startswith(prefix) for prefix in self.PRODUCER_PREFIXES)
        )

    # -- statement-ordered scan ----------------------------------------
    def _scan_body(self, ctx, body, tracked: Dict[str, int], violations: list) -> None:
        for stmt in body:
            self._scan_stmt(ctx, stmt, tracked, violations)

    def _scan_stmt(self, ctx, stmt, tracked: Dict[str, int], violations: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Fresh scope: parameters shadow, module bindings are visible.
            inner = dict(tracked)
            for arg in stmt.args.args + stmt.args.posonlyargs + stmt.args.kwonlyargs:
                inner.pop(arg.arg, None)
            self._scan_body(ctx, stmt.body, inner, violations)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_body(ctx, stmt.body, dict(tracked), violations)
            return
        if isinstance(stmt, ast.Assign):
            self._check_expr(ctx, stmt.value, tracked, violations)
            for target in stmt.targets:
                self._rebind(target, stmt.value, tracked)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._check_expr(ctx, stmt.value, tracked, violations)
            self._rebind(stmt.target, stmt.value, tracked)
            return
        if isinstance(stmt, ast.AugAssign):
            # `log += [...]` mutates/rebinds; treat as a violation for
            # tracked names, then drop tracking.
            if isinstance(stmt.target, ast.Name) and stmt.target.id in tracked:
                violations.append(
                    self.violation(
                        ctx,
                        stmt,
                        f"augmented assignment mutates {stmt.target.id!r}, which was "
                        "bound from a sort/loader result",
                    )
                )
                tracked.pop(stmt.target.id, None)
            self._check_expr(ctx, stmt.value, tracked, violations)
            return
        # Generic statements: check contained expressions, recurse into
        # compound-statement bodies preserving statement order.
        for expr_field in ("value", "test", "iter"):
            value = getattr(stmt, expr_field, None)
            if isinstance(value, ast.expr):
                self._check_expr(ctx, value, tracked, violations)
        for body_field in ("body", "orelse", "finalbody"):
            body = getattr(stmt, body_field, None)
            if isinstance(body, list):
                self._scan_body(ctx, body, tracked, violations)
        for handler in getattr(stmt, "handlers", []) or []:
            self._scan_body(ctx, handler.body, tracked, violations)
        for item in getattr(stmt, "items", []) or []:  # with-statements
            self._check_expr(ctx, item.context_expr, tracked, violations)

    def _rebind(self, target: ast.AST, value: ast.AST, tracked: Dict[str, int]) -> None:
        if isinstance(target, ast.Name):
            if self._is_producer(value):
                tracked[target.id] = getattr(value, "lineno", 0)
            else:
                tracked.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._rebind(element, ast.Constant(value=None), tracked)

    def _check_expr(self, ctx, expr: ast.AST, tracked: Dict[str, int], violations: list) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in tracked
            ):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"{func.value.id}.{func.attr}(...) mutates a sequence bound "
                        f"from a sort/loader result on line "
                        f"{tracked[func.value.id]}; build a new sequence instead",
                    )
                )


# ----------------------------------------------------------------------
# R006 — timing goes through utils.timer / obs
# ----------------------------------------------------------------------


#: ``time``-module attributes that read a clock for measurement.
TIMING_ATTRS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Files allowed to read the clock directly: the instrumented layer
#: itself, plus the runtime lock sanitizer (it timestamps acquire/release
#: pairs and must not route through the layer it instruments).  Matched
#: against normalised path suffixes.
TIMING_EXEMPT_SUFFIXES = (
    "repro/utils/timer.py",
    "utils/timer.py",
    "repro/lint/locktrace.py",
    "lint/locktrace.py",
)


def timing_exempt(path: str, subpackage: Optional[str]) -> bool:
    """True for files that *are* the instrumented timing layer."""
    if subpackage == "obs":
        return True
    normalized = path.replace("\\", "/")
    return normalized.endswith(TIMING_EXEMPT_SUFFIXES)


@register
class NoDirectTimingCalls(Rule):
    """Forbid direct clock reads outside utils.timer and repro.obs."""

    rule_id = "R006"
    name = "no-direct-timing-calls"
    description = (
        "Direct timing calls (time.perf_counter(), time.time(), …) outside "
        "repro/utils/timer.py and repro/obs/ bypass the instrumented layer; "
        "use utils.timer.Timer / time_call or an obs span or histogram."
    )
    scopes = None  # everywhere under src/repro

    def check(self, ctx) -> list:
        if timing_exempt(ctx.path, ctx.subpackage):
            return []
        # Local names bound from `from time import perf_counter [as p]`
        # so bare calls are caught too.
        local_timing: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name in TIMING_ATTRS:
                        local_timing[alias.asname or alias.name] = f"time.{alias.name}"
        violations = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node)
            if name is None:
                continue
            original = None
            if name.startswith("time.") and name[len("time."):] in TIMING_ATTRS:
                original = name
            elif name in local_timing:
                original = local_timing[name]
            if original is not None:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"direct timing call {original}() bypasses the instrumented "
                        "layer; use repro.utils.timer (Timer/time_call) or a "
                        "repro.obs span/histogram instead",
                    )
                )
        return violations


# ----------------------------------------------------------------------
# R004 — complete annotations on the public surface
# ----------------------------------------------------------------------


@register
class PublicApiFullyAnnotated(Rule):
    """Public functions in core/ and sketch/ must be fully annotated."""

    rule_id = "R004"
    name = "public-api-fully-annotated"
    description = (
        "Every public function (and __init__) in repro.core and repro.sketch "
        "must annotate all parameters and its return type so the mypy gate "
        "covers the whole algorithmic surface."
    )
    scopes = TYPED_SCOPES

    def check(self, ctx) -> list:
        violations = []
        for func in _walk_functions(ctx.tree):
            if not _is_public_entry_point(func):
                continue
            missing = self._missing_annotations(func)
            if missing:
                violations.append(
                    self.violation(
                        ctx,
                        func,
                        f"{func.name}() is missing annotations for: "
                        f"{', '.join(missing)}",
                    )
                )
        return violations

    @staticmethod
    def _missing_annotations(func) -> list:
        args = func.args
        ordered = args.posonlyargs + args.args
        missing = [
            arg.arg
            for index, arg in enumerate(ordered)
            if arg.annotation is None
            and not (index == 0 and arg.arg in ("self", "cls"))
        ]
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(f"*{star.arg}")
        if func.returns is None:
            missing.append("return")
        return missing


# ----------------------------------------------------------------------
# R007 — no mutable default argument values
# ----------------------------------------------------------------------


@register
class NoMutableDefaultArguments(Rule):
    """Flag mutable literals and constructor calls used as defaults."""

    rule_id = "R007"
    name = "no-mutable-default-arguments"
    description = (
        "Default values are evaluated once at function definition, so a "
        "mutable default ({}, [], set(), dict(), comprehensions) is shared "
        "across every call; default to None and build the value inside."
    )
    scopes = None  # everywhere under src/repro

    #: Literal/comprehension nodes that always build a fresh mutable value.
    MUTABLE_NODES = (
        ast.Dict,
        ast.List,
        ast.Set,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
    )

    #: Constructor calls that build a mutable container.
    MUTABLE_CALLS = frozenset(
        {
            "dict",
            "list",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.Counter",
            "collections.OrderedDict",
            "defaultdict",
            "deque",
            "Counter",
            "OrderedDict",
        }
    )

    def check(self, ctx) -> list:
        violations = []
        for func in _walk_functions(ctx.tree):
            args = func.args
            defaults = list(args.defaults) + [
                default for default in args.kw_defaults if default is not None
            ]
            for default in defaults:
                described = self._describe_mutable(default)
                if described is not None:
                    violations.append(
                        self.violation(
                            ctx,
                            default,
                            f"mutable default {described} in {func.name}() is "
                            "evaluated once and shared across calls; default "
                            "to None and construct the value in the body",
                        )
                    )
        return violations

    def _describe_mutable(self, default: ast.AST) -> Optional[str]:
        """A short description of the default when mutable, else ``None``."""
        if isinstance(default, ast.Dict):
            return "{...}" if default.keys else "{}"
        if isinstance(default, ast.List):
            return "[...]" if default.elts else "[]"
        if isinstance(default, ast.Set):
            return "{...}"
        if isinstance(default, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "a comprehension"
        if isinstance(default, ast.Call):
            name = _callee_name(default)
            if name is not None and name in self.MUTABLE_CALLS:
                return f"{name}(...)" if (default.args or default.keywords) else f"{name}()"
        return None
