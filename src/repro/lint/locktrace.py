"""Opt-in runtime lock sanitizer — the dynamic half of R201–R205.

The static pass in :mod:`repro.lint.concurrency` proves lock-order
discipline over the code it can resolve; this module watches the locks
that actually run.  When ``REPRO_DEBUG_LOCKS=1`` is set (read once, at
import of :mod:`repro.obs` or via :func:`enable`), the
``threading.Lock`` / ``threading.RLock`` factories are replaced with
ones returning a :class:`TracedLock` wrapper that records, per thread:

* the **acquisition-order graph**: every ordered pair (held → acquired)
  ever observed, with counts.  A new edge whose reverse is already
  reachable is a **lock-order cycle** — the runtime twin of rule R202's
  ABBA finding — and is recorded with both sites and the thread name;
* **long-held locks**: any hold longer than
  ``REPRO_DEBUG_LOCKS_HOLD_SECONDS`` (default 1.0s) — the runtime twin
  of rule R203's blocking-call-under-lock;
* per-site **acquire counts** and maximum hold times.

Locks are identified by their *creation site* (``file:line``), so every
``self._lock = threading.Lock()`` in a class maps all instances onto
one stable key — matching the static rules' per-class-attribute lock
identity.  ``threading.Condition()`` is covered without patching it:
its default lock is an ``RLock()`` resolved through the (patched)
``threading`` namespace at call time, and :class:`TracedLock`
implements the ``_release_save`` / ``_acquire_restore`` / ``_is_owned``
protocol ``Condition.wait`` relies on, recording the release/reacquire
pair around every wait.

Cost model (same bar as :mod:`repro.lint.contracts`): with the flag
unset **nothing is patched** — production code uses the stock C lock
implementations and pays zero overhead, not even an attribute lookup.

A report is dumped at interpreter exit: JSON to the path named by
``REPRO_DEBUG_LOCKS_REPORT`` when set, otherwise a human summary to
stderr only if something suspicious (a cycle or a long hold) was seen::

    REPRO_DEBUG_LOCKS=1 REPRO_DEBUG_LOCKS_REPORT=locktrace.json \
        python -m repro.cli serve-bench ...

This module must stay standard-library only and must not import
``repro.obs`` (obs imports *it* to honour the env flag before creating
the metric-registry locks).
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "LOCKS_ENV",
    "HOLD_ENV",
    "REPORT_ENV",
    "TracedLock",
    "locks_enabled",
    "enable",
    "disable",
    "is_installed",
    "install_from_env",
    "reset",
    "report",
    "dump_report",
]

LOCKS_ENV = "REPRO_DEBUG_LOCKS"
HOLD_ENV = "REPRO_DEBUG_LOCKS_HOLD_SECONDS"
REPORT_ENV = "REPRO_DEBUG_LOCKS_REPORT"

#: The untraced factories, captured before any patching so the tracer's
#: own bookkeeping lock can never trace itself.
_ORIGINAL_LOCK = threading.Lock
_ORIGINAL_RLOCK = threading.RLock

_SKIP_FRAME_FILES = ("locktrace.py", "threading.py")


def locks_enabled() -> bool:
    """True when ``REPRO_DEBUG_LOCKS`` requests runtime lock tracing."""
    return os.environ.get(LOCKS_ENV, "") not in ("", "0")


def _creation_site() -> str:
    """``file:line`` of the nearest caller outside locktrace/threading."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.replace("\\", "/").endswith(_SKIP_FRAME_FILES):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _TraceState:
    """Global acquisition-order graph plus per-thread held stacks."""

    def __init__(self) -> None:
        self._lock = _ORIGINAL_LOCK()
        self._local = threading.local()
        self.hold_threshold = float(os.environ.get(HOLD_ENV, "") or "1.0")
        self.edges: Dict[Tuple[str, str], int] = {}
        self.cycles: List[Dict[str, Any]] = []
        self.long_holds: List[Dict[str, Any]] = []
        self.acquire_counts: Dict[str, int] = {}
        self.max_hold: Dict[str, float] = {}

    # -- per-thread held stack -----------------------------------------
    def _stack(self) -> List[List[Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- events --------------------------------------------------------
    def note_acquire(self, site: str) -> None:
        stack = self._stack()
        held = [entry[0] for entry in stack]
        with self._lock:
            self.acquire_counts[site] = self.acquire_counts.get(site, 0) + 1
            for prior in held:
                if prior == site:
                    continue  # reentrant / same creation site
                edge = (prior, site)
                if edge not in self.edges and self._reachable(site, prior):
                    self.cycles.append(
                        {
                            "locks": [prior, site],
                            "thread": threading.current_thread().name,
                            "held": list(held),
                        }
                    )
                self.edges[edge] = self.edges.get(edge, 0) + 1
        stack.append([site, time.perf_counter()])

    def note_release(self, site: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == site:
                _site, t0 = stack.pop(index)
                duration = time.perf_counter() - t0
                with self._lock:
                    if duration > self.max_hold.get(site, 0.0):
                        self.max_hold[site] = duration
                    if duration >= self.hold_threshold:
                        self.long_holds.append(
                            {
                                "lock": site,
                                "seconds": duration,
                                "thread": threading.current_thread().name,
                            }
                        )
                return
        # A release with no matching acquire on this thread (e.g. a lock
        # handed across threads) — ignore rather than crash the program
        # being traced.

    def _reachable(self, start: str, goal: str) -> bool:
        """DFS over the current edge graph (caller holds ``self._lock``)."""
        adjacency: Dict[str, Set[str]] = {}
        for before, after in self.edges:
            adjacency.setdefault(before, set()).add(after)
        stack = [start]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(adjacency.get(current, ()))
        return False

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "edges": [
                    {"from": before, "to": after, "count": count}
                    for (before, after), count in sorted(self.edges.items())
                ],
                "cycles": [dict(cycle) for cycle in self.cycles],
                "long_holds": [dict(hold) for hold in self.long_holds],
                "acquire_counts": dict(sorted(self.acquire_counts.items())),
                "max_hold_seconds": {
                    site: round(value, 6)
                    for site, value in sorted(self.max_hold.items())
                },
                "hold_threshold_seconds": self.hold_threshold,
            }


_STATE = _TraceState()


class TracedLock:
    """Protocol-compatible wrapper recording acquire/release events.

    Wraps a stock ``Lock`` or ``RLock``; implements the context-manager
    protocol and the private ``Condition`` protocol so it can serve as a
    Condition's underlying lock.
    """

    __slots__ = ("_inner", "site")

    def __init__(self, inner: Any, site: str) -> None:
        self._inner = inner
        self.site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _STATE.note_acquire(self.site)
        return acquired

    def release(self) -> None:
        _STATE.note_release(self.site)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracedLock {self.site} wrapping {self._inner!r}>"

    # -- Condition protocol --------------------------------------------
    def _release_save(self) -> Any:
        _STATE.note_release(self.site)
        inner = self._inner
        if hasattr(inner, "_release_save"):
            return inner._release_save()
        inner.release()  # stock Lock fallback, mirroring Condition
        return None

    def _acquire_restore(self, state: Any) -> None:
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(state)
        else:
            inner.acquire()
        _STATE.note_acquire(self.site)

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        if inner.acquire(False):  # stock Lock fallback, mirroring Condition
            inner.release()
            return False
        return True

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork safety
        self._inner._at_fork_reinit()


def _traced_lock_factory() -> TracedLock:
    return TracedLock(_ORIGINAL_LOCK(), _creation_site())


def _traced_rlock_factory() -> TracedLock:
    return TracedLock(_ORIGINAL_RLOCK(), _creation_site())


_installed = False
_atexit_registered = False


def is_installed() -> bool:
    """True while the traced factories are patched into ``threading``."""
    return _installed


def enable() -> None:
    """Patch the ``threading`` lock factories with traced versions.

    Locks created *before* enabling keep their stock implementation;
    enable tracing as early as possible (the env flag does this before
    :mod:`repro.obs` creates the registry locks).
    """
    global _installed, _atexit_registered
    if _installed:
        return
    threading.Lock = _traced_lock_factory  # type: ignore[assignment]
    threading.RLock = _traced_rlock_factory  # type: ignore[assignment]
    _installed = True
    if not _atexit_registered:
        atexit.register(_exit_report)
        _atexit_registered = True


def disable() -> None:
    """Restore the stock lock factories (existing TracedLocks keep working)."""
    global _installed
    if not _installed:
        return
    threading.Lock = _ORIGINAL_LOCK  # type: ignore[assignment]
    threading.RLock = _ORIGINAL_RLOCK  # type: ignore[assignment]
    _installed = False


def install_from_env() -> bool:
    """Enable tracing iff ``REPRO_DEBUG_LOCKS`` is set; returns installed."""
    if locks_enabled():
        enable()
    return _installed


def reset() -> None:
    """Drop all recorded events (the installed/patched state is kept).

    The hold threshold is re-read from ``REPRO_DEBUG_LOCKS_HOLD_SECONDS``
    so a changed environment takes effect on the fresh state.
    """
    global _STATE
    _STATE = _TraceState()


def report() -> Dict[str, Any]:
    """A snapshot of everything recorded so far (JSON-serialisable)."""
    return _STATE.snapshot()


def dump_report(path: Optional[str] = None) -> Dict[str, Any]:
    """Write the report as JSON to ``path`` (or ``REPRO_DEBUG_LOCKS_REPORT``).

    Returns the report dict either way; with no path it is not written.
    """
    snapshot = report()
    target = path or os.environ.get(REPORT_ENV, "")
    if target:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return snapshot


def _exit_report() -> None:
    """Atexit hook: persist the report; summarise problems on stderr."""
    try:
        snapshot = dump_report()
    except Exception:  # pragma: no cover - never break interpreter exit
        return
    problems = snapshot["cycles"] or snapshot["long_holds"]
    if not problems:
        return
    lines = ["[locktrace] lock sanitizer findings:"]
    for cycle in snapshot["cycles"]:
        lines.append(
            "[locktrace]   lock-order cycle: "
            f"{' -> '.join(cycle['locks'])} (thread {cycle['thread']})"
        )
    for hold in snapshot["long_holds"]:
        lines.append(
            "[locktrace]   long-held lock: "
            f"{hold['lock']} held {hold['seconds']:.3f}s (thread {hold['thread']})"
        )
    print("\n".join(lines), file=sys.stderr)
