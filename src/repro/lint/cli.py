"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit status is 0 when the tree is clean, 1 when violations were found,
and 2 on usage errors (unknown rule id, missing path, syntax error in a
linted file).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.engine import LintEngine
from repro.lint.reporting import render_json, render_text
from repro.lint.rules import all_rules, select_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Repro-specific static analysis for the IRS reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            scopes = ", ".join(sorted(rule.scopes)) if rule.scopes else "all packages"
            print(f"{rule.rule_id} [{rule.name}] ({scopes})")
            print(f"    {rule.description}")
        return 0

    try:
        rules = (
            select_rules(part.strip() for part in options.select.split(","))
            if options.select
            else None
        )
    except KeyError as exc:
        print(f"repro-lint: error: {exc.args[0]}", file=sys.stderr)
        return 2

    engine = LintEngine(rules)
    try:
        violations, files_checked = engine.lint_paths(options.paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: error: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    renderer = render_json if options.format == "json" else render_text
    print(renderer(violations, files_checked))
    return 1 if violations else 0
