"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit status is 0 when the tree is clean (or every violation is covered
by the baseline), 1 when new violations were found, and 2 on usage
errors (unknown rule id, missing path, malformed baseline, syntax error
in a linted file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import LintEngine
from repro.lint.reporting import render_json, render_text
from repro.lint.rules import all_rules, expand_rule_selectors, select_rules
from repro.lint.sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Repro-specific static analysis for the IRS reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 for "
        "GitHub code scanning",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to run (e.g. "
        "'--select R2' runs the whole concurrency pass; default: all rules)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to skip (applied after "
        "--select)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the violations recorded in FILE; only new ones fail "
        "the run (the ratchet)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from this run's violations and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse and lint files with N worker processes (0 = one per "
        "CPU; default: 1, in-process)",
    )
    parser.add_argument(
        "--reference-root",
        action="append",
        metavar="DIR",
        dest="reference_roots",
        help="extra directory whose identifiers count as references for "
        "liveness rules (default: auto-detect tests/benchmarks/examples "
        "next to the linted src tree); may be repeated",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            scopes = ", ".join(sorted(rule.scopes)) if rule.scopes else "all packages"
            kind = "project" if rule.project_scope else "file"
            print(f"{rule.rule_id} [{rule.name}] ({scopes}; {kind}-scope)")
            print(f"    {rule.description}")
        return 0

    if options.update_baseline and not options.baseline:
        print(
            "repro-lint: error: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    if options.jobs < 0:
        print("repro-lint: error: --jobs must be >= 0", file=sys.stderr)
        return 2

    try:
        selected = (
            expand_rule_selectors(options.select.split(","))
            if options.select
            else [rule.rule_id for rule in all_rules()]
        )
        if options.ignore:
            ignored = set(expand_rule_selectors(options.ignore.split(",")))
            selected = [rule_id for rule_id in selected if rule_id not in ignored]
    except KeyError as exc:
        print(f"repro-lint: error: {exc.args[0]}", file=sys.stderr)
        return 2
    if not selected:
        print(
            "repro-lint: error: --select/--ignore left no rules to run",
            file=sys.stderr,
        )
        return 2
    filtered = bool(options.select or options.ignore)
    rules = select_rules(selected) if filtered else None

    engine = LintEngine(
        rules, jobs=options.jobs, reference_roots=options.reference_roots
    )
    try:
        violations, files_checked = engine.lint_paths(options.paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: error: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    if options.baseline and options.update_baseline:
        Baseline.from_violations(violations).save(Path(options.baseline))
        print(
            f"repro-lint: baseline {options.baseline} updated with "
            f"{len(violations)} violation(s) from {files_checked} file(s)"
        )
        return 0

    suppressed = 0
    stale: list = []
    if options.baseline:
        try:
            baseline = Baseline.load(Path(options.baseline))
        except FileNotFoundError:
            print(
                f"repro-lint: error: baseline file not found: {options.baseline} "
                "(create it with --update-baseline)",
                file=sys.stderr,
            )
            return 2
        except BaselineError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        active_rules = set(selected) if filtered else None
        violations, suppressed, stale = baseline.apply(
            violations, active_rules=active_rules
        )

    if options.format == "sarif":
        print(render_sarif(violations, files_checked))
    else:
        renderer = render_json if options.format == "json" else render_text
        print(renderer(violations, files_checked))
        if options.baseline:
            print(
                f"repro-lint: baseline suppressed {suppressed} known violation(s)"
            )
            for path, rule_id, message in stale:
                print(
                    f"repro-lint: stale baseline entry (now fixed — run "
                    f"--update-baseline to retire): {path}: {rule_id} {message}"
                )
    return 1 if violations else 0
