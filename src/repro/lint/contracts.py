"""Runtime invariant contracts for the IRS data structures.

The paper's correctness argument leans on structural invariants that
live between the lines of the code:

* **λ-map minimality/monotonicity** (Definition 4, Lemma 2): the exact
  summary ``ϕω(u)`` maps each reachable node to the *minimal* channel
  end time, and during the reverse scan every stored λ is ≥ the time
  stamp currently being processed.
* **vHLL dominance pruning** (§3.2.2, Lemma 4): every sketch cell is a
  Pareto frontier — ``(t, ρ)`` pairs sorted by strictly increasing ``t``
  *and* strictly increasing ρ.
* **time-sortedness** (Definition 2): interaction sequences are scanned
  in strict time order; channels never chain tied stamps.

This module provides checkers for those invariants plus an
:func:`invariant` decorator that wires them into the update paths of
:class:`~repro.core.summary.IRSSummary`,
:class:`~repro.core.exact.ExactIRS`,
:class:`~repro.sketch.vhll.VersionedHLL` and the streaming indexes.

Cost model
----------
Contracts are **zero-cost unless** the environment variable
``REPRO_DEBUG_CONTRACTS`` is set to a non-empty value other than ``0``
*at import time*: the decorator then returns the wrapped function; with
contracts disabled it returns the original function object unchanged
(identity fast-path), so production call sites pay nothing — not even
an attribute lookup.  Flip the flag on for test and debugging runs::

    REPRO_DEBUG_CONTRACTS=1 python -m pytest

The checkers themselves are plain functions and can always be called
directly, regardless of the flag.

This module must stay dependency-free (standard library only): the
algorithm modules import it, so importing anything from ``repro.core``
or ``repro.sketch`` here would create a cycle.  Checkers therefore duck
-type against the documented internal layout of the structures they
verify.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Iterable, Optional, TypeVar

__all__ = [
    "CONTRACTS_ENV",
    "ContractViolation",
    "contracts_enabled",
    "invariant",
    "check_lambda_map",
    "check_summary_merge_bound",
    "check_vhll_dominance",
    "check_time_sorted",
    "post_summary_add",
    "post_summary_merge",
    "post_vhll_mutation",
    "post_exact_apply",
    "post_approx_apply",
    "post_streaming_process",
]

CONTRACTS_ENV = "REPRO_DEBUG_CONTRACTS"

FuncT = TypeVar("FuncT", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """An internal invariant of an IRS data structure was broken."""


def contracts_enabled() -> bool:
    """True when ``REPRO_DEBUG_CONTRACTS`` requests runtime checking."""
    return os.environ.get(CONTRACTS_ENV, "") not in ("", "0")


#: Snapshot taken at import time; the identity fast-path of
#: :func:`invariant` keys off this so that decorated methods carry no
#: wrapper at all in production processes.
_ENABLED_AT_IMPORT = contracts_enabled()


def invariant(post: Callable[..., None]) -> Callable[[FuncT], FuncT]:
    """Attach a post-condition checker to a method.

    ``post(instance, args, kwargs, result)`` runs after every call when
    contracts are enabled; with contracts disabled the decorator is the
    identity and returns the undecorated function object.
    """
    def decorate(func: FuncT) -> FuncT:
        if not _ENABLED_AT_IMPORT:
            return func

        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            result = func(self, *args, **kwargs)
            post(self, args, kwargs, result)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


# ----------------------------------------------------------------------
# Checkers (callable directly, flag or no flag)
# ----------------------------------------------------------------------


def _fail(message: str) -> None:
    raise ContractViolation(message)


def check_lambda_map(summary: Any, min_time: Optional[int] = None) -> None:
    """Verify an :class:`IRSSummary`'s ``{node → λ}`` map is well-formed.

    Every λ must be a plain int, and — during a reverse scan that has
    advanced to ``min_time`` — no stored channel can end before the
    interaction currently being processed (monotonicity: entries only
    ever shrink towards, never below, the scan frontier).
    """
    entries = summary._entries
    for node, end_time in entries.items():
        if isinstance(end_time, bool) or not isinstance(end_time, int):
            _fail(f"λ-map value for node {node!r} is {end_time!r}, expected int")
        if min_time is not None and end_time < min_time:
            _fail(
                f"λ-map monotonicity violated: entry ({node!r}, {end_time}) ends "
                f"before the scan frontier t={min_time}"
            )


def check_summary_merge_bound(
    summary: Any,
    other: Any,
    start_time: int,
    window: int,
    skip: Any = None,
) -> None:
    """Verify λ-minimality after ``Merge(ϕ(u), ϕ(v), t, ω)``.

    Every entry of ``other`` that fits the duration budget must now be
    present in ``summary`` with an equal-or-smaller λ — the ``↓``
    operator of Lemma 2 keeps per-target minima, so merging can never
    *raise* a λ or drop an in-budget channel.
    """
    deadline = start_time + window
    for node, end_time in other._entries.items():
        if end_time >= deadline or node == skip:
            continue
        kept = summary._entries.get(node)
        if kept is None:
            _fail(
                f"merge dropped in-budget channel to {node!r} "
                f"(λ={end_time}, deadline={deadline})"
            )
        elif kept > end_time:
            _fail(
                f"λ-minimality violated for {node!r}: kept λ={kept} although the "
                f"merged summary offered λ={end_time}"
            )


def check_vhll_dominance(sketch: Any) -> None:
    """Verify every vHLL cell is a dominance-pruned Pareto frontier.

    In list order the ``(t, ρ)`` pairs must have strictly increasing
    ``t`` *and* strictly increasing ρ (paper §3.2.2): equal or decreasing
    values in either coordinate mean a dominated pair survived pruning
    or the time sort broke.
    """
    for index, cell in enumerate(sketch._cells):
        if not cell:
            continue
        previous_t: Optional[int] = None
        previous_r: Optional[int] = None
        for t, r in cell:
            if previous_t is not None:
                if t <= previous_t:
                    _fail(
                        f"vHLL cell {index} is not time-sorted: "
                        f"t={t} follows t={previous_t}"
                    )
                if r <= previous_r:
                    _fail(
                        f"vHLL cell {index} keeps a dominated pair: "
                        f"(t={t}, ρ={r}) after (t={previous_t}, ρ={previous_r})"
                    )
            previous_t, previous_r = t, r


def check_time_sorted(times: Iterable[int], strict: bool = False) -> None:
    """Verify a time sequence is non-decreasing (or strictly increasing)."""
    previous: Optional[int] = None
    for time in times:
        if previous is not None and (time <= previous if strict else time < previous):
            order = "strictly increasing" if strict else "non-decreasing"
            _fail(f"time sequence is not {order}: {time} follows {previous}")
        previous = time


# ----------------------------------------------------------------------
# Post-condition hooks wired into the update paths
# ----------------------------------------------------------------------


def _argument(args: tuple, kwargs: dict, position: int, name: str, default: Any = None) -> Any:
    if position < len(args):
        return args[position]
    return kwargs.get(name, default)


def post_summary_add(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After ``Add(ϕ(u), (v, t))`` the stored λ is minimal w.r.t. ``t``."""
    node = _argument(args, kwargs, 0, "node")
    end_time = _argument(args, kwargs, 1, "end_time")
    kept = self._entries.get(node)
    if kept is None or kept > end_time:
        _fail(
            f"Add(ϕ, ({node!r}, {end_time})) left λ={kept!r}; expected a "
            f"stored minimum ≤ {end_time}"
        )


def post_summary_merge(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After ``Merge(ϕ(u), ϕ(v), t, ω)`` minimality holds for the budget."""
    other = _argument(args, kwargs, 0, "other")
    start_time = _argument(args, kwargs, 1, "start_time")
    window = _argument(args, kwargs, 2, "window")
    skip = _argument(args, kwargs, 3, "skip")
    check_summary_merge_bound(self, other, start_time, window, skip)


def post_vhll_mutation(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After any sketch update, every cell is still a Pareto frontier."""
    check_vhll_dominance(self)


def post_exact_apply(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After ``ExactIRS._apply(u, v, t, ϕ(v))`` (Algorithm 2 body).

    The updated ϕ(u) never contains u itself, all channels end at or
    after the scan frontier t, and the direct hop was recorded with the
    minimal end time λ(u, v) = t.
    """
    source = _argument(args, kwargs, 0, "source")
    target = _argument(args, kwargs, 1, "target")
    time = _argument(args, kwargs, 2, "time")
    summary = self._summaries.get(source)
    if summary is None:
        return
    if source in summary._entries:
        _fail(f"ϕ({source!r}) contains its own node after processing ({source!r}, {target!r}, {time})")
    check_lambda_map(summary, min_time=time)
    if source != target and self._window > 0:
        direct = summary._entries.get(target)
        if direct != time:
            _fail(
                f"direct hop ({source!r}, {target!r}, {time}) recorded λ={direct!r}; "
                f"expected the minimal end time {time}"
            )


def post_approx_apply(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After ``ApproxIRS._apply`` the touched sketch keeps its invariants."""
    source = _argument(args, kwargs, 0, "source")
    time = _argument(args, kwargs, 2, "time")
    sketch = self._sketches.get(source)
    if sketch is None:
        return
    check_vhll_dominance(sketch)
    for index, cell in enumerate(sketch._cells):
        if cell and cell[0][0] < time:
            _fail(
                f"sketch of {source!r} cell {index} holds a pair ending at "
                f"t={cell[0][0]}, before the scan frontier t={time}"
            )


def post_streaming_process(self: Any, args: tuple, kwargs: dict, result: Any) -> None:
    """After a streaming ``process(u, v, t)`` the dual frontier equals −t."""
    time = _argument(args, kwargs, 2, "time")
    dual_last = self._dual._last_time
    if dual_last != -time:
        _fail(
            f"streaming dual frontier is {dual_last!r} after processing t={time}; "
            f"expected {-time}"
        )
