"""SARIF 2.1.0 reporter — the GitHub code-scanning interchange format.

One ``run`` with the full rule catalogue in ``tool.driver.rules`` and
one ``result`` per violation; ``ruleIndex`` links results back to their
rule so the code-scanning UI shows the catalogue description alongside
each finding.  Only fields the 2.1.0 schema marks required (plus the
handful GitHub's ingestion wants) are emitted, keeping the document
small and schema-valid.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.baseline import normalize_path
from repro.lint.rules import all_rules

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "1.0.0"  # tracks the repro package version in pyproject.toml
_INFO_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_anchor(rule) -> str:
    """GitHub heading anchor for the rule's catalogue entry.

    ``docs/static_analysis.md`` titles every rule ``### R301 —
    `hot-loop-allocation```; GitHub slugs that to ``r301--hot-loop-allocation``
    (lowercase, punctuation dropped, spaces to dashes).
    """
    return f"{rule.rule_id.lower()}--{rule.name}"


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
        "helpUri": f"{_INFO_URI}#{_rule_anchor(rule)}",
    }


def render_sarif(violations: Sequence, files_checked: int) -> str:
    """The SARIF 2.1.0 document for one lint run, as a JSON string."""
    rules = all_rules()
    rule_index: Dict[str, int] = {rule.rule_id: i for i, rule in enumerate(rules)}
    results: List[dict] = []
    for violation in sorted(
        violations, key=lambda v: (v.path, v.line, v.col, v.rule_id)
    ):
        result = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": normalize_path(violation.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.rule_id in rule_index:
            result["ruleIndex"] = rule_index[violation.rule_id]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": _INFO_URI,
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
