"""Whole-program index for the cross-module lint rules.

The per-file rules (R001–R004) see one ``ast.Module`` at a time; the
paper's correctness, however, rests on *cross-module* invariants —
window/precision parameters flowing validated through every call path,
vHLL sketches merged only with identical ``(precision, salt)`` (Lemma
2, §3.2), reverse-chronological input feeding Algorithm 2.  This module
builds the shared substrate those rules (R101–R105 in
:mod:`repro.lint.rules_project`) query:

* per-module **symbol tables** (top-level functions, classes, methods);
* the **import graph** (local alias → dotted target);
* a conservative **call graph** via :meth:`ProjectIndex.call_graph`,
  resolving ``name(...)``, ``module.name(...)``, ``self.method(...)``
  and ``cls(...)`` call forms to indexed functions;
* lightweight per-class dataflow facts: ``self._attr = param`` aliases
  recorded in ``__init__`` and ``self._attr: T`` annotations, which let
  R105 normalise constructor configurations and type sketch-valued
  attributes.

Resolution is *conservative*: a callee that cannot be resolved inside
the project is reported as unresolved, and the rules decide whether to
be optimistic (R101 treats unknown forwards as potentially validating,
like R002) or pessimistic (R105 refuses to equate unprovable configs).

The index is path-layout tolerant: module dotted names are derived from
the path components after the last ``src`` segment, and
:meth:`ProjectIndex.resolve_module` falls back to unique-suffix
matching, so fixture trees under ``/tmp`` resolve the same way the real
``src/repro`` tree does.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "BUILTIN_NAMES",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "Resolution",
    "module_name_for_path",
    "annotation_class_name",
    "mapping_value_class",
    "bind_arguments",
    "collect_reference_identifiers",
]

#: Names that resolve to Python builtins — calls to these never validate
#: or launder an algorithm parameter.
BUILTIN_NAMES = frozenset(dir(builtins))

_MAPPING_BASES = frozenset(
    {"Dict", "dict", "Mapping", "MutableMapping", "DefaultDict", "defaultdict"}
)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path.

    Components after the last ``src`` segment form the name
    (``.../src/repro/core/exact.py`` → ``repro.core.exact``); without a
    ``src`` segment every component is kept, which still resolves via
    the suffix matching in :meth:`ProjectIndex.resolve_module`.
    ``__init__.py`` maps to its package.
    """
    parts = [part for part in Path(path).parts if part not in ("/", "\\", "..", ".")]
    if parts and parts[-1].endswith(".py"):
        stem = parts[-1][: -len(".py")]
        parts = parts[:-1] + ([stem] if stem != "__init__" else [])
    if "src" in parts:
        last_src = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last_src + 1 :]
    return ".".join(parts) if parts else "<module>"


def annotation_class_name(ann: Optional[ast.AST]) -> Optional[str]:
    """The class name an annotation expression denotes, if recoverable.

    Handles ``Name``, ``mod.Attr``, string annotations, ``Optional[X]``
    and ``X | None``; containers and unions of two real types yield
    ``None`` (unknown).
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant):
        if ann.value is None:
            return "None"
        if isinstance(ann.value, str):
            try:
                return annotation_class_name(ast.parse(ann.value, mode="eval").body)
            except SyntaxError:
                return None
        return None
    if isinstance(ann, ast.Subscript):
        base = annotation_class_name(ann.value)
        if base == "Optional":
            return annotation_class_name(ann.slice)
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        left = annotation_class_name(ann.left)
        right = annotation_class_name(ann.right)
        if left == "None":
            return right
        if right == "None":
            return left
        return None
    return None


def mapping_value_class(ann: Optional[ast.AST]) -> Optional[str]:
    """Value-type class of a ``Dict[K, V]``-style annotation, if any."""
    if not isinstance(ann, ast.Subscript):
        return None
    base = annotation_class_name(ann.value)
    if base not in _MAPPING_BASES:
        return None
    index = ann.slice
    if isinstance(index, ast.Tuple) and len(index.elts) == 2:
        return annotation_class_name(index.elts[1])
    return None


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    owner: Optional["ClassInfo"] = None

    @property
    def decorators(self) -> Set[str]:
        names = set()
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            parts: List[str] = []
            while isinstance(target, ast.Attribute):
                parts.append(target.attr)
                target = target.value
            if isinstance(target, ast.Name):
                parts.append(target.id)
            if parts:
                names.add(parts[0])  # the attr closest to the function
        return names

    @property
    def is_staticmethod(self) -> bool:
        return "staticmethod" in self.decorators

    @property
    def is_classmethod(self) -> bool:
        return "classmethod" in self.decorators

    @property
    def params(self) -> List[str]:
        """Bindable parameter names, ``self``/``cls`` receiver stripped."""
        args = self.node.args
        ordered = [arg.arg for arg in args.posonlyargs + args.args]
        if self.owner is not None and not self.is_staticmethod and ordered:
            ordered = ordered[1:]
        return ordered + [arg.arg for arg in args.kwonlyargs]

    @property
    def positional_params(self) -> List[str]:
        args = self.node.args
        ordered = [arg.arg for arg in args.posonlyargs + args.args]
        if self.owner is not None and not self.is_staticmethod and ordered:
            ordered = ordered[1:]
        return ordered

    def param_defaults(self) -> Dict[str, ast.AST]:
        """Parameter name → default-value expression, where one exists."""
        args = self.node.args
        ordered = args.posonlyargs + args.args
        defaults: Dict[str, ast.AST] = {}
        for arg, default in zip(reversed(ordered), reversed(args.defaults)):
            defaults[arg.arg] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[arg.arg] = default
        return defaults

    @property
    def is_public(self) -> bool:
        return self.name == "__init__" or not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One indexed class with its direct methods and dataflow facts."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self._attr: T`` (in ``__init__``) and class-body ``attr: T``.
    attr_annotations: Dict[str, ast.AST] = field(default_factory=dict)
    #: ``self._attr = param`` recorded in ``__init__`` — lets R105 treat
    #: ``self._precision`` as an alias of the constructor's ``precision``.
    init_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def init(self) -> Optional[FunctionInfo]:
        return self.methods.get("__init__")


@dataclass
class ModuleInfo:
    """Symbol table and import map for one parsed module."""

    name: str
    path: str
    tree: ast.Module
    subpackage: Optional[str]
    #: Raw source text, when available — lets rules read marker comments
    #: (``# repro-lint: hotpath``) that the AST does not carry.
    source: str = ""
    is_package_init: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    import_bindings: Set[str] = field(default_factory=set)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    exports: List[Tuple[str, ast.AST]] = field(default_factory=list)
    identifiers: Set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        if self.is_package_init:
            return self.name
        return self.name.rpartition(".")[0]


#: A resolved call target: ``("function", FunctionInfo)``,
#: ``("class", ClassInfo)``, ``("builtin", name)``,
#: ``("external", dotted)`` for imports pointing outside the project, or
#: ``None`` when nothing could be determined.
Resolution = Optional[Tuple[str, object]]


class ProjectIndex:
    """Cross-module symbol tables, import graph and call resolution."""

    def __init__(self, external_identifiers: Optional[Set[str]] = None) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Identifiers referenced outside ``src`` (tests, benchmarks,
        #: examples) — external liveness roots for R104.
        self.external_identifiers: Set[str] = set(external_identifiers or ())
        #: Hot-region seed qualnames resolved from ``benchmarks/bench_*.py``
        #: call roots — filled by the engine via
        #: :func:`repro.lint.hotpath.collect_benchmark_roots`.
        self.benchmark_roots: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_contexts(
        cls,
        contexts: Iterable,
        external_identifiers: Optional[Set[str]] = None,
    ) -> "ProjectIndex":
        """Build an index from parsed :class:`~repro.lint.engine.FileContext`s."""
        index = cls(external_identifiers)
        for ctx in contexts:
            index.add_module(
                ctx.path, ctx.tree, ctx.subpackage, getattr(ctx, "source", "")
            )
        return index

    def add_module(
        self,
        path: str,
        tree: ast.Module,
        subpackage: Optional[str],
        source: str = "",
    ) -> ModuleInfo:
        name = module_name_for_path(path)
        info = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            subpackage=subpackage,
            source=source,
            is_package_init=Path(path).name == "__init__.py",
        )
        self._collect_imports(info)
        self._collect_symbols(info)
        self._collect_exports(info)
        self._collect_identifiers(info)
        self.modules[name] = info
        return info

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        info.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}" if base else alias.name
                    info.import_bindings.add(local)

    @staticmethod
    def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        package_parts = info.package.split(".") if info.package else []
        ups = node.level - 1
        if ups:
            package_parts = package_parts[:-ups] if ups <= len(package_parts) else []
        if node.module:
            package_parts = package_parts + node.module.split(".")
        return ".".join(package_parts)

    def _collect_symbols(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{info.name}.{stmt.name}",
                    module=info,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = self._index_class(info, stmt)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cls_info = ClassInfo(
            name=node.name,
            qualname=f"{info.name}.{node.name}",
            module=info,
            node=node,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{cls_info.qualname}.{stmt.name}",
                    module=info,
                    node=stmt,
                    owner=cls_info,
                )
                cls_info.methods[stmt.name] = fn
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls_info.attr_annotations[stmt.target.id] = stmt.annotation
        init = cls_info.methods.get("__init__")
        if init is not None:
            init_params = set(init.params)
            for stmt in ast.walk(init.node):
                if isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls_info.attr_annotations[target.attr] = stmt.annotation
                        if isinstance(stmt.value, ast.Name) and stmt.value.id in init_params:
                            cls_info.init_aliases[target.attr] = stmt.value.id
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(stmt.value, ast.Name)
                        and stmt.value.id in init_params
                    ):
                        cls_info.init_aliases[target.attr] = stmt.value.id
        return cls_info

    def _collect_exports(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
                continue
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        info.exports.append((element.value, element))

    @staticmethod
    def _collect_identifiers_from(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    def _collect_identifiers(self, info: ModuleInfo) -> None:
        info.identifiers = self._collect_identifiers_from(info.tree)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Exact dotted lookup, falling back to a unique-suffix match."""
        found = self.modules.get(dotted)
        if found is not None:
            return found
        suffix = "." + dotted
        matches = [m for name, m in self.modules.items() if name.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        dotted: str,
        enclosing_class: Optional[ClassInfo] = None,
    ) -> Resolution:
        """Resolve a dotted callee name seen inside ``module``."""
        parts = dotted.split(".")
        head = parts[0]
        if head in ("self", "cls") and enclosing_class is not None:
            if len(parts) == 1:
                # ``cls(...)`` in a classmethod constructs the class.
                return ("class", enclosing_class) if head == "cls" else None
            if len(parts) == 2:
                method = enclosing_class.methods.get(parts[1])
                if method is not None:
                    return ("function", method)
            return None
        if len(parts) == 1:
            if head in module.functions:
                return ("function", module.functions[head])
            if head in module.classes:
                return ("class", module.classes[head])
            target = module.imports.get(head)
            if target is not None:
                return self._resolve_qualified(target, fallback_external=target)
            if head in BUILTIN_NAMES:
                return ("builtin", head)
            return None
        target = module.imports.get(head)
        if target is not None:
            qualified = ".".join([target] + parts[1:])
            return self._resolve_qualified(qualified, fallback_external=qualified)
        return self._resolve_qualified(dotted, fallback_external=None)

    def _resolve_qualified(
        self, dotted: str, fallback_external: Optional[str]
    ) -> Resolution:
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = self.resolve_module(".".join(parts[:split]))
            if mod is None:
                continue
            rest = parts[split:]
            symbol = rest[0]
            if symbol in mod.functions and len(rest) == 1:
                return ("function", mod.functions[symbol])
            if symbol in mod.classes:
                if len(rest) == 1:
                    return ("class", mod.classes[symbol])
                if len(rest) == 2:
                    method = mod.classes[symbol].methods.get(rest[1])
                    if method is not None:
                        return ("function", method)
                return None
            # The module resolved but the symbol is not indexed there —
            # possibly re-exported; follow one import hop.
            onward = mod.imports.get(symbol)
            if onward is not None and len(rest) <= 2:
                tail = rest[1:]
                return self._resolve_qualified(
                    ".".join([onward] + tail), fallback_external=None
                )
            return None
        mod = self.resolve_module(dotted)
        if mod is not None:
            return None  # a bare module object is not callable
        if fallback_external is not None:
            head = fallback_external.split(".")[0]
            if head not in {name.split(".")[0] for name in self.modules}:
                return ("external", fallback_external)
        return None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def all_functions(self) -> Iterable[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()
            for cls_info in module.classes.values():
                yield from cls_info.methods.values()

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        for fn in self.all_functions():
            if fn.qualname == qualname or fn.qualname.endswith("." + qualname):
                return fn
        return None

    def call_graph(self) -> Dict[str, Set[str]]:
        """``caller qualname → {resolved callee qualnames}``."""
        graph: Dict[str, Set[str]] = {}
        for fn in self.all_functions():
            edges: Set[str] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _call_dotted_name(node)
                if dotted is None:
                    continue
                resolved = self.resolve_call(fn.module, dotted, fn.owner)
                if resolved is None:
                    continue
                kind, target = resolved
                if kind == "function":
                    edges.add(target.qualname)
                elif kind == "class":
                    init = target.init
                    edges.add(init.qualname if init is not None else target.qualname)
            graph[fn.qualname] = edges
        return graph


def _call_dotted_name(call: ast.Call) -> Optional[str]:
    parts: List[str] = []
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def bind_arguments(fn: FunctionInfo, call: ast.Call) -> Optional[Dict[str, ast.AST]]:
    """Map a call's argument expressions onto ``fn``'s parameter names.

    Returns ``None`` when the binding cannot be determined statically
    (``*args`` / ``**kwargs`` in the call, or arity overflow without a
    vararg on the callee).
    """
    binding: Dict[str, ast.AST] = {}
    positional = fn.positional_params
    has_vararg = fn.node.args.vararg is not None
    has_kwarg = fn.node.args.kwarg is not None
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return None
        if index < len(positional):
            binding[positional[index]] = arg
        elif not has_vararg:
            return None
    valid_keywords = set(fn.params)
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs expansion at the call site
            return None
        if keyword.arg in valid_keywords:
            binding[keyword.arg] = keyword.value
        elif not has_kwarg:
            return None
    return binding


def collect_reference_identifiers(roots: Iterable[Path]) -> Set[str]:
    """Identifiers used anywhere under external reference roots.

    Feeds R104's liveness: a public export referenced from ``tests/``,
    ``benchmarks/`` or ``examples/`` is alive even when no ``src`` module
    imports it.  Unparsable files are skipped — reference roots must
    never turn a lint run into a hard failure.
    """
    names: Set[str] = set()
    for root in roots:
        root = Path(root)
        if not root.exists():
            continue
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            try:
                tree = ast.parse(file.read_text(encoding="utf-8"), filename=str(file))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            names |= ProjectIndex._collect_identifiers_from(tree)
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        # ``import X as Y`` references export X and binds Y.
                        names.add(alias.name)
                        if alias.asname:
                            names.add(alias.asname)
    return names
