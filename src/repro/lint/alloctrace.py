"""Opt-in runtime allocation sanitizer — the dynamic half of R301–R305.

The static pass in :mod:`repro.lint.hotpath` flags allocation patterns it
can prove from the AST; this module measures the allocations that actually
happen, so a static finding can be confirmed (or a fix shown to help) with
numbers instead of taste.  When ``REPRO_DEBUG_ALLOC=1`` is set (read once
at import of :mod:`repro.obs`, at decoration time of ``@hotpath``
functions, or via :func:`enable`) the sanitizer records, backed by
:mod:`tracemalloc`:

* per **hot function** (anything decorated ``@hotpath`` in
  :mod:`repro.lint.hotpath`): call count, net traced bytes retained
  across the call, and the largest single-call retention — the cheap
  always-on accounting used by the CI ``alloc-stress`` budget gate;
* per **allocation site** (``file:line``) inside a :func:`watch` scope:
  the net number of traced blocks and bytes the scope retained at that
  line, filtered to the hot paths named by ``REPRO_DEBUG_ALLOC_FILTER``
  (default: the sketch/core hot subsystems).  This is what ties a static
  R301/R304 finding — "this line allocates per iteration" — to measured
  blocks at exactly that line;
* per :func:`watch` scope: net bytes, **peak** bytes (via
  ``tracemalloc.reset_peak``), and entry count.  Peak is the honest
  metric for *throwaway* intermediates: a per-iteration temporary that
  is freed before the scope exits never shows up in retained counts,
  but it does raise the peak.

Semantics worth stating plainly: tracemalloc snapshots count **live**
blocks, so per-site numbers are *net retained* allocations, not
cumulative allocation events; transient churn is visible through the
scope peak instead.  Both views are dumped in the JSON report.

Cost model (same bar as :mod:`repro.lint.contracts` and
:mod:`repro.lint.locktrace`): with the flag unset nothing is patched,
``@hotpath`` is the identity at decoration time, and :func:`watch` is a
no-op context manager — production code pays nothing.

A report is dumped at interpreter exit: JSON to the path named by
``REPRO_DEBUG_ALLOC_REPORT`` when set::

    REPRO_DEBUG_ALLOC=1 REPRO_DEBUG_ALLOC_REPORT=alloc.json \\
        python -m pytest tests/sketch tests/core

``python -m repro.lint.alloctrace --check report.json budget.json``
compares such a report against a committed per-function allocation
budget (see ``benchmarks/results/alloc-budget.json``) and exits
non-zero on any breach — the CI ``alloc-stress`` gate.

This module must stay standard-library only and must not import
``repro.obs`` (obs imports *it* to honour the env flag early).
"""

from __future__ import annotations

import atexit
import functools
import json
import os
import sys
import threading
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

__all__ = [
    "ALLOC_ENV",
    "REPORT_ENV",
    "FILTER_ENV",
    "hotpath",
    "coldpath",
    "allocs_enabled",
    "enable",
    "disable",
    "is_enabled",
    "install_from_env",
    "reset",
    "note_call",
    "watch",
    "report",
    "dump_report",
    "check_budget",
    "main",
]

ALLOC_ENV = "REPRO_DEBUG_ALLOC"
REPORT_ENV = "REPRO_DEBUG_ALLOC_REPORT"
FILTER_ENV = "REPRO_DEBUG_ALLOC_FILTER"

#: Path substrings a snapshot frame must contain for its site to be kept.
#: Matches the hot subsystems R301–R305 police; override (comma-separated)
#: with ``REPRO_DEBUG_ALLOC_FILTER``; an empty value keeps every site.
DEFAULT_FILTER = ("repro/sketch", "repro/core")


def allocs_enabled() -> bool:
    """True when ``REPRO_DEBUG_ALLOC`` requests allocation tracing."""
    return os.environ.get(ALLOC_ENV, "") not in ("", "0")


def _site_filter() -> Tuple[str, ...]:
    raw = os.environ.get(FILTER_ENV)
    if raw is None:
        return DEFAULT_FILTER
    parts = tuple(part.strip() for part in raw.split(",") if part.strip())
    return parts  # empty tuple → keep everything


class _AllocState:
    """Accumulated per-function and per-site allocation accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.site_filter = _site_filter()
        #: label → {calls, net_bytes, max_call_net_bytes}
        self.functions: Dict[str, Dict[str, int]] = {}
        #: ``file:line`` → {blocks, bytes} (net retained inside watch scopes)
        self.sites: Dict[str, Dict[str, int]] = {}
        #: label → {entries, net_bytes, peak_bytes}
        self.scopes: Dict[str, Dict[str, int]] = {}

    def note_call(self, label: str, net_bytes: int) -> None:
        with self._lock:
            entry = self.functions.setdefault(
                label, {"calls": 0, "net_bytes": 0, "max_call_net_bytes": 0}
            )
            entry["calls"] += 1
            entry["net_bytes"] += net_bytes
            if net_bytes > entry["max_call_net_bytes"]:
                entry["max_call_net_bytes"] = net_bytes

    def note_scope(self, label: str, net_bytes: int, peak_bytes: int) -> None:
        with self._lock:
            entry = self.scopes.setdefault(
                label, {"entries": 0, "net_bytes": 0, "peak_bytes": 0}
            )
            entry["entries"] += 1
            entry["net_bytes"] += net_bytes
            if peak_bytes > entry["peak_bytes"]:
                entry["peak_bytes"] = peak_bytes

    def note_sites(self, stats: List[tracemalloc.StatisticDiff]) -> None:
        keep = self.site_filter
        with self._lock:
            for stat in stats:
                frame = stat.traceback[0]
                filename = frame.filename.replace("\\", "/")
                if keep and not any(part in filename for part in keep):
                    continue
                if stat.count_diff <= 0 and stat.size_diff <= 0:
                    continue
                site = f"{'/'.join(filename.rsplit('/', 3)[1:])}:{frame.lineno}"
                entry = self.sites.setdefault(site, {"blocks": 0, "bytes": 0})
                entry["blocks"] += stat.count_diff
                entry["bytes"] += stat.size_diff

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "filter": list(self.site_filter),
                "functions": {
                    label: dict(entry)
                    for label, entry in sorted(self.functions.items())
                },
                "sites": {
                    site: dict(entry) for site, entry in sorted(self.sites.items())
                },
                "scopes": {
                    label: dict(entry)
                    for label, entry in sorted(self.scopes.items())
                },
            }


_STATE = _AllocState()

_enabled = False
_started_tracemalloc = False
_atexit_registered = False


def is_enabled() -> bool:
    """True while the sanitizer is recording."""
    return _enabled


def enable() -> None:
    """Start recording (starts ``tracemalloc`` if nothing else did).

    Functions decorated ``@hotpath`` *before* enabling keep their
    undecorated fast path — set the env flag before importing the hot
    modules (the CI ``alloc-stress`` job does) to get per-function
    accounting; :func:`watch` scopes work regardless.
    """
    global _enabled, _started_tracemalloc, _atexit_registered
    if _enabled:
        return
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracemalloc = True
    _enabled = True
    if not _atexit_registered:
        atexit.register(_exit_report)
        _atexit_registered = True


def disable() -> None:
    """Stop recording (stops ``tracemalloc`` only if :func:`enable` started it)."""
    global _enabled, _started_tracemalloc
    if not _enabled:
        return
    _enabled = False
    if _started_tracemalloc and tracemalloc.is_tracing():
        tracemalloc.stop()
    _started_tracemalloc = False


def install_from_env() -> bool:
    """Enable tracing iff ``REPRO_DEBUG_ALLOC`` is set; returns enabled."""
    if allocs_enabled():
        enable()
    return _enabled


def reset() -> None:
    """Drop all recorded events (the enabled state is kept).

    The site filter is re-read from ``REPRO_DEBUG_ALLOC_FILTER`` so a
    changed environment takes effect on the fresh state.
    """
    global _STATE
    _STATE = _AllocState()


def note_call(label: str, net_bytes: int) -> None:
    """Record one hot-function call (used by the ``@hotpath`` wrapper)."""
    if _enabled:
        _STATE.note_call(label, net_bytes)


@contextmanager
def watch(label: str, sites: bool = True) -> Iterator[None]:
    """Measure a code region: net/peak bytes plus per-site retained blocks.

    A no-op when the sanitizer is disabled.  ``sites=False`` skips the
    (expensive) tracemalloc snapshot diff and records only the scope's
    net and peak byte counts.
    """
    if not _enabled or not tracemalloc.is_tracing():
        yield
        return
    before = tracemalloc.take_snapshot() if sites else None
    tracemalloc.reset_peak()
    start_bytes, _ = tracemalloc.get_traced_memory()
    try:
        yield
    finally:
        if _enabled and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            _STATE.note_scope(
                label,
                net_bytes=current - start_bytes,
                peak_bytes=max(0, peak - start_bytes),
            )
            if before is not None:
                after = tracemalloc.take_snapshot()
                _STATE.note_sites(after.compare_to(before, "lineno"))


F = TypeVar("F", bound=Callable[..., Any])


def hotpath(func: F) -> F:
    """Mark ``func`` as a hot-region seed for the R301–R305 static pass.

    The static half (:mod:`repro.lint.hotpath`) treats any function
    decorated ``@hotpath`` as a hot-region root and closes over the call
    graph from it.  The dynamic half activates only when the sanitizer is
    on *at decoration time* (``REPRO_DEBUG_ALLOC=1`` or a prior
    :func:`enable`): the function is then wrapped to record per-call net
    traced bytes under its qualified name.  Otherwise the original
    function is returned untouched — zero overhead, same bar as
    :func:`repro.lint.contracts.invariant`.
    """
    if not (allocs_enabled() or _enabled):
        return func
    label = f"{func.__module__}.{func.__qualname__}"

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not _enabled or not tracemalloc.is_tracing():
            return func(*args, **kwargs)
        before, _ = tracemalloc.get_traced_memory()
        try:
            return func(*args, **kwargs)
        finally:
            after, _ = tracemalloc.get_traced_memory()
            note_call(label, after - before)

    return wrapper  # type: ignore[return-value]


def coldpath(func: F) -> F:
    """Mark ``func`` as a hot-region *boundary* for the static pass.

    Call-graph closure in :mod:`repro.lint.hotpath` does not enter a
    function decorated ``@coldpath`` (nor traverse through it), so setup
    and serialisation helpers reachable from benchmarks stay outside the
    hot region.  Purely a marker — the function is returned unchanged.
    """
    return func


def report() -> Dict[str, Any]:
    """A snapshot of everything recorded so far (JSON-serialisable)."""
    snapshot = _STATE.snapshot()
    snapshot["enabled"] = _enabled
    return snapshot


def dump_report(path: Optional[str] = None) -> Dict[str, Any]:
    """Write the report as JSON to ``path`` (or ``REPRO_DEBUG_ALLOC_REPORT``).

    Returns the report dict either way; with no path it is not written.
    """
    snapshot = report()
    target = path or os.environ.get(REPORT_ENV, "")
    if target:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return snapshot


def _exit_report() -> None:
    """Atexit hook: persist the report to the env-named path, if any."""
    try:
        dump_report()
    except Exception:  # pragma: no cover - never break interpreter exit
        pass


# ----------------------------------------------------------------------
# Budget gate (CI ``alloc-stress``)
# ----------------------------------------------------------------------


def check_budget(
    report_data: Dict[str, Any], budget: Dict[str, Any]
) -> List[str]:
    """Compare a report against a committed budget; returns breach messages.

    The budget maps hot-function labels (substring match against the
    report's function labels) to ceilings::

        {"version": 1,
         "functions": {"VersionedHLL.merge_within":
                           {"max_call_net_bytes": 262144}}}

    ``max_call_net_bytes`` bounds the worst single-call net retention of
    the function — the number that jumps when someone adds a per-call
    throwaway container to a lint-clean hot region.  A budgeted function
    missing from the report is *not* a breach (the workload may not have
    driven it); a breached ceiling is.
    """
    breaches: List[str] = []
    functions: Dict[str, Any] = report_data.get("functions", {})
    for pattern, limits in budget.get("functions", {}).items():
        ceiling = int(limits.get("max_call_net_bytes", 0))
        if ceiling <= 0:
            continue
        for label, entry in functions.items():
            if pattern not in label:
                continue
            observed = int(entry.get("max_call_net_bytes", 0))
            if observed > ceiling:
                breaches.append(
                    f"{label}: max_call_net_bytes {observed} exceeds "
                    f"budget {ceiling} (pattern {pattern!r})"
                )
    return breaches


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.lint.alloctrace --check REPORT BUDGET``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 3 or args[0] != "--check":
        print(
            "usage: python -m repro.lint.alloctrace --check REPORT.json BUDGET.json",
            file=sys.stderr,
        )
        return 2
    with open(args[1], "r", encoding="utf-8") as handle:
        report_data = json.load(handle)
    with open(args[2], "r", encoding="utf-8") as handle:
        budget = json.load(handle)
    breaches = check_budget(report_data, budget)
    if breaches:
        print("[alloctrace] allocation budget breached:", file=sys.stderr)
        for breach in breaches:
            print(f"[alloctrace]   {breach}", file=sys.stderr)
        return 1
    checked = len(budget.get("functions", {}))
    print(f"[alloctrace] {checked} budget entr{'y' if checked == 1 else 'ies'} ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
