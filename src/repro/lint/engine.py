"""The lint engine: file walking, suppression parsing, rule dispatch.

The engine is deliberately small: it parses each file once with
:mod:`ast`, determines which ``repro`` sub-package the file belongs to
(rules restrict themselves to sub-packages via their ``scopes``
attribute), collects violations from every selected rule, and filters
them through the suppression comments.

Suppression syntax
------------------
``# repro-lint: disable=R001`` (comma-separated rule ids, or ``all``):

* on a line of its own → suppresses the listed rules for the whole file;
* trailing a statement → suppresses the listed rules on that line only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.rules import Rule, all_rules

__all__ = ["Violation", "FileContext", "LintEngine", "lint_paths", "lint_source"]

#: Sub-packages of ``repro`` that rule scopes refer to.
KNOWN_SUBPACKAGES = frozenset(
    {"core", "sketch", "simulation", "baselines", "datasets", "analysis", "utils", "lint"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    #: ``repro`` sub-package the file lives in (``"core"``, ``"sketch"``, …)
    #: or ``None`` when the file is outside the package — rules then apply
    #: unconditionally, which is what lint fixtures in tests rely on.
    subpackage: Optional[str] = None
    file_suppressions: set = field(default_factory=set)
    line_suppressions: dict = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", subpackage: Optional[str] = None
    ) -> "FileContext":
        """Parse ``source`` and collect its suppression comments."""
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, subpackage=subpackage)
        ctx._collect_suppressions()
        return ctx

    def _collect_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if line.lstrip().startswith("#"):
                self.file_suppressions |= ids
            else:
                self.line_suppressions.setdefault(lineno, set()).update(ids)

    def is_suppressed(self, violation: Violation) -> bool:
        """True when a suppression comment silences ``violation``."""
        if "all" in self.file_suppressions or violation.rule_id in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(violation.line)
        return bool(on_line) and ("all" in on_line or violation.rule_id in on_line)


def _infer_subpackage(path: Path) -> Optional[str]:
    """The ``repro`` sub-package ``path`` belongs to, if any.

    ``.../src/repro/core/exact.py`` → ``"core"``; a file directly under
    ``repro/`` maps to ``""`` (top level, matches no scoped rule); files
    outside any ``repro`` package map to ``None``.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            remainder = parts[i + 1 : -1]
            if remainder and remainder[0] in KNOWN_SUBPACKAGES:
                return remainder[0]
            return ""
    return None


class LintEngine:
    """Run a set of rules over files or in-memory source."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self._rules: tuple = tuple(rules) if rules is not None else tuple(all_rules())

    @property
    def rules(self) -> tuple:
        """The rules this engine dispatches to."""
        return self._rules

    def lint_context(self, ctx: FileContext) -> list:
        """All unsuppressed violations for one parsed file."""
        violations: list = []
        for rule in self._rules:
            if ctx.subpackage is not None and rule.scopes is not None:
                if ctx.subpackage not in rule.scopes:
                    continue
            violations.extend(rule.check(ctx))
        return sorted(
            (v for v in violations if not ctx.is_suppressed(v)),
            key=lambda v: (v.line, v.col, v.rule_id),
        )

    def lint_file(self, path: Path) -> list:
        """Lint one file on disk; raises ``SyntaxError`` on unparsable input."""
        source = path.read_text(encoding="utf-8")
        ctx = FileContext.from_source(
            source, path=str(path), subpackage=_infer_subpackage(path)
        )
        return self.lint_context(ctx)

    def lint_paths(self, paths: Iterable) -> tuple:
        """Lint files and directory trees; returns ``(violations, files_checked)``."""
        violations: list = []
        checked = 0
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                targets = sorted(path.rglob("*.py"))
            elif path.exists():
                targets = [path]
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
            for target in targets:
                violations.extend(self.lint_file(target))
                checked += 1
        return violations, checked


def lint_source(
    source: str,
    path: str = "<string>",
    subpackage: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list:
    """Lint an in-memory snippet — the unit-test entry point.

    ``subpackage=None`` applies every selected rule unconditionally;
    pass e.g. ``subpackage="analysis"`` to exercise scope filtering.
    """
    engine = LintEngine(rules)
    ctx = FileContext.from_source(source, path=path, subpackage=subpackage)
    return engine.lint_context(ctx)


def lint_paths(paths: Iterable, rules: Optional[Sequence[Rule]] = None) -> tuple:
    """Module-level convenience mirroring :meth:`LintEngine.lint_paths`."""
    return LintEngine(rules).lint_paths(paths)
