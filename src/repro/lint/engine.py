"""The lint engine: file walking, suppression parsing, rule dispatch.

The engine is deliberately small: it parses each file once with
:mod:`ast`, determines which ``repro`` sub-package the file belongs to
(rules restrict themselves to sub-packages via their ``scopes``
attribute), collects violations from every selected rule, and filters
them through the suppression comments.

Two rule kinds are dispatched:

* **file rules** (``project_scope = False``) see one
  :class:`FileContext` at a time and may run in parallel workers
  (``jobs > 1``);
* **project rules** (``project_scope = True``, R101/R104/R105) run once
  per invocation over a :class:`~repro.lint.project.ProjectIndex` built
  from every parsed file, after the per-file wave.  Their violations
  still honour the suppression comments of the file they anchor to.

Suppression syntax
------------------
``# repro-lint: disable=R001`` (comma-separated rule ids, or ``all``):

* on a line of its own → suppresses the listed rules for the whole file;
* trailing a statement → suppresses the listed rules on that line only.
"""

from __future__ import annotations

import ast
import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.lint import concurrency  # noqa: F401 — registers R201–R205
from repro.lint import rules_project  # noqa: F401 — registers R101–R105
from repro.lint.hotpath import collect_benchmark_roots  # registers R301–R305
from repro.lint.project import ProjectIndex, collect_reference_identifiers
from repro.lint.rules import Rule, all_rules

__all__ = [
    "Violation",
    "FileContext",
    "LintEngine",
    "lint_paths",
    "lint_source",
    "lint_project_sources",
]

#: Sub-packages of ``repro`` that rule scopes refer to.
KNOWN_SUBPACKAGES = frozenset(
    {
        "core",
        "sketch",
        "simulation",
        "baselines",
        "datasets",
        "analysis",
        "utils",
        "lint",
        "obs",
        "serve",
    }
)

#: Directories next to ``src`` whose identifiers count as external
#: references for liveness rules (R104).
REFERENCE_ROOT_NAMES = ("tests", "benchmarks", "examples")

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    #: ``repro`` sub-package the file lives in (``"core"``, ``"sketch"``, …)
    #: or ``None`` when the file is outside the package — rules then apply
    #: unconditionally, which is what lint fixtures in tests rely on.
    subpackage: Optional[str] = None
    file_suppressions: set = field(default_factory=set)
    line_suppressions: dict = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", subpackage: Optional[str] = None
    ) -> "FileContext":
        """Parse ``source`` and collect its suppression comments."""
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, subpackage=subpackage)
        ctx._collect_suppressions()
        return ctx

    def _collect_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if line.lstrip().startswith("#"):
                self.file_suppressions |= ids
            else:
                self.line_suppressions.setdefault(lineno, set()).update(ids)

    def is_suppressed(self, violation: Violation) -> bool:
        """True when a suppression comment silences ``violation``."""
        if "all" in self.file_suppressions or violation.rule_id in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(violation.line)
        return bool(on_line) and ("all" in on_line or violation.rule_id in on_line)


def _infer_subpackage(path: Path) -> Optional[str]:
    """The ``repro`` sub-package ``path`` belongs to, if any.

    ``.../src/repro/core/exact.py`` → ``"core"``; a file directly under
    ``repro/`` maps to ``""`` (top level, matches no scoped rule); files
    outside any ``repro`` package map to ``None``.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            remainder = parts[i + 1 : -1]
            if remainder and remainder[0] in KNOWN_SUBPACKAGES:
                return remainder[0]
            return ""
    return None


def _lint_file_worker(task: tuple) -> tuple:
    """Parallel-worker entry: lint one file with the named file rules.

    Returns a picklable ``("ok", violations)`` /
    ``("syntax-error", path, message)`` pair — ``SyntaxError`` loses its
    ``filename`` attribute across process boundaries, so it is re-raised
    with full context in the parent instead.
    """
    from repro.lint.rules import get_rule

    path_str, rule_ids = task
    engine = LintEngine([get_rule(rule_id) for rule_id in rule_ids])
    try:
        return ("ok", engine.lint_file(Path(path_str)))
    except SyntaxError as exc:
        return ("syntax-error", path_str, str(exc))


class LintEngine:
    """Run a set of rules over files or in-memory source.

    Parameters
    ----------
    rules:
        The rules to dispatch (default: the full registry).
    jobs:
        Worker processes for the per-file wave; ``1`` (default) stays
        in-process, ``0`` means one per CPU.  Project rules always run
        serially in the parent — they need the whole index.
    reference_roots:
        Directories whose identifiers count as external references for
        liveness rules.  ``None`` (default) auto-detects ``tests``/
        ``benchmarks``/``examples`` next to the linted tree's ``src``;
        pass an explicit (possibly empty) sequence to override.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        jobs: int = 1,
        reference_roots: Optional[Sequence] = None,
    ) -> None:
        self._rules: tuple = tuple(rules) if rules is not None else tuple(all_rules())
        self._jobs = int(jobs)
        self._reference_roots = reference_roots

    @property
    def rules(self) -> tuple:
        """The rules this engine dispatches to."""
        return self._rules

    @property
    def file_rules(self) -> tuple:
        return tuple(rule for rule in self._rules if not rule.project_scope)

    @property
    def project_rules(self) -> tuple:
        return tuple(rule for rule in self._rules if rule.project_scope)

    def lint_context(self, ctx: FileContext) -> list:
        """All unsuppressed file-rule violations for one parsed file."""
        violations: list = []
        for rule in self.file_rules:
            if ctx.subpackage is not None and rule.scopes is not None:
                if ctx.subpackage not in rule.scopes:
                    continue
            violations.extend(rule.check(ctx))
        return sorted(
            (v for v in violations if not ctx.is_suppressed(v)),
            key=lambda v: (v.line, v.col, v.rule_id),
        )

    def lint_file(self, path: Path) -> list:
        """Run the file rules on one file; raises ``SyntaxError`` on
        unparsable input.  Project rules need :meth:`lint_paths`."""
        return self.lint_context(self._parse_file(path))

    @staticmethod
    def _parse_file(path: Path) -> FileContext:
        source = path.read_text(encoding="utf-8")
        return FileContext.from_source(
            source, path=str(path), subpackage=_infer_subpackage(path)
        )

    def lint_paths(self, paths: Iterable) -> tuple:
        """Lint files and directory trees; returns ``(violations, files_checked)``."""
        targets: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                targets.extend(sorted(path.rglob("*.py")))
            elif path.exists():
                targets.append(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")

        violations: list = []
        contexts: Dict[str, FileContext] = {}
        jobs = self._effective_jobs(len(targets))
        if jobs > 1 and self.file_rules:
            violations.extend(self._lint_files_parallel(targets, jobs))
            if self.project_rules:
                for target in targets:
                    ctx = self._parse_file(target)
                    contexts[ctx.path] = ctx
        else:
            for target in targets:
                ctx = self._parse_file(target)
                contexts[ctx.path] = ctx
                violations.extend(self.lint_context(ctx))

        if self.project_rules and contexts:
            violations.extend(self._run_project_rules(contexts, targets))
        return violations, len(targets)

    def _effective_jobs(self, target_count: int) -> int:
        jobs = self._jobs if self._jobs > 0 else (os.cpu_count() or 1)
        return max(1, min(jobs, target_count))

    def _lint_files_parallel(self, targets: Sequence[Path], jobs: int) -> list:
        rule_ids = [rule.rule_id for rule in self.file_rules]
        tasks = [(str(target), rule_ids) for target in targets]
        violations: list = []
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(_lint_file_worker, tasks))
        except (OSError, ImportError):  # pragma: no cover - platform dependent
            # No usable worker pool (restricted sandbox, missing start
            # method): degrade to in-process linting rather than failing.
            return [v for target in targets for v in self.lint_file(target)]
        for outcome in outcomes:
            if outcome[0] == "syntax-error":
                _, path_str, message = outcome
                error = SyntaxError(message)
                error.filename = path_str
                raise error
            violations.extend(outcome[1])
        return violations

    def _run_project_rules(
        self, contexts: Mapping[str, FileContext], targets: Sequence[Path]
    ) -> list:
        reference_roots = self._resolve_reference_roots(targets)
        external = collect_reference_identifiers(reference_roots)
        index = ProjectIndex.from_contexts(contexts.values(), external)
        index.benchmark_roots |= collect_benchmark_roots(index, reference_roots)
        violations: list = []
        for rule in self.project_rules:
            for violation in rule.check_project(index):
                ctx = contexts.get(violation.path)
                if ctx is not None and ctx.is_suppressed(violation):
                    continue
                violations.append(violation)
        return violations

    def _resolve_reference_roots(self, targets: Sequence[Path]) -> List[Path]:
        if self._reference_roots is not None:
            return [Path(root) for root in self._reference_roots]
        roots: Set[Path] = set()
        for target in targets:
            for ancestor in target.resolve().parents:
                if ancestor.name == "src":
                    for name in REFERENCE_ROOT_NAMES:
                        candidate = ancestor.parent / name
                        if candidate.is_dir():
                            roots.add(candidate)
                    break
        return sorted(roots)


def lint_source(
    source: str,
    path: str = "<string>",
    subpackage: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list:
    """Lint an in-memory snippet — the unit-test entry point.

    ``subpackage=None`` applies every selected rule unconditionally;
    pass e.g. ``subpackage="analysis"`` to exercise scope filtering.
    Project rules are exercised through :func:`lint_project_sources`.
    """
    engine = LintEngine(rules)
    ctx = FileContext.from_source(source, path=path, subpackage=subpackage)
    return engine.lint_context(ctx)


def lint_project_sources(
    sources: Mapping[str, str],
    rules: Optional[Sequence[Rule]] = None,
    external_identifiers: Iterable[str] = (),
) -> list:
    """Lint an in-memory multi-file project — the project-rule test entry.

    ``sources`` maps relative paths (``"pkg/a.py"``; a ``src/repro/...``
    prefix opts into sub-package scoping) to source text.  File rules run
    per module, then project rules over the combined index;
    ``external_identifiers`` plays the role of tests/benchmarks
    references for R104.
    """
    engine = LintEngine(rules)
    contexts: Dict[str, FileContext] = {}
    violations: list = []
    for path, source in sources.items():
        ctx = FileContext.from_source(
            source, path=path, subpackage=_infer_subpackage(Path(path))
        )
        contexts[path] = ctx
        violations.extend(engine.lint_context(ctx))
    index = ProjectIndex.from_contexts(contexts.values(), set(external_identifiers))
    for rule in engine.project_rules:
        for violation in rule.check_project(index):
            ctx = contexts.get(violation.path)
            if ctx is not None and ctx.is_suppressed(violation):
                continue
            violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule_id))


def lint_paths(paths: Iterable, rules: Optional[Sequence[Rule]] = None) -> tuple:
    """Module-level convenience mirroring :meth:`LintEngine.lint_paths`."""
    return LintEngine(rules).lint_paths(paths)
