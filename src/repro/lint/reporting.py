"""Reporters for lint results: human-readable text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

__all__ = ["render_text", "render_json"]


def render_text(violations: Sequence, files_checked: int) -> str:
    """GCC-style ``path:line:col: RXXX message`` lines plus a summary."""
    lines = [
        f"{violation.location()}: {violation.rule_id} {violation.message}"
        for violation in sorted(
            violations, key=lambda v: (v.path, v.line, v.col, v.rule_id)
        )
    ]
    noun = "violation" if len(violations) == 1 else "violations"
    files = "file" if files_checked == 1 else "files"
    lines.append(
        f"repro-lint: {len(violations)} {noun} in {files_checked} {files} checked"
    )
    return "\n".join(lines)


def render_json(violations: Sequence, files_checked: int) -> str:
    """A JSON document with the violation list and counters."""
    payload = {
        "violations": [
            violation.to_dict()
            for violation in sorted(
                violations, key=lambda v: (v.path, v.line, v.col, v.rule_id)
            )
        ],
        "count": len(violations),
        "files_checked": files_checked,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
