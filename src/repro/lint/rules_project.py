"""Cross-module rules R101–R105 over the :class:`ProjectIndex`.

These rules see the whole program, not one file (see
``docs/static_analysis.md`` for the paper-side rationale of each):

* **R101** — interprocedural parameter validation: a monitored
  parameter (window/precision/probability/…) of a *public* entry point
  must be validated through :mod:`repro.utils.validation` on every path
  to its use, following forwards across modules.  Generalises R002,
  which trusts any same-file forward.
* **R102** — temporal-order misuse: values originating from ``set()``,
  dict-view iteration or set comprehensions must not flow into the time
  argument of ``.process(...)`` — Algorithm 2 is only correct on
  strictly time-ordered input.
* **R103** — complexity budget: nested ``for`` loops in ``core``/
  ``sketch`` hot paths need an explicit ``# repro-lint: budget=O(…)``
  annotation acknowledging the cost (Lemma 3 territory).
* **R104** — dead exports: a name in ``__all__`` that no other module,
  test, benchmark or example references.
* **R105** — sketch merge compatibility: ``merge``/``merge_within``
  call sites where the receiver and argument sketches cannot be proven
  to share constructor configuration (precision/salt/seed/k — Lemma 2,
  §3.2 requires identical parameters for vHLL unions).
* **R106** — timing-API imports outside the instrumented layer:
  ``from time import perf_counter`` (possibly aliased) and
  ``import time as t`` rebind the clock under names R006's literal
  call matching cannot see; only ``repro/utils/timer.py`` and
  ``repro/obs/`` may bind the timing API.

R102 and R103 are per-file rules that live here because they belong to
the same analysis wave; R101/R104/R105 set ``project_scope`` and are
dispatched by the engine once per run with the full index.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.project import (
    BUILTIN_NAMES,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    annotation_class_name,
    bind_arguments,
    mapping_value_class,
)
from repro.lint.rules import (
    ALGORITHM_SCOPES,
    TIMING_ATTRS,
    TYPED_SCOPES,
    Rule,
    _walk_functions,
    register,
    timing_exempt,
)

__all__ = [
    "ProjectRule",
    "InterproceduralParameterValidation",
    "TemporalOrderMisuse",
    "ComplexityBudget",
    "DeadExports",
    "SketchMergeCompatibility",
    "TimingImportsOutsideTimer",
]


class ProjectRule(Rule):
    """A rule that inspects the whole :class:`ProjectIndex` at once."""

    project_scope = True

    def check(self, ctx) -> list:
        """Project rules contribute nothing at the single-file stage."""
        return []

    def check_project(self, index: ProjectIndex) -> list:
        raise NotImplementedError

    def module_in_scope(self, module: ModuleInfo) -> bool:
        if self.scopes is None or module.subpackage is None:
            return True
        return module.subpackage in self.scopes

    def violation_at(self, module: ModuleInfo, node: ast.AST, message: str):
        from repro.lint.engine import Violation

        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def _call_dotted_name(call: ast.Call) -> Optional[str]:
    parts: List[str] = []
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _entry_points(module: ModuleInfo) -> Iterable[FunctionInfo]:
    yield from module.functions.values()
    for cls_info in module.classes.values():
        yield from cls_info.methods.values()


# ----------------------------------------------------------------------
# R101 — interprocedural parameter validation
# ----------------------------------------------------------------------

#: Validation "facets": what a monitored parameter must be proven to be
#: before the algorithms may consume it.  Splitting validation into
#: facets is what makes the rule sensitive to *partial* validation —
#: ``require_int(window)`` alone leaves the range facet open, so
#: deleting the companion ``require_non_negative`` is caught.
_FULL_COVERAGE: FrozenSet[str] = frozenset({"int", "range", "domain", "istype"})

_INT_RANGE_PARAMS = frozenset({"window", "omega", "precision", "num_registers", "k"})
_INT_ONLY_PARAMS = frozenset({"time", "timestamp", "start_time", "end_time"})
_ISTYPE_PARAMS = frozenset({"log", "graph"})

_VALIDATOR_FACETS: Dict[str, FrozenSet[str]] = {
    "require_int": frozenset({"int"}),
    "require_power_of_two": frozenset({"int", "range"}),
    "require_positive": frozenset({"range"}),
    "require_non_negative": frozenset({"range"}),
    "require_at_least": frozenset({"range"}),
    "require_in_range": frozenset({"range", "domain"}),
    "require_probability": frozenset({"domain"}),
    "require_type": frozenset({"istype"}),
}

_FACET_HINTS = {
    "int": "an integer-type check (require_int / require_power_of_two)",
    "range": (
        "a range check (require_non_negative / require_positive / "
        "require_in_range / require_at_least)"
    ),
    "domain": "a domain check (require_probability / require_in_range)",
    "istype": "an instance check (require_type)",
}


def _needed_facets(param: str) -> Optional[FrozenSet[str]]:
    if param in _INT_RANGE_PARAMS:
        return frozenset({"int", "range"})
    if param in _INT_ONLY_PARAMS:
        return frozenset({"int"})
    if param == "probability" or param.endswith("_probability"):
        return frozenset({"domain"})
    if param in _ISTYPE_PARAMS:
        return frozenset({"istype"})
    return None


class _ValidationAnalysis:
    """Transitive validation-facet coverage of ``(function, parameter)``.

    ``coverage(fn, p)`` is the union of the facets established by direct
    ``require_*`` calls on ``p`` inside ``fn`` and the coverage of every
    parameter ``p`` is forwarded to in a *resolved* project callee.  An
    unresolvable forward is treated optimistically (full coverage), the
    same stance R002 takes — builtin and external-library calls never
    count as forwards.  Recursion is cut off pessimistically (a cycle
    contributes nothing).
    """

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self._memo: Dict[Tuple[str, str], Optional[FrozenSet[str]]] = {}

    def coverage(self, fn: FunctionInfo, param: str) -> FrozenSet[str]:
        key = (fn.qualname, param)
        if key in self._memo:
            cached = self._memo[key]
            return frozenset() if cached is None else cached
        self._memo[key] = None  # in-progress marker for cycles
        covered: Set[str] = set()
        unknown_forward = False
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_dotted_name(node)
            short = dotted.rsplit(".", 1)[-1] if dotted else None
            if short in _VALIDATOR_FACETS:
                first = node.args[0] if node.args else None
                if isinstance(first, ast.Name) and first.id == param:
                    covered |= _VALIDATOR_FACETS[short]
                continue
            bound_positions = [
                index
                for index, arg in enumerate(node.args)
                if isinstance(arg, ast.Name) and arg.id == param
            ]
            bound_keywords = [
                keyword
                for keyword in node.keywords
                if keyword.arg is not None
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == param
            ]
            if not bound_positions and not bound_keywords:
                continue
            if dotted is None:
                unknown_forward = True
                continue
            resolved = self._index.resolve_call(fn.module, dotted, fn.owner)
            if resolved is None:
                unknown_forward = True
                continue
            kind, target = resolved
            if kind in ("builtin", "external"):
                continue
            if kind == "class":
                target = target.init
                if target is None:
                    unknown_forward = True
                    continue
            binding = bind_arguments(target, node)
            if binding is None:
                unknown_forward = True
                continue
            for callee_param, expr in binding.items():
                if isinstance(expr, ast.Name) and expr.id == param:
                    covered |= self.coverage(target, callee_param)
        result = _FULL_COVERAGE if unknown_forward else frozenset(covered)
        self._memo[key] = result
        return result


@register
class InterproceduralParameterValidation(ProjectRule):
    """Monitored parameters validated on every path from public entry."""

    rule_id = "R101"
    name = "interprocedural-parameter-validation"
    description = (
        "Monitored algorithm parameters (window/omega, precision/"
        "num_registers, k, probability, time stamps, log/graph) of public "
        "entry points must be fully validated via repro.utils.validation — "
        "locally or in a resolved callee they are forwarded to; partial "
        "validation (e.g. a type check without the range check) is flagged."
    )
    scopes = ALGORITHM_SCOPES

    def check_project(self, index: ProjectIndex) -> list:
        analysis = _ValidationAnalysis(index)
        violations = []
        for module in sorted(index.modules.values(), key=lambda m: m.name):
            if not self.module_in_scope(module):
                continue
            for fn in _entry_points(module):
                if not fn.is_public:
                    continue
                display = fn.qualname[len(module.name) + 1 :] or fn.name
                for param in fn.params:
                    needed = _needed_facets(param)
                    if needed is None:
                        continue
                    missing = needed - analysis.coverage(fn, param)
                    if not missing:
                        continue
                    hints = " and ".join(_FACET_HINTS[f] for f in sorted(missing))
                    violations.append(
                        self.violation_at(
                            module,
                            fn.node,
                            f"parameter {param!r} of {display}() reaches its uses "
                            f"without {hints} on some call path; validate via "
                            "repro.utils.validation or forward to a project callee "
                            "that does",
                        )
                    )
        return violations


# ----------------------------------------------------------------------
# R102 — temporal-order misuse
# ----------------------------------------------------------------------


@register
class TemporalOrderMisuse(Rule):
    """Unordered collections must not feed time-sorted APIs."""

    rule_id = "R102"
    name = "temporal-order-misuse"
    description = (
        "Values originating from set()/frozenset(), set literals or "
        "comprehensions, or dict .keys()/.values()/.items() iteration must "
        "not flow into the time argument of .process(...): the one-pass "
        "algorithms require strictly time-ordered input and silently compute "
        "garbage otherwise — sort explicitly first."
    )
    scopes = ALGORITHM_SCOPES

    #: Method names documented as requiring time-ordered feeding; the
    #: time stamp is the third positional argument or ``time=`` keyword.
    SINKS = frozenset({"process"})
    TIME_POSITION = 2

    UNORDERED_CALLS = frozenset({"set", "frozenset"})
    UNORDERED_VIEWS = frozenset({"keys", "values", "items"})

    def check(self, ctx) -> list:
        violations: list = []
        self._scan_body(ctx, ctx.tree.body, {}, violations)
        return violations

    # -- producers ------------------------------------------------------
    def _producer_of(self, expr: ast.AST, tainted: Dict[str, str]) -> Optional[str]:
        """Human-readable origin when ``expr`` yields unordered values."""
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Name):
            return tainted.get(expr.id)
        if isinstance(expr, ast.Call):
            dotted = _call_dotted_name(expr)
            short = dotted.rsplit(".", 1)[-1] if dotted else None
            if short in self.UNORDERED_CALLS:
                return f"{short}(...)"
            if short in self.UNORDERED_VIEWS:
                return f"dict .{short}() iteration"
        return None

    @staticmethod
    def _is_cleansing(expr: ast.AST) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _call_dotted_name(expr)
        short = dotted.rsplit(".", 1)[-1] if dotted else None
        return short in ("sorted", "sort")

    # -- statement-ordered scan ----------------------------------------
    def _scan_body(self, ctx, body, tainted: Dict[str, str], violations: list) -> None:
        for stmt in body:
            self._scan_stmt(ctx, stmt, tainted, violations)

    def _scan_stmt(self, ctx, stmt, tainted: Dict[str, str], violations: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(tainted)
            for arg in stmt.args.args + stmt.args.posonlyargs + stmt.args.kwonlyargs:
                inner.pop(arg.arg, None)
            self._scan_body(ctx, stmt.body, inner, violations)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_body(ctx, stmt.body, dict(tainted), violations)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                self._check_expr(ctx, value, tainted, violations)
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                producer = None if self._is_cleansing(value) else self._producer_of(value, tainted)
                for target in targets:
                    self._retaint(target, producer, tainted)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(ctx, stmt.iter, tainted, violations)
            producer = None if self._is_cleansing(stmt.iter) else self._producer_of(
                stmt.iter, tainted
            )
            self._retaint(stmt.target, producer, tainted)
            self._scan_body(ctx, stmt.body, tainted, violations)
            self._scan_body(ctx, stmt.orelse, tainted, violations)
            return
        for expr_field in ("value", "test"):
            value = getattr(stmt, expr_field, None)
            if isinstance(value, ast.expr):
                self._check_expr(ctx, value, tainted, violations)
        for body_field in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, body_field, None)
            if isinstance(nested, list):
                self._scan_body(ctx, nested, tainted, violations)
        for handler in getattr(stmt, "handlers", []) or []:
            self._scan_body(ctx, handler.body, tainted, violations)
        for item in getattr(stmt, "items", []) or []:
            self._check_expr(ctx, item.context_expr, tainted, violations)

    def _retaint(
        self, target: ast.AST, producer: Optional[str], tainted: Dict[str, str]
    ) -> None:
        if isinstance(target, ast.Name):
            if producer is not None:
                tainted[target.id] = producer
            else:
                tainted.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._retaint(element, producer, tainted)

    # -- sinks ----------------------------------------------------------
    def _check_expr(self, ctx, expr: ast.AST, tainted: Dict[str, str], violations: list) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                inner = dict(tainted)
                for generator in node.generators:
                    producer = self._producer_of(generator.iter, inner)
                    if not self._is_cleansing(generator.iter):
                        self._retaint(generator.target, producer, inner)
                    else:
                        self._retaint(generator.target, None, inner)
                elements = (
                    [node.key, node.value]
                    if isinstance(node, ast.DictComp)
                    else [node.elt]
                )
                for element in elements:
                    self._sink_check(ctx, element, inner, violations)
                continue
            if isinstance(node, ast.Call):
                self._sink_call(ctx, node, tainted, violations)

    def _sink_check(self, ctx, expr: ast.AST, tainted: Dict[str, str], violations: list) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._sink_call(ctx, node, tainted, violations)

    def _sink_call(self, ctx, call: ast.Call, tainted: Dict[str, str], violations: list) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in self.SINKS):
            return
        time_expr: Optional[ast.AST] = None
        if len(call.args) > self.TIME_POSITION:
            time_expr = call.args[self.TIME_POSITION]
        for keyword in call.keywords:
            if keyword.arg == "time":
                time_expr = keyword.value
        if time_expr is None:
            return
        for node in ast.walk(time_expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                violations.append(
                    self.violation(
                        ctx,
                        call,
                        f"time argument of .{func.attr}() uses {node.id!r}, which "
                        f"originates from {tainted[node.id]}: the one-pass scan "
                        "requires strictly time-ordered input — sort explicitly "
                        "(e.g. sorted(..., key=...)) before processing",
                    )
                )
                return


# ----------------------------------------------------------------------
# R103 — complexity budget
# ----------------------------------------------------------------------


@register
class ComplexityBudget(Rule):
    """Nested loops in hot paths need an explicit budget annotation."""

    rule_id = "R103"
    name = "complexity-budget"
    description = (
        "Nested for-loops in repro.core / repro.sketch (the per-interaction "
        "hot paths of Algorithms 2–3) must carry a '# repro-lint: "
        "budget=O(...)' annotation on (or right above) the outer loop, "
        "acknowledging the reviewed asymptotic cost."
    )
    scopes = TYPED_SCOPES

    BUDGET_RE = re.compile(r"#\s*repro-lint:\s*budget=(\S+)")

    def check(self, ctx) -> list:
        annotated = {
            lineno
            for lineno, line in enumerate(ctx.source.splitlines(), start=1)
            if self.BUDGET_RE.search(line)
        }
        violations: list = []
        for func in _walk_functions(ctx.tree):
            for loop in self._direct_loops(func.body):
                self._check_loop(ctx, loop, annotated, violations)
        return violations

    @classmethod
    def _direct_loops(cls, body) -> Iterable[ast.AST]:
        """Top-level loops of a body, not descending into nested defs."""
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield stmt
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if isinstance(nested, list):
                    yield from cls._direct_loops(nested)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from cls._direct_loops(handler.body)

    def _check_loop(self, ctx, loop, annotated: set, violations: list) -> None:
        inner = list(self._direct_loops(loop.body)) + list(
            self._direct_loops(loop.orelse)
        )
        if not inner:
            return
        if loop.lineno in annotated or (loop.lineno - 1) in annotated:
            return  # the budget covers the whole nest
        violations.append(
            self.violation(
                ctx,
                loop,
                "nested loops in a hot path without a declared complexity "
                "budget; annotate the outer loop with "
                "'# repro-lint: budget=O(...)' after reviewing the cost, or "
                "restructure the scan",
            )
        )


# ----------------------------------------------------------------------
# R104 — dead exports
# ----------------------------------------------------------------------


@register
class DeadExports(ProjectRule):
    """Public ``__all__`` names nothing else references."""

    rule_id = "R104"
    name = "dead-exports"
    description = (
        "A name listed in __all__ that no other module, test, benchmark or "
        "example references is a dead export: either dead code or missing "
        "coverage — remove it or reference it."
    )
    scopes = None

    def check_project(self, index: ProjectIndex) -> list:
        dead: List[Tuple[ModuleInfo, str, ast.AST]] = []
        for module in sorted(index.modules.values(), key=lambda m: m.name):
            for name, node in module.exports:
                if not self._is_live(index, module, name):
                    dead.append((module, name, node))
        by_name: Dict[str, List[Tuple[ModuleInfo, ast.AST]]] = {}
        for module, name, node in dead:
            by_name.setdefault(name, []).append((module, node))
        violations = []
        for name in sorted(by_name):
            sites = by_name[name]
            defining = [site for site in sites if self._defines(site[0], name)]
            for module, node in defining or sites:
                violations.append(
                    self.violation_at(
                        module,
                        node,
                        f"public export {name!r} is never referenced outside its "
                        "defining module (src, tests, benchmarks and examples "
                        "checked); drop it from __all__ or add a caller/test",
                    )
                )
        return violations

    @staticmethod
    def _defines(module: ModuleInfo, name: str) -> bool:
        if name in module.functions or name in module.classes:
            return True
        for stmt in module.tree.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            if any(isinstance(t, ast.Name) and t.id == name for t in targets):
                return True
        return False

    @staticmethod
    def _is_live(index: ProjectIndex, module: ModuleInfo, name: str) -> bool:
        if name in index.external_identifiers:
            return True
        for other in index.modules.values():
            if other is module:
                continue
            if name in other.identifiers:
                return True
            # A re-export in a package __init__ keeps nothing alive by
            # itself; an import in a regular module is a real use.
            if not other.is_package_init and name in other.import_bindings:
                return True
        return False


# ----------------------------------------------------------------------
# R105 — sketch merge compatibility
# ----------------------------------------------------------------------


@register
class SketchMergeCompatibility(ProjectRule):
    """merge()/merge_within() receiver and argument must share config."""

    rule_id = "R105"
    name = "sketch-merge-compatibility"
    description = (
        "At every sketch merge/merge_within call site the receiver and "
        "argument must be provably built with identical constructor "
        "configuration (precision/salt/seed/k): Lemma 2 unions are only "
        "defined over sketches with equal parameters.  Provable means "
        "identical traced constructor arguments, or all constructions of "
        "that sketch class inside the enclosing class normalise to one "
        "configuration."
    )
    scopes = ALGORITHM_SCOPES

    CONFIG_PARAMS = ("precision", "salt", "seed", "k")
    MERGE_METHODS = frozenset({"merge", "merge_within"})

    def check_project(self, index: ProjectIndex) -> list:
        sketch_classes = self._sketch_classes(index)
        if not sketch_classes:
            return []
        violations = []
        pool_cache: Dict[Tuple[str, str], bool] = {}
        for module in sorted(index.modules.values(), key=lambda m: m.name):
            if not self.module_in_scope(module):
                continue
            for fn in _entry_points(module):
                for call in ast.walk(fn.node):
                    if not isinstance(call, ast.Call):
                        continue
                    func = call.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and func.attr in self.MERGE_METHODS
                        and call.args
                    ):
                        continue
                    self._check_site(
                        index, module, fn, call, sketch_classes, pool_cache, violations
                    )
        return violations

    def _sketch_classes(self, index: ProjectIndex) -> Dict[str, ClassInfo]:
        found: Dict[str, ClassInfo] = {}
        for module in index.modules.values():
            for cls_info in module.classes.values():
                init = cls_info.init
                if init is None:
                    continue
                if not self.MERGE_METHODS & set(cls_info.methods):
                    continue
                if any(p in self.CONFIG_PARAMS for p in init.params):
                    found[cls_info.name] = cls_info
        return found

    def _check_site(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        fn: FunctionInfo,
        call: ast.Call,
        sketch_classes: Dict[str, ClassInfo],
        pool_cache: Dict[Tuple[str, str], bool],
        violations: list,
    ) -> None:
        receiver = call.func.value
        argument = call.args[0]
        receiver_type = self._infer_type(index, module, fn, receiver)
        argument_type = self._infer_type(index, module, fn, argument)
        sketch_name = (
            receiver_type
            if receiver_type in sketch_classes
            else argument_type
            if argument_type in sketch_classes
            else None
        )
        if sketch_name is None:
            return
        sketch_cls = sketch_classes[sketch_name]
        method = call.func.attr
        receiver_cfg = self._config(index, module, fn, receiver, sketch_cls)
        argument_cfg = self._config(index, module, fn, argument, sketch_cls)
        config_names = "/".join(
            p for p in sketch_cls.init.params if p in self.CONFIG_PARAMS
        )
        if receiver_cfg is not None and argument_cfg is not None:
            if receiver_cfg == argument_cfg:
                return
            violations.append(
                self.violation_at(
                    module,
                    call,
                    f"{sketch_name}.{method}() joins sketches built with "
                    f"differing constructor configuration ({config_names}): "
                    f"{self._fmt(receiver_cfg)} vs {self._fmt(argument_cfg)} — "
                    "Lemma 2 unions require identical parameters",
                )
            )
            return
        if (
            fn.owner is not None
            and receiver_type == sketch_name
            and argument_type == sketch_name
        ):
            key = (fn.owner.qualname, sketch_cls.qualname)
            if key not in pool_cache:
                pool_cache[key] = self._class_pool_consistent(
                    index, fn.owner, sketch_cls
                )
            if pool_cache[key]:
                return
        violations.append(
            self.violation_at(
                module,
                call,
                f"{sketch_name}.{method}() call site cannot prove the receiver "
                f"and argument share constructor configuration ({config_names}); "
                "trace both to one construction site or gate on explicit "
                "compatibility (Lemma 2 requires identical parameters)",
            )
        )

    @staticmethod
    def _fmt(config: Dict[str, str]) -> str:
        return "(" + ", ".join(f"{k}={v}" for k, v in sorted(config.items())) + ")"

    # -- type inference -------------------------------------------------
    def _infer_type(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        fn: FunctionInfo,
        expr: ast.AST,
        depth: int = 0,
    ) -> Optional[str]:
        if depth > 6 or expr is None:
            return None
        if isinstance(expr, ast.Name):
            ann = self._param_annotation(fn, expr.id)
            if ann is not None:
                return annotation_class_name(ann)
            assigned = self._last_assignment(fn, expr.id)
            if assigned is not None:
                return self._infer_type(index, module, fn, assigned, depth + 1)
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.owner is not None
            ):
                return annotation_class_name(fn.owner.attr_annotations.get(expr.attr))
            return None
        if isinstance(expr, ast.Subscript):
            return self._mapping_value_type(fn, expr.value)
        if isinstance(expr, ast.Call):
            dotted = _call_dotted_name(expr)
            if dotted is not None:
                resolved = index.resolve_call(module, dotted, fn.owner)
                if resolved is not None:
                    kind, target = resolved
                    if kind == "class":
                        return target.name
                    if kind == "function":
                        return annotation_class_name(target.node.returns)
            if isinstance(expr.func, ast.Attribute):
                attr = expr.func.attr
                if attr == "copy":
                    return self._infer_type(index, module, fn, expr.func.value, depth + 1)
                if attr in ("get", "setdefault", "pop"):
                    return self._mapping_value_type(fn, expr.func.value)
            return None
        return None

    @staticmethod
    def _param_annotation(fn: FunctionInfo, name: str) -> Optional[ast.AST]:
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return arg.annotation
        return None

    @staticmethod
    def _last_assignment(fn: FunctionInfo, name: str) -> Optional[ast.AST]:
        found: Optional[ast.AST] = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == name:
                    found = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    found = node.value
        return found

    def _mapping_value_type(self, fn: FunctionInfo, container: ast.AST) -> Optional[str]:
        if (
            isinstance(container, ast.Attribute)
            and isinstance(container.value, ast.Name)
            and container.value.id == "self"
            and fn.owner is not None
        ):
            return mapping_value_class(fn.owner.attr_annotations.get(container.attr))
        if isinstance(container, ast.Name):
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == container.id
                ):
                    return mapping_value_class(node.annotation)
        return None

    # -- configuration tracing ------------------------------------------
    def _config(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        fn: FunctionInfo,
        expr: ast.AST,
        sketch_cls: ClassInfo,
        depth: int = 0,
    ) -> Optional[Dict[str, str]]:
        if depth > 4 or expr is None:
            return None
        if isinstance(expr, ast.Call):
            dotted = _call_dotted_name(expr)
            if dotted is not None:
                resolved = index.resolve_call(module, dotted, fn.owner)
                if (
                    resolved is not None
                    and resolved[0] == "class"
                    and resolved[1] is sketch_cls
                ):
                    return self._normalize_construction(fn, expr, sketch_cls)
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "copy":
                return self._config(
                    index, module, fn, expr.func.value, sketch_cls, depth + 1
                )
            return None
        if isinstance(expr, ast.Name):
            assigned = self._last_assignment(fn, expr.id)
            if assigned is not None:
                return self._config(index, module, fn, assigned, sketch_cls, depth + 1)
        return None

    def _normalize_construction(
        self, fn: FunctionInfo, call: ast.Call, sketch_cls: ClassInfo
    ) -> Optional[Dict[str, str]]:
        init = sketch_cls.init
        binding = bind_arguments(init, call)
        if binding is None:
            return None
        defaults = init.param_defaults()
        config: Dict[str, str] = {}
        for param in init.params:
            if param not in self.CONFIG_PARAMS:
                continue
            expr = binding.get(param, defaults.get(param))
            if expr is None:
                return None
            token = self._token(expr, fn.owner)
            if token is None:
                return None
            config[param] = token
        return config

    @staticmethod
    def _token(expr: ast.AST, owner: Optional[ClassInfo]) -> Optional[str]:
        if isinstance(expr, ast.Constant):
            return f"const:{expr.value!r}"
        if isinstance(expr, ast.Name):
            return f"name:{expr.id}"
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            alias = owner.init_aliases.get(expr.attr) if owner is not None else None
            if alias is not None:
                return f"name:{alias}"
            return f"attr:self.{expr.attr}"
        if isinstance(expr, ast.Subscript):
            try:
                return "expr:" + ast.dump(expr)
            except Exception:  # pragma: no cover - dump never fails on ast
                return None
        return None

    def _class_pool_consistent(
        self, index: ProjectIndex, owner: ClassInfo, sketch_cls: ClassInfo
    ) -> bool:
        configs: List[Dict[str, str]] = []
        for method in owner.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _call_dotted_name(node)
                if dotted is None:
                    continue
                resolved = index.resolve_call(method.module, dotted, owner)
                if (
                    resolved is None
                    or resolved[0] != "class"
                    or resolved[1] is not sketch_cls
                ):
                    continue
                config = self._normalize_construction(method, node, sketch_cls)
                if config is None:
                    return False
                configs.append(config)
        if not configs:
            return False
        first = configs[0]
        return all(config == first for config in configs[1:])


# ----------------------------------------------------------------------
# R106 — timing-API imports outside the instrumented layer
# ----------------------------------------------------------------------


@register
class TimingImportsOutsideTimer(ProjectRule):
    """Flag bindings of the ``time`` measurement API outside timer/obs.

    R006 catches literal ``time.perf_counter()`` call sites; this rule
    closes the two evasions a per-file literal match cannot see —
    ``from time import perf_counter as tick`` and ``import time as t``
    — by inspecting every module's import bindings.
    """

    rule_id = "R106"
    name = "no-timing-imports-outside-timer"
    description = (
        "Binding the time-module measurement API (from time import "
        "perf_counter/…, import time as alias) outside repro/utils/timer.py "
        "and repro/obs/ lets clock reads evade R006; route timing through "
        "the instrumented layer instead."
    )
    scopes = None

    def check_project(self, index: ProjectIndex) -> list:
        violations = []
        for module in index.modules.values():
            if timing_exempt(module.path, module.subpackage):
                continue
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.ImportFrom)
                    and node.module == "time"
                    and node.level == 0
                ):
                    for alias in node.names:
                        if alias.name not in TIMING_ATTRS:
                            continue
                        bound = alias.asname or alias.name
                        violations.append(
                            self.violation_at(
                                module,
                                node,
                                f"'from time import {alias.name}' binds the timing "
                                f"API as {bound!r} outside the instrumented layer; "
                                "use repro.utils.timer or repro.obs instead",
                            )
                        )
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "time" and alias.asname is not None:
                            violations.append(
                                self.violation_at(
                                    module,
                                    node,
                                    f"'import time as {alias.asname}' hides clock "
                                    "reads from R006's literal matching; import "
                                    "repro.utils.timer or repro.obs instead",
                                )
                            )
        return violations
