"""Concurrency lock model and rules R201–R205.

The serving layer made the reproduction genuinely concurrent — a
``ReadWriteLock``-guarded hot snapshot swap, a mutex-guarded LRU cache,
``ThreadingHTTPServer`` handler threads and per-family metric locks —
and none of the value-oriented rules (R0xx/R1xx) can see a data race.
This module adds the lock-discipline layer, in the engine's existing
two-tier shape:

* a **lock model** shared by all five rules: which ``self``-attributes
  of a class are locks (``threading.Lock``/``RLock``/``Condition`` or
  the serving layer's ``ReadWriteLock``), which ``with`` statements
  acquire them (``with self._lock:``, ``with self._rw.read():`` /
  ``.write()``), which locks are *held* at every attribute access —
  including accesses in private helpers whose callers all hold a lock —
  and explicit ``# repro-lint: guarded-by=<lock_attr>`` field
  annotations on assignments in ``__init__`` or class-body annotations;
* **file rules** (run per file, parallel-safe): **R201** guarded-field
  discipline, **R204** non-atomic read-modify-write, **R205** escaping
  lock-guarded mutable state;
* **project rules** (run once over the :class:`ProjectIndex`): **R202**
  lock-order inversion across the call graph (ABBA cycles), **R203**
  blocking calls — I/O, ``time.sleep``, ``Thread.join``, snapshot
  load/save — made (transitively) while a lock is held.

Heuristics and escape hatches
-----------------------------
The model is conservative in both directions where it must be:

* fields that are never written outside ``__init__`` are treated as
  immutable-after-construction and exempt from guard inference;
* a field initialised from a same-module class that owns locks of its
  own (``self._cache = SpreadCache(...)``) delegates its thread safety
  to that class and is exempt (the delegate's methods are analysed on
  their own, and cross-object calls still feed R202/R203);
* bodies of functions nested inside methods are skipped — a closure
  runs at an unknown time under unknown locks;
* deliberate lock-free fast paths (double-checked locking, copy-on-
  write reads) are silenced per line with ``# repro-lint:
  disable=R201`` next to a comment explaining why they are safe.

The runtime counterpart of this static pass is
:mod:`repro.lint.locktrace` (``REPRO_DEBUG_LOCKS=1``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    annotation_class_name,
)
from repro.lint.rules import Rule, register

__all__ = [
    "LOCK_CONSTRUCTORS",
    "ClassLockModel",
    "build_class_models",
    "GuardedFieldDiscipline",
    "LockOrderInversion",
    "BlockingCallUnderLock",
    "NonAtomicSharedUpdate",
    "EscapingGuardedState",
]

#: Constructor short names that create a lock object.  ``ReadWriteLock``
#: is the serving layer's reader/writer lock; its ``.read()`` /
#: ``.write()`` context managers acquire the same logical lock.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "ReadWriteLock"})

_GUARDED_BY_RE = re.compile(r"#\s*repro-lint:\s*guarded-by=([A-Za-z_][A-Za-z0-9_]*)")

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Literal nodes whose value is a fresh mutable container.
_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)

#: Constructor short names that build a mutable container.
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


# ----------------------------------------------------------------------
# The lock model
# ----------------------------------------------------------------------


@dataclass
class FieldAccess:
    """One ``self.<attr>`` access with the locks held at that point."""

    attr: str
    method: str
    node: ast.AST
    held: FrozenSet[str]
    is_write: bool


@dataclass
class RmwEvent:
    """A read-modify-write of shared state (``self.x += 1``, check-then-act)."""

    attr: str
    method: str
    node: ast.AST
    held: FrozenSet[str]
    description: str


@dataclass
class EscapeEvent:
    """A bare ``return self.<attr>`` / ``yield self.<attr>``."""

    attr: str
    method: str
    node: ast.AST
    kind: str  # "return" | "yield"


@dataclass
class ClassLockModel:
    """Everything the concurrency rules need to know about one class."""

    node: ast.ClassDef
    lock_attrs: Set[str] = field(default_factory=set)
    #: Explicit ``guarded-by`` declarations: field → (lock attr, anchor).
    guarded_by: Dict[str, Tuple[str, ast.AST]] = field(default_factory=dict)
    accesses: List[FieldAccess] = field(default_factory=list)
    rmw_events: List[RmwEvent] = field(default_factory=list)
    escapes: List[EscapeEvent] = field(default_factory=list)
    #: Fields written (assigned, aug-assigned, item-stored or mutated via
    #: a mutator method) outside ``__init__``.
    written_fields: Set[str] = field(default_factory=set)
    #: Fields initialised to a fresh mutable container in ``__init__``.
    mutable_fields: Set[str] = field(default_factory=set)
    #: Fields holding an instance of a same-module class that owns locks
    #: — thread safety is delegated to that class.
    delegate_fields: Set[str] = field(default_factory=set)
    #: Locks guaranteed held on entry to each private helper method
    #: (the intersection over its intra-class call sites).
    entry_held: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def effective_held(self, access_method: str, held: FrozenSet[str]) -> FrozenSet[str]:
        """Locks held at an access: lexical ``with`` regions plus the
        locks every caller of the enclosing private helper holds."""
        return held | self.entry_held.get(access_method, frozenset())


def _attr_of_self(node: ast.AST) -> Optional[str]:
    """``X`` for a ``self.X`` attribute expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_expr_attr(expr: ast.AST, lock_attrs: Set[str]) -> Optional[str]:
    """The lock attribute a ``with``-item acquires, if any.

    Recognises ``self._lock`` and ``self._rw.read()`` / ``.write()``
    (both sides of a :class:`ReadWriteLock` map to the same lock).
    """
    target = expr
    if (
        isinstance(target, ast.Call)
        and isinstance(target.func, ast.Attribute)
        and target.func.attr in ("read", "write")
    ):
        target = target.func.value
    attr = _attr_of_self(target)
    if attr is not None and attr in lock_attrs:
        return attr
    return None


def _expr_dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_dotted(call: ast.Call) -> Optional[str]:
    return _expr_dotted(call.func)


def _is_lock_constructor(value: ast.AST) -> bool:
    # ``lock if lock is not None else threading.Lock()`` (the shared
    # family-lock idiom) and ``lock or threading.Lock()`` count too.
    if isinstance(value, ast.IfExp):
        return _is_lock_constructor(value.body) or _is_lock_constructor(value.orelse)
    if isinstance(value, ast.BoolOp):
        return any(_is_lock_constructor(operand) for operand in value.values)
    if not isinstance(value, ast.Call):
        return False
    dotted = _call_dotted(value)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in LOCK_CONSTRUCTORS


def _is_mutable_value(value: Optional[ast.AST]) -> bool:
    if value is None:
        return False
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        dotted = _call_dotted(value)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


def _method_defs(cls_node: ast.ClassDef) -> List[ast.AST]:
    return [
        stmt
        for stmt in cls_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _find_lock_attrs(cls_node: ast.ClassDef) -> Set[str]:
    """Self-attributes assigned from a lock constructor in any method."""
    locks: Set[str] = set()
    for method in _method_defs(cls_node):
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_lock_constructor(value):
                continue
            for target in targets:
                attr = _attr_of_self(target)
                if attr is not None:
                    locks.add(attr)
    return locks


class _MethodWalker:
    """Walks one method body tracking the set of locks lexically held."""

    def __init__(self, model: ClassLockModel, method_name: str) -> None:
        self.model = model
        self.method = method_name
        #: ``self.method(...)`` call sites: (callee, held-at-call).
        self.self_calls: List[Tuple[str, FrozenSet[str]]] = []

    def walk(self, method_node: ast.AST) -> None:
        for stmt in method_node.body:
            self._visit(stmt, frozenset())

    # -- dispatch -------------------------------------------------------
    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                attr = _lock_expr_attr(item.context_expr, self.model.lock_attrs)
                if attr is not None:
                    inner = inner | {attr}
                else:
                    self._visit(item.context_expr, held)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # a nested function runs later, under unknown locks
        if isinstance(node, ast.Attribute):
            self._record_attribute(node, held)
        elif isinstance(node, ast.Call):
            self._record_call(node, held)
        elif isinstance(node, ast.AugAssign):
            self._record_augassign(node, held)
        elif isinstance(node, ast.Assign):
            self._record_assign(node, held)
        elif isinstance(node, ast.If):
            self._record_check_then_act(node, held)
        elif isinstance(node, ast.Return):
            self._record_escape(node, node.value, "return", held)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._record_escape(node, node.value, "yield", held)
        elif isinstance(node, ast.Subscript):
            self._record_subscript(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    # -- recorders ------------------------------------------------------
    def _access(self, attr: str, node: ast.AST, held: FrozenSet[str], is_write: bool) -> None:
        self.model.accesses.append(
            FieldAccess(attr=attr, method=self.method, node=node, held=held, is_write=is_write)
        )
        if is_write and self.method != "__init__":
            self.model.written_fields.add(attr)

    def _record_attribute(self, node: ast.Attribute, held: FrozenSet[str]) -> None:
        attr = _attr_of_self(node)
        if attr is None or attr in self.model.lock_attrs:
            return
        self._access(attr, node, held, isinstance(node.ctx, (ast.Store, ast.Del)))

    def _record_subscript(self, node: ast.Subscript, held: FrozenSet[str]) -> None:
        if not isinstance(node.ctx, (ast.Store, ast.Del)):
            return
        attr = _attr_of_self(node.value)
        if attr is not None and self.method != "__init__":
            self.model.written_fields.add(attr)

    def _record_call(self, node: ast.Call, held: FrozenSet[str]) -> None:
        dotted = _call_dotted(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] != "self" or len(parts) < 2:
            return
        if len(parts) == 2:
            self.self_calls.append((parts[1], held))
        # A mutator method on a field (``self._entries.clear()``) writes it.
        if (
            len(parts) == 3
            and parts[2] in MUTATOR_METHODS
            and parts[1] not in self.model.lock_attrs
            and self.method != "__init__"
        ):
            self.model.written_fields.add(parts[1])

    def _rmw(self, attr: str, node: ast.AST, held: FrozenSet[str], description: str) -> None:
        if self.method == "__init__" or attr in self.model.lock_attrs:
            return
        self.model.rmw_events.append(
            RmwEvent(attr=attr, method=self.method, node=node, held=held, description=description)
        )

    def _record_augassign(self, node: ast.AugAssign, held: FrozenSet[str]) -> None:
        target = node.target
        attr = _attr_of_self(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = _attr_of_self(target.value)
            if attr is not None:
                self._rmw(attr, node, held, f"augmented item assignment on self.{attr}")
                return
        if attr is not None:
            self._rmw(attr, node, held, f"self.{attr} {_op_symbol(node.op)}= ...")

    def _record_assign(self, node: ast.Assign, held: FrozenSet[str]) -> None:
        for target in node.targets:
            attr = _attr_of_self(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _attr_of_self(target.value)
            if attr is None:
                continue
            if self._reads_field(node.value, attr):
                self._rmw(
                    attr, node, held, f"self.{attr} is read and written back in one statement"
                )

    def _record_check_then_act(self, node: ast.If, held: FrozenSet[str]) -> None:
        tested = {
            attr
            for sub in ast.walk(node.test)
            for attr in [_attr_of_self(sub)]
            if attr is not None and attr not in self.model.lock_attrs
        }
        if not tested:
            return
        for stmt in node.body:
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                attr = _attr_of_self(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = _attr_of_self(target.value)
                if attr in tested:
                    self._rmw(
                        attr,
                        stmt,
                        held,
                        f"check-then-act: the test reads self.{attr} and the body "
                        "writes it",
                    )

    @staticmethod
    def _reads_field(expr: ast.AST, attr: str) -> bool:
        return any(
            _attr_of_self(sub) == attr and isinstance(sub.ctx, ast.Load)
            for sub in ast.walk(expr)
            if isinstance(sub, ast.Attribute)
        )

    def _record_escape(
        self, node: ast.AST, value: Optional[ast.AST], kind: str, held: FrozenSet[str]
    ) -> None:
        attr = _attr_of_self(value) if value is not None else None
        if attr is not None and attr not in self.model.lock_attrs:
            self.model.escapes.append(
                EscapeEvent(attr=attr, method=self.method, node=node, kind=kind)
            )


def _op_symbol(op: ast.AST) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Mod: "%",
        ast.BitOr: "|",
        ast.BitAnd: "&",
        ast.BitXor: "^",
    }.get(type(op), "?")


def _collect_guarded_by(
    model: ClassLockModel, cls_node: ast.ClassDef, source_lines: Sequence[str]
) -> None:
    """``# repro-lint: guarded-by=<lock>`` on ``__init__`` assignments to
    ``self.<field>`` or on class-body ``field: T`` annotations."""

    def note(attr: str, anchor: ast.AST) -> None:
        lineno = getattr(anchor, "lineno", 0)
        if not 1 <= lineno <= len(source_lines):
            return
        match = _GUARDED_BY_RE.search(source_lines[lineno - 1])
        if match:
            model.guarded_by[attr] = (match.group(1), anchor)

    for stmt in cls_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            note(stmt.target.id, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    attr = _attr_of_self(target)
                    if attr is not None:
                        note(attr, node)


def _collect_init_fields(
    model: ClassLockModel, cls_node: ast.ClassDef, lock_owner_names: Set[str]
) -> None:
    """Mutable-container and delegated-lock fields from ``__init__``."""
    for method in _method_defs(cls_node):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            targets = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                attr = _attr_of_self(target)
                if attr is None:
                    continue
                if _is_mutable_value(value):
                    model.mutable_fields.add(attr)
                if isinstance(value, ast.Call):
                    dotted = _call_dotted(value)
                    if dotted is not None and dotted.rsplit(".", 1)[-1] in lock_owner_names:
                        model.delegate_fields.add(attr)


def _compute_entry_held(model: ClassLockModel, call_sites: Dict[str, List[Tuple[str, FrozenSet[str]]]]) -> None:
    """Fixpoint: a private helper is entered holding the intersection of
    the locks held at every intra-class call site (callers' entry locks
    included, so chains of helpers resolve)."""
    private = {
        name
        for name in call_sites
        if name.startswith("_") and not name.startswith("__")
    }
    top = frozenset(model.lock_attrs)
    entry: Dict[str, FrozenSet[str]] = {name: top for name in private}
    for _ in range(len(private) + 1):
        changed = False
        for name in private:
            held_sets = [
                held | entry.get(caller, frozenset())
                for caller, held in call_sites[name]
            ]
            combined: FrozenSet[str] = held_sets[0]
            for held in held_sets[1:]:
                combined = combined & held
            if combined != entry[name]:
                entry[name] = combined
                changed = True
        if not changed:
            break
    model.entry_held = entry


def _base_names(cls_node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in cls_node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _inherited_lock_attrs(
    cls_node: ast.ClassDef, by_name: Dict[str, ast.ClassDef]
) -> Set[str]:
    """Own plus (transitively, same-module) base-class lock attributes.

    ``Counter.inc`` guards with the ``self._lock`` its ``Metric`` base
    creates; without walking bases the subclass would not look like a
    lock-owning class at all.
    """
    locks: Set[str] = set()
    stack = [cls_node]
    seen: Set[str] = set()
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        locks |= _find_lock_attrs(current)
        for base in _base_names(current):
            if base in by_name:
                stack.append(by_name[base])
    return locks


def build_class_models(
    tree: ast.Module, source: str
) -> List[ClassLockModel]:
    """Lock models for every lock-owning class in a parsed module."""
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    by_name = {cls.name: cls for cls in classes}
    lock_owner_names = {
        cls.name for cls in classes if _inherited_lock_attrs(cls, by_name)
    }
    source_lines = source.splitlines()
    models: List[ClassLockModel] = []
    for cls_node in classes:
        lock_attrs = _inherited_lock_attrs(cls_node, by_name)
        if not lock_attrs:
            continue
        model = ClassLockModel(node=cls_node, lock_attrs=lock_attrs)
        _collect_guarded_by(model, cls_node, source_lines)
        _collect_init_fields(model, cls_node, lock_owner_names)
        call_sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
        for method in _method_defs(cls_node):
            walker = _MethodWalker(model, method.name)
            walker.walk(method)
            for callee, held in walker.self_calls:
                call_sites.setdefault(callee, []).append((method.name, held))
        _compute_entry_held(model, call_sites)
        models.append(model)
    return models


# ----------------------------------------------------------------------
# R201 — guarded-field discipline (file rule)
# ----------------------------------------------------------------------


@register
class GuardedFieldDiscipline(Rule):
    """Fields guarded by a lock in one method must not go bare in another."""

    rule_id = "R201"
    name = "guarded-field-discipline"
    description = (
        "In a class that owns locks, a field accessed under a lock in one "
        "method and bare in another (or contradicting its explicit "
        "# repro-lint: guarded-by=<lock_attr> annotation) is a data race; "
        "hold the lock on every access or annotate the intended discipline."
    )
    scopes = None  # everywhere under src/repro

    def check(self, ctx) -> list:
        violations: list = []
        for model in build_class_models(ctx.tree, ctx.source):
            self._check_annotations(ctx, model, violations)
            self._check_inferred(ctx, model, violations)
        return violations

    # -- explicit guarded-by declarations -------------------------------
    def _check_annotations(self, ctx, model: ClassLockModel, violations: list) -> None:
        for attr, (lock, anchor) in sorted(model.guarded_by.items()):
            if lock not in model.lock_attrs:
                violations.append(
                    self.violation(
                        ctx,
                        anchor,
                        f"field {attr!r} declares guarded-by={lock} but "
                        f"{model.node.name} has no lock attribute self.{lock}",
                    )
                )
                continue
            for access in model.accesses:
                if access.attr != attr or access.method == "__init__":
                    continue
                held = model.effective_held(access.method, access.held)
                if lock not in held:
                    violations.append(
                        self.violation(
                            ctx,
                            access.node,
                            f"field {attr!r} is declared guarded-by={lock} but "
                            f"{access.method}() accesses it without holding "
                            f"self.{lock}",
                        )
                    )

    # -- inferred discipline --------------------------------------------
    def _check_inferred(self, ctx, model: ClassLockModel, violations: list) -> None:
        by_field: Dict[str, List[FieldAccess]] = {}
        for access in model.accesses:
            if access.method == "__init__":
                continue
            if access.attr in model.guarded_by or access.attr in model.delegate_fields:
                continue
            by_field.setdefault(access.attr, []).append(access)
        for attr, accesses in sorted(by_field.items()):
            if attr not in model.written_fields:
                continue  # immutable after __init__: publication-safe
            guarded = [
                a for a in accesses if model.effective_held(a.method, a.held)
            ]
            if not guarded:
                continue
            lock = self._dominant_lock(model, guarded)
            flagged: Set[Tuple[str, str]] = set()
            for access in accesses:
                if model.effective_held(access.method, access.held):
                    continue
                witness = next(
                    (g for g in guarded if g.method != access.method), None
                )
                if witness is None:
                    continue
                key = (attr, access.method)
                if key in flagged:
                    continue
                flagged.add(key)
                violations.append(
                    self.violation(
                        ctx,
                        access.node,
                        f"field {attr!r} is accessed under self.{lock} in "
                        f"{witness.method}() but without any lock in "
                        f"{access.method}(); guard it or annotate the field "
                        "with # repro-lint: guarded-by=<lock_attr>",
                    )
                )

    @staticmethod
    def _dominant_lock(model: ClassLockModel, guarded: List[FieldAccess]) -> str:
        counts: Dict[str, int] = {}
        for access in guarded:
            for lock in model.effective_held(access.method, access.held):
                counts[lock] = counts.get(lock, 0) + 1
        return max(sorted(counts), key=lambda lock: counts[lock])


# ----------------------------------------------------------------------
# R204 — non-atomic read-modify-write (file rule)
# ----------------------------------------------------------------------


@register
class NonAtomicSharedUpdate(Rule):
    """Read-modify-write on shared attributes must happen under a lock."""

    rule_id = "R204"
    name = "non-atomic-shared-update"
    description = (
        "In a class that owns locks, self.x += 1, self.x = f(self.x) and "
        "check-then-act updates of shared dicts outside any lock region "
        "lose updates under concurrency; perform the whole read-modify-"
        "write while holding the lock."
    )
    scopes = None  # everywhere under src/repro

    def check(self, ctx) -> list:
        violations: list = []
        for model in build_class_models(ctx.tree, ctx.source):
            for event in model.rmw_events:
                if event.attr in model.delegate_fields:
                    continue
                if model.effective_held(event.method, event.held):
                    continue
                violations.append(
                    self.violation(
                        ctx,
                        event.node,
                        f"non-atomic read-modify-write ({event.description}) in "
                        f"{event.method}() without holding any of the class's "
                        f"locks ({', '.join(sorted(model.lock_attrs))})",
                    )
                )
        return violations


# ----------------------------------------------------------------------
# R205 — escaping lock-guarded mutable state (file rule)
# ----------------------------------------------------------------------


@register
class EscapingGuardedState(Rule):
    """Lock-guarded mutable containers must not escape by reference."""

    rule_id = "R205"
    name = "escaping-guarded-state"
    description = (
        "Returning or yielding a reference to a lock-guarded mutable "
        "container hands callers unsynchronised access after the lock is "
        "released; return a copy or an immutable snapshot instead."
    )
    scopes = None  # everywhere under src/repro

    def check(self, ctx) -> list:
        violations: list = []
        for model in build_class_models(ctx.tree, ctx.source):
            guarded_mutable = self._guarded_mutable_fields(model)
            for escape in model.escapes:
                if escape.attr not in guarded_mutable:
                    continue
                violations.append(
                    self.violation(
                        ctx,
                        escape.node,
                        f"{escape.kind} of self.{escape.attr} leaks a reference "
                        f"to lock-guarded mutable state out of "
                        f"{escape.method}(); return a copy (dict(...), "
                        "list(...)) or an immutable snapshot",
                    )
                )
        return violations

    @staticmethod
    def _guarded_mutable_fields(model: ClassLockModel) -> Set[str]:
        guarded: Set[str] = {
            attr
            for attr, (lock, _anchor) in model.guarded_by.items()
            if lock in model.lock_attrs
        }
        for access in model.accesses:
            if access.method == "__init__":
                continue
            if model.effective_held(access.method, access.held):
                if access.attr in model.written_fields:
                    guarded.add(access.attr)
        return {
            attr
            for attr in guarded
            if attr in model.mutable_fields and attr not in model.delegate_fields
        }


# ----------------------------------------------------------------------
# Project-wide lock analysis (shared by R202 / R203)
# ----------------------------------------------------------------------


#: Dotted-name suffixes (after the last ``.``) of calls that block:
#: sleeps, file/socket I/O, snapshot (de)serialisation, HTTP dispatch.
BLOCKING_CALL_NAMES = frozenset(
    {
        "sleep",
        "urlopen",
        "open",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "load_oracle",
        "save_oracle",
        "serve_forever",
        "handle_request",
        "check_call",
        "check_output",
        "communicate",
    }
)


@dataclass
class _Acquire:
    key: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _CallSite:
    dotted: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _BlockingOp:
    description: str
    held: FrozenSet[str]
    node: ast.AST


@dataclass
class _FunctionFacts:
    fn: FunctionInfo
    acquires: List[_Acquire] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    blocking: List[_BlockingOp] = field(default_factory=list)


class _ProjectLockWalker:
    """Per-function walker resolving lock keys project-wide.

    Lock identity keys: ``Class.qualname + "." + attr`` for self-attribute
    locks (every instance of the class shares one key — the standard
    over-approximation for ordering discipline), ``fn.qualname + "." +
    name`` for function-local locks, ``module.name + "." + name`` for
    module-level locks.
    """

    def __init__(self, analysis: "_ProjectLockAnalysis", fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        self.facts = _FunctionFacts(fn)
        self.local_locks: Dict[str, str] = {}
        self.thread_names: Set[str] = set()
        self.thread_collections: Set[str] = set()
        self._prescan(fn.node)

    # -- lock/thread name discovery -------------------------------------
    def _prescan(self, fn_node: ast.AST) -> None:
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_lock_constructor(value):
                    self.local_locks[target.id] = f"{self.fn.qualname}.{target.id}"
                elif self._is_thread_ctor(value):
                    self.thread_names.add(target.id)
                elif self._contains_thread_ctor(value):
                    self.thread_collections.add(target.id)
        # ``for t in pool:`` over a collection of threads taints ``t``.
        for node in ast.walk(fn_node):
            if (
                isinstance(node, (ast.For, ast.AsyncFor))
                and isinstance(node.target, ast.Name)
                and isinstance(node.iter, ast.Name)
                and node.iter.id in self.thread_collections
            ):
                self.thread_names.add(node.target.id)

    @staticmethod
    def _is_thread_ctor(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = _call_dotted(value)
        return dotted is not None and dotted.rsplit(".", 1)[-1] == "Thread"

    @classmethod
    def _contains_thread_ctor(cls, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Tuple)):
            return any(cls._is_thread_ctor(e) for e in value.elts)
        if isinstance(value, ast.ListComp):
            return cls._is_thread_ctor(value.elt)
        return False

    # -- lock-key resolution --------------------------------------------
    def _lock_key(self, expr: ast.AST) -> Optional[str]:
        target = expr
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Attribute)
            and target.func.attr in ("read", "write")
        ):
            target = target.func.value
        attr = _attr_of_self(target)
        if attr is not None:
            owner = self.fn.owner
            if owner is not None:
                return self.analysis.class_locks.get(owner.qualname, {}).get(attr)
            return None
        if isinstance(target, ast.Name):
            if target.id in self.local_locks:
                return self.local_locks[target.id]
            module_key = f"{self.fn.module.name}.{target.id}"
            if module_key in self.analysis.module_locks:
                return module_key
        return None

    # -- walk -----------------------------------------------------------
    def walk(self) -> _FunctionFacts:
        for stmt in self.fn.node.body:
            self._visit(stmt, frozenset())
        return self.facts

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                key = self._lock_key(item.context_expr)
                if key is not None:
                    self.facts.acquires.append(
                        _Acquire(key=key, held=inner, node=item.context_expr)
                    )
                    inner = inner | {key}
                else:
                    self._visit(item.context_expr, held)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # closures run later, under unknown locks
        if isinstance(node, ast.Call):
            self._record_call(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _record_call(self, call: ast.Call, held: FrozenSet[str]) -> None:
        dotted = _call_dotted(call)
        if dotted is None:
            return
        description = self._blocking_description(call, dotted, held)
        if description is not None:
            self.facts.blocking.append(
                _BlockingOp(description=description, held=held, node=call)
            )
            return
        self.facts.calls.append(_CallSite(dotted=dotted, held=held, node=call))

    def _blocking_description(
        self, call: ast.Call, dotted: str, held: FrozenSet[str]
    ) -> Optional[str]:
        parts = dotted.split(".")
        short = parts[-1]
        if short == "sleep":
            if dotted == "time.sleep" or self.fn.module.imports.get("sleep") == "time.sleep":
                return "time.sleep()"
            return None
        if short == "join":
            receiver = parts[0] if len(parts) == 2 else None
            if receiver is not None and receiver in self.thread_names:
                return f"{receiver}.join() (Thread.join)"
            return None
        if short == "wait":
            # ``cond.wait()`` on the very lock being held releases it
            # while waiting — the one legitimate blocking-under-lock.
            if isinstance(call.func, ast.Attribute):
                key = self._lock_key(call.func.value)
                if key is not None and key in held:
                    return None
            if len(parts) >= 2:
                return f"{dotted}()"
            return None
        if short in BLOCKING_CALL_NAMES:
            if short == "open" and dotted != "open":
                return None  # only the builtin, not arbitrary ``x.open``
            return f"{dotted}()"
        return None


class _ProjectLockAnalysis:
    """Acquisition graph, transitive lock/blocking summaries, edge sites."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: class qualname → {lock attr → canonical lock key}; inherited
        #: locks key on the *defining* class, so ``Counter._lock`` and
        #: ``Gauge._lock`` both canonicalise to ``Metric._lock``.
        self.class_locks: Dict[str, Dict[str, str]] = {}
        self.attr_classes: Dict[str, Dict[str, ClassInfo]] = {}
        self.module_locks: Set[str] = set()
        self.facts: Dict[str, _FunctionFacts] = {}
        self._collect_classes()
        self._collect_module_locks()
        for fn in index.all_functions():
            self.facts[fn.qualname] = _ProjectLockWalker(self, fn).walk()
        self.acquired_within = self._fixpoint_acquired()
        self.blocking_within = self._fixpoint_blocking()

    # -- collection -----------------------------------------------------
    def _collect_classes(self) -> None:
        for module in self.index.modules.values():
            for cls_info in module.classes.values():
                lock_keys = self._lock_keys_of(cls_info)
                if lock_keys:
                    self.class_locks[cls_info.qualname] = lock_keys
                self.attr_classes[cls_info.qualname] = self._attr_classes_of(
                    module, cls_info
                )

    def _lock_keys_of(self, cls_info: ClassInfo) -> Dict[str, str]:
        """Lock attrs visible on ``cls_info``, keyed by defining class."""
        keys: Dict[str, str] = {}
        stack = [cls_info]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for attr in _find_lock_attrs(current.node):
                # Nearest definition in the walk order wins; an attr
                # re-created by a subclass keys on the subclass.
                keys.setdefault(attr, f"{current.qualname}.{attr}")
            for base in current.node.bases:
                dotted = _expr_dotted(base)
                if dotted is None:
                    continue
                resolved = self.index.resolve_call(current.module, dotted, None)
                if resolved is not None and resolved[0] == "class":
                    stack.append(resolved[1])  # type: ignore[arg-type]
        return keys

    def _attr_classes_of(
        self, module: ModuleInfo, cls_info: ClassInfo
    ) -> Dict[str, ClassInfo]:
        """``self.<attr>`` → the class of the object it holds, where the
        ``__init__`` assignment or annotation names a resolvable class."""
        mapping: Dict[str, ClassInfo] = {}
        init = cls_info.init
        if init is not None:
            for node in ast.walk(init.node):
                targets: List[ast.AST] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                if not isinstance(value, ast.Call):
                    continue
                dotted = _call_dotted(value)
                if dotted is None:
                    continue
                resolved = self.index.resolve_call(module, dotted, cls_info)
                if resolved is None or resolved[0] != "class":
                    continue
                for target in targets:
                    attr = _attr_of_self(target)
                    if attr is not None:
                        mapping[attr] = resolved[1]  # type: ignore[assignment]
        for attr, annotation in cls_info.attr_annotations.items():
            if attr in mapping:
                continue
            class_name = annotation_class_name(annotation)
            if class_name is None:
                continue
            resolved = self.index.resolve_call(module, class_name, None)
            if resolved is not None and resolved[0] == "class":
                mapping[attr] = resolved[1]  # type: ignore[assignment]
        return mapping

    def _collect_module_locks(self) -> None:
        for module in self.index.modules.values():
            for stmt in module.tree.body:
                if isinstance(stmt, ast.Assign) and _is_lock_constructor(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks.add(f"{module.name}.{target.id}")

    # -- call resolution ------------------------------------------------
    def resolve_callee(self, fn: FunctionInfo, dotted: str) -> Optional[FunctionInfo]:
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 3 and fn.owner is not None:
            attr_cls = self.attr_classes.get(fn.owner.qualname, {}).get(parts[1])
            if attr_cls is not None:
                return attr_cls.methods.get(parts[2])
            return None
        resolved = self.index.resolve_call(fn.module, dotted, fn.owner)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "function":
            return target  # type: ignore[return-value]
        if kind == "class":
            return target.init  # type: ignore[union-attr]
        return None

    # -- fixpoints ------------------------------------------------------
    def _fixpoint_acquired(self) -> Dict[str, FrozenSet[str]]:
        acquired = {
            qualname: frozenset(acquire.key for acquire in facts.acquires)
            for qualname, facts in self.facts.items()
        }
        return self._propagate(acquired)

    def _fixpoint_blocking(self) -> Dict[str, FrozenSet[str]]:
        blocking = {
            qualname: frozenset(op.description for op in facts.blocking)
            for qualname, facts in self.facts.items()
        }
        return self._propagate(blocking)

    def _propagate(self, summary: Dict[str, FrozenSet[str]]) -> Dict[str, FrozenSet[str]]:
        for _ in range(len(self.facts) + 1):
            changed = False
            for qualname, facts in self.facts.items():
                combined = summary[qualname]
                for site in facts.calls:
                    callee = self.resolve_callee(facts.fn, site.dotted)
                    if callee is None:
                        continue
                    combined = combined | summary.get(callee.qualname, frozenset())
                if combined != summary[qualname]:
                    summary[qualname] = combined
                    changed = True
            if not changed:
                break
        return summary

    # -- the acquisition-order graph ------------------------------------
    def order_edges(self) -> Dict[Tuple[str, str], Tuple[FunctionInfo, ast.AST]]:
        """``(held, acquired)`` → first witnessing (function, site)."""
        edges: Dict[Tuple[str, str], Tuple[FunctionInfo, ast.AST]] = {}
        for facts in self.facts.values():
            for acquire in facts.acquires:
                for held in acquire.held:
                    if held != acquire.key:
                        edges.setdefault((held, acquire.key), (facts.fn, acquire.node))
            for site in facts.calls:
                if not site.held:
                    continue
                callee = self.resolve_callee(facts.fn, site.dotted)
                if callee is None:
                    continue
                for acquired in self.acquired_within.get(callee.qualname, frozenset()):
                    for held in site.held:
                        if held != acquired:
                            edges.setdefault(
                                (held, acquired), (facts.fn, site.node)
                            )
        return edges


_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectIndex, _ProjectLockAnalysis]" = (
    WeakKeyDictionary()
)


def _analysis_for(index: ProjectIndex) -> _ProjectLockAnalysis:
    analysis = _ANALYSIS_CACHE.get(index)
    if analysis is None:
        analysis = _ProjectLockAnalysis(index)
        _ANALYSIS_CACHE[index] = analysis
    return analysis


def _short_lock(key: str) -> str:
    """``OracleService._swap_lock`` from a fully qualified lock key."""
    parts = key.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else key


# ----------------------------------------------------------------------
# R202 — lock-order inversion (project rule)
# ----------------------------------------------------------------------


@register
class LockOrderInversion(Rule):
    """Flag acquisition-order cycles (potential ABBA deadlocks)."""

    rule_id = "R202"
    name = "lock-order-inversion"
    description = (
        "Two locks acquired in opposite orders on different code paths "
        "(directly or through resolved calls) can deadlock: the project-"
        "wide acquisition graph must stay acyclic."
    )
    scopes = None
    project_scope = True

    def check(self, ctx) -> list:
        return []

    def check_project(self, index: ProjectIndex) -> list:
        analysis = _analysis_for(index)
        edges = analysis.order_edges()
        adjacency: Dict[str, Set[str]] = {}
        for before, after in edges:
            adjacency.setdefault(before, set()).add(after)
        violations: list = []
        for (before, after), (fn, node) in sorted(
            edges.items(), key=lambda item: (item[1][0].module.path, item[1][1].lineno)
        ):
            if not self._reachable(adjacency, after, before):
                continue
            reverse = edges.get((after, before))
            where = ""
            if reverse is not None:
                rev_fn, rev_node = reverse
                where = (
                    f" (reverse order at {rev_fn.module.path}:{rev_node.lineno} "
                    f"in {rev_fn.name}())"
                )
            violations.append(
                self._violation_at(
                    fn.module,
                    node,
                    f"lock-order inversion: {_short_lock(after)} is acquired "
                    f"while holding {_short_lock(before)} here, but another "
                    f"path acquires them in the opposite order{where} — "
                    "potential ABBA deadlock",
                )
            )
        return violations

    @staticmethod
    def _reachable(adjacency: Dict[str, Set[str]], start: str, goal: str) -> bool:
        stack = [start]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(adjacency.get(current, ()))
        return False

    def _violation_at(self, module: ModuleInfo, node: ast.AST, message: str):
        from repro.lint.engine import Violation

        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


# ----------------------------------------------------------------------
# R203 — blocking call while holding a lock (project rule)
# ----------------------------------------------------------------------


@register
class BlockingCallUnderLock(Rule):
    """No I/O, sleeps or joins inside a lock region, even transitively."""

    rule_id = "R203"
    name = "blocking-call-under-lock"
    description = (
        "Blocking operations (file/socket I/O, time.sleep, Thread.join, "
        "snapshot load/save, HTTP serving) inside a with-lock region stall "
        "every other thread contending for the lock; move the slow work "
        "outside the critical section (the reload() pattern)."
    )
    scopes = None
    project_scope = True

    def check(self, ctx) -> list:
        return []

    def check_project(self, index: ProjectIndex) -> list:
        analysis = _analysis_for(index)
        violations: list = []
        for qualname in sorted(analysis.facts):
            facts = analysis.facts[qualname]
            for op in facts.blocking:
                if not op.held:
                    continue
                violations.append(
                    self._violation_at(
                        facts.fn.module,
                        op.node,
                        f"blocking call {op.description} while holding "
                        f"{self._held_text(op.held)}",
                    )
                )
            for site in facts.calls:
                if not site.held:
                    continue
                callee = analysis.resolve_callee(facts.fn, site.dotted)
                if callee is None:
                    continue
                reached = analysis.blocking_within.get(callee.qualname, frozenset())
                if not reached:
                    continue
                sample = sorted(reached)[0]
                violations.append(
                    self._violation_at(
                        facts.fn.module,
                        site.node,
                        f"call to {callee.name}() while holding "
                        f"{self._held_text(site.held)} reaches blocking "
                        f"{sample}",
                    )
                )
        return violations

    @staticmethod
    def _held_text(held: Iterable[str]) -> str:
        return ", ".join(_short_lock(key) for key in sorted(held))

    def _violation_at(self, module: ModuleInfo, node: ast.AST, message: str):
        from repro.lint.engine import Violation

        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )
