"""The Time-Constrained Information Cascade model (paper §2, Algorithm 1).

TCIC adapts the Independent Cascade model to interaction networks: infection
can only travel along *actual interactions*, in time order, and only while
the propagating chain is younger than the window ω.

Mechanics (one forward pass over the log):

* a seed node becomes active (infected) at its first interaction as a
  source; its ``activate_time`` starts the chain clock;
* when an active node ``u`` interacts with ``v`` at time ``t`` and
  ``t − activate_time(u) ≤ ω``, the infection crosses to ``v`` with
  probability ``p``;
* on infection ``v`` inherits the *chain clock*: ``activate_time(v)`` is set
  to ``activate_time(u)`` when that is newer than what ``v`` already has, so
  the window constrains the whole temporal path from the seed's activation
  (and a node reached by a fresher chain gets the fresher budget).

The model is the paper's *evaluation judge*: seed sets produced by IRS and
by the baselines are all scored by their expected TCIC spread.

A note on fidelity: the prose of §2 says seeds are infected "at their first
interaction", while the pseudo-code of Algorithm 1 re-assigns the seed's
``activate_time`` at *every* interaction it sources.  The two differ
materially: under the literal pseudo-code a seed gets a fresh ω-budget at
each of its interactions, which makes the p = 1 cascade from a single seed
coincide (up to an off-by-one on the duration bound) with its influence
reachability set — precisely the correspondence the paper's Figure 5
relies on (IRS-greedy tops every panel).  We therefore default to the
literal pseudo-code (``reset_seed_clock=True``) and expose
``reset_seed_clock=False`` for the prose variant; the ablation benchmark
compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Set

import repro.obs as obs
from repro.core.interactions import InteractionLog
from repro.obs import OBS_STATE as _OBS
from repro.utils.rng import RngLike, resolve_rng
from repro.utils.validation import (
    require_int,
    require_non_negative,
    require_probability,
    require_type,
)

__all__ = ["TCICResult", "run_tcic"]

Node = Hashable

_RUNS = obs.counter("tcic.runs", "TCIC cascade simulations executed.")
_INFECTIONS = obs.counter(
    "tcic.infections", "Successful non-seed infections across all TCIC runs."
)
_SPREAD = obs.histogram(
    "tcic.spread",
    "Active-node counts at the end of TCIC runs.",
    buckets=obs.DEFAULT_COUNT_BUCKETS,
)


@dataclass
class TCICResult:
    """Outcome of a single TCIC cascade run."""

    active: Set[Node]
    """Every node that ended the run infected (seeds included once active)."""

    activate_time: Dict[Node, int] = field(default_factory=dict)
    """Chain-clock value per active node (diagnostic)."""

    infections: int = 0
    """Number of successful non-seed infections (edge crossings)."""

    @property
    def spread(self) -> int:
        """Number of active nodes — Algorithm 1's return value."""
        return len(self.active)


def run_tcic(
    log: InteractionLog,
    seeds: Iterable[Node],
    window: int,
    probability: float,
    rng: RngLike = None,
    reset_seed_clock: bool = True,
) -> TCICResult:
    """Run one TCIC cascade (paper Algorithm 1) and return its result.

    Parameters
    ----------
    log:
        The interaction network, scanned once in forward time order.
    seeds:
        Seed set ``S``; unknown nodes are tolerated (they simply never
        interact).
    window:
        ω — a chain may infect only within ``activate_time + ω``.
    probability:
        ``p`` — per-interaction infection probability (the paper evaluates
        p = 0.5 and p = 1.0).
    rng:
        Seed or :class:`random.Random` for reproducible cascades.
    reset_seed_clock:
        When true (default — the literal Algorithm 1), a seed's clock
        restarts at every interaction it sources; when false, only the
        first interaction activates it (the §2 prose variant).  See the
        module docstring.
    """
    require_type(log, "log", InteractionLog)
    require_int(window, "window")
    require_non_negative(window, "window")
    require_probability(probability, "probability")
    generator = resolve_rng(rng)
    seed_set = set(seeds)

    activate_time: Dict[Node, int] = {}
    infections = 0

    for source, target, time in log:
        if source in seed_set and (reset_seed_clock or source not in activate_time):
            activate_time[source] = time
        source_clock = activate_time.get(source)
        if source_clock is None or time - source_clock > window:
            continue
        if probability < 1.0 and generator.random() >= probability:
            continue
        previous = activate_time.get(target)
        if previous is None:
            activate_time[target] = source_clock
            infections += 1
        elif source_clock > previous:
            # Already infected, but the fresher chain extends the budget.
            activate_time[target] = source_clock

    if _OBS.enabled:
        _RUNS.inc()
        _INFECTIONS.inc(infections)
        _SPREAD.observe(len(activate_time))
    return TCICResult(
        active=set(activate_time),
        activate_time=activate_time,
        infections=infections,
    )
