"""Monte-Carlo expected-spread estimation under the TCIC model.

Paper Figure 5 scores every method's seed set by its simulated spread.  With
p = 1 a single TCIC run is deterministic; with p < 1 the expectation is
estimated by averaging independent cascades, each driven by a decorrelated
child RNG so that a single experiment seed reproduces the whole study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Sequence

from repro.core.interactions import InteractionLog
from repro.simulation.tcic import run_tcic
from repro.utils.rng import RngLike, resolve_rng, spawn_rng
from repro.utils.validation import require_positive, require_type

__all__ = ["SpreadEstimate", "estimate_spread", "spread_curve"]

Node = Hashable


@dataclass(frozen=True)
class SpreadEstimate:
    """Mean and dispersion of TCIC spread over repeated cascades."""

    mean: float
    std: float
    runs: int
    samples: tuple

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.runs <= 1:
            return 0.0
        return self.std / math.sqrt(self.runs)


def estimate_spread(
    log: InteractionLog,
    seeds: Iterable[Node],
    window: int,
    probability: float,
    runs: int = 10,
    rng: RngLike = None,
    reset_seed_clock: bool = True,
) -> SpreadEstimate:
    """Estimate the expected TCIC spread of ``seeds`` by Monte Carlo.

    With ``probability == 1.0`` the cascade is deterministic and a single
    run is performed regardless of ``runs``.
    """
    require_type(log, "log", InteractionLog)
    if isinstance(runs, bool) or not isinstance(runs, int):
        raise TypeError("runs must be an int")
    require_positive(runs, "runs")
    generator = resolve_rng(rng)
    seed_list = list(seeds)

    effective_runs = 1 if probability >= 1.0 else runs
    samples: List[int] = []
    for repetition in range(effective_runs):
        child = spawn_rng(generator, repetition)
        result = run_tcic(
            log,
            seed_list,
            window,
            probability,
            rng=child,
            reset_seed_clock=reset_seed_clock,
        )
        samples.append(result.spread)

    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return SpreadEstimate(mean=mean, std=std, runs=len(samples), samples=tuple(samples))


def spread_curve(
    log: InteractionLog,
    seeds: Sequence[Node],
    ks: Sequence[int],
    window: int,
    probability: float,
    runs: int = 10,
    rng: RngLike = None,
) -> List[float]:
    """Expected spread of each prefix ``seeds[:k]`` for ``k`` in ``ks``.

    This is exactly a Figure 5 series: x-axis ``ks``, y-axis mean spread.
    """
    require_type(log, "log", InteractionLog)
    generator = resolve_rng(rng)
    curve: List[float] = []
    for index, k in enumerate(ks):
        if isinstance(k, bool) or not isinstance(k, int):
            raise TypeError("every k must be an int")
        if k < 0 or k > len(seeds):
            raise ValueError(f"k={k} out of range for {len(seeds)} seeds")
        child = spawn_rng(generator, index)
        estimate = estimate_spread(
            log, seeds[:k], window, probability, runs=runs, rng=child
        )
        curve.append(estimate.mean)
    return curve
