"""Time-Constrained Linear Threshold model (extension).

The paper adapts the Independent Cascade model to interaction networks
(TCIC, its Algorithm 1) and notes that classical influence models "such as
the Independent Cascade Model or Linear Threshold Model no longer suffice
as they do not take the temporal aspect into account" (§2).  It only
builds the IC adaptation; this module supplies the analogous **Linear
Threshold** adaptation, so seed sets can be cross-checked under a second,
structurally different judge:

* every node ``v`` draws a threshold ``θ_v ~ U[0, 1]`` per run;
* each *distinct* active neighbour ``u`` that interacts with ``v`` while
  inside its chain window contributes weight ``1 / indegree(v)``
  (the classical uniform LT weighting, with ``indegree`` counted on the
  flattened graph);
* ``v`` activates once the accumulated weight reaches ``θ_v``, inheriting
  the freshest contributing chain clock (same window semantics as TCIC:
  the budget constrains the whole temporal path from a seed activation,
  and by default a seed's clock re-arms at each of its interactions).

Relationship to TCIC: an LT activation needs at least one in-window
interaction from an active neighbour, so every TCLT cascade is contained
in the TCIC cascade at p = 1 over the same log — a containment the tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Set, Tuple

import repro.obs as obs
from repro.core.interactions import InteractionLog
from repro.obs import OBS_STATE as _OBS
from repro.utils.rng import RngLike, resolve_rng
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["TCLTResult", "run_tclt", "estimate_tclt_spread"]

Node = Hashable

_RUNS = obs.counter("tclt.runs", "TCLT cascade simulations executed.")
_SPREAD = obs.histogram(
    "tclt.spread",
    "Active-node counts at the end of TCLT runs.",
    buckets=obs.DEFAULT_COUNT_BUCKETS,
)


@dataclass
class TCLTResult:
    """Outcome of one TCLT cascade."""

    active: Set[Node]
    """All activated nodes (seeds included once they interact)."""

    thresholds: Dict[Node, float] = field(default_factory=dict)
    """The sampled thresholds (diagnostic)."""

    @property
    def spread(self) -> int:
        """Number of active nodes."""
        return len(self.active)


def run_tclt(
    log: InteractionLog,
    seeds: Iterable[Node],
    window: int,
    rng: RngLike = None,
    reset_seed_clock: bool = True,
) -> TCLTResult:
    """Run one Time-Constrained Linear Threshold cascade.

    Parameters mirror :func:`repro.simulation.tcic.run_tcic`, with the
    per-interaction coin replaced by threshold accumulation.
    """
    require_type(log, "log", InteractionLog)
    require_int(window, "window")
    require_non_negative(window, "window")
    generator = resolve_rng(rng)
    seed_set = set(seeds)

    # Uniform LT weights need in-degrees of the flattened graph.
    in_neighbours: Dict[Node, Set[Node]] = {}
    for source, target, _ in log:
        in_neighbours.setdefault(target, set()).add(source)

    # Deterministic per-node thresholds: draw in sorted node order so that
    # a fixed rng seed yields identical cascades across runs.
    thresholds: Dict[Node, float] = {}
    for node in sorted(log.nodes, key=repr):
        thresholds[node] = generator.random()

    activate_time: Dict[Node, int] = {}
    # accumulated[v]: set of distinct active in-neighbours whose in-window
    # interaction has been counted.
    contributors: Dict[Node, Set[Node]] = {}

    for source, target, time in log:
        if source in seed_set and (
            reset_seed_clock or source not in activate_time
        ):
            activate_time[source] = time
        source_clock = activate_time.get(source)
        if source_clock is None or time - source_clock > window:
            continue
        if target in activate_time:
            # Already active: a fresher chain still extends its budget.
            if source_clock > activate_time[target]:
                activate_time[target] = source_clock
            continue
        counted = contributors.setdefault(target, set())
        counted.add(source)
        weight = len(counted) / max(len(in_neighbours.get(target, ())), 1)
        if weight >= thresholds[target]:
            activate_time[target] = source_clock

    if _OBS.enabled:
        _RUNS.inc()
        _SPREAD.observe(len(activate_time))
    return TCLTResult(active=set(activate_time), thresholds=thresholds)


def estimate_tclt_spread(
    log: InteractionLog,
    seeds: Iterable[Node],
    window: int,
    runs: int = 10,
    rng: RngLike = None,
) -> float:
    """Mean TCLT spread over ``runs`` independent threshold draws."""
    require_type(log, "log", InteractionLog)
    if isinstance(runs, bool) or not isinstance(runs, int):
        raise TypeError("runs must be an int")
    if runs <= 0:
        raise ValueError(f"runs must be > 0, got {runs}")
    from repro.utils.rng import spawn_rng

    generator = resolve_rng(rng)
    seed_list = list(seeds)
    total = 0
    for repetition in range(runs):
        child = spawn_rng(generator, repetition)
        total += run_tclt(log, seed_list, window, rng=child).spread
    return total / runs
