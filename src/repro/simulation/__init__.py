"""The TCIC cascade model and Monte-Carlo spread estimation."""

from repro.simulation.spread import SpreadEstimate, estimate_spread, spread_curve
from repro.simulation.tcic import TCICResult, run_tcic
from repro.simulation.tclt import TCLTResult, estimate_tclt_spread, run_tclt

__all__ = [
    "TCICResult",
    "run_tcic",
    "SpreadEstimate",
    "estimate_spread",
    "spread_curve",
    "TCLTResult",
    "run_tclt",
    "estimate_tclt_spread",
]
