"""Seeded random-number-generation helpers.

All stochastic components of the library (dataset generators, the TCIC
simulator, SKIM ranks, ConTinEst transmission times) accept either an integer
seed or a ready-made :class:`random.Random` instance.  :func:`resolve_rng`
normalises the two forms so that every experiment in the repository is
reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import random
from typing import Optional, Union

__all__ = ["resolve_rng", "spawn_rng"]

RngLike = Union[int, random.Random, None]


def resolve_rng(rng: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``rng``.

    ``rng`` may be ``None`` (fresh unseeded generator), an ``int`` seed, or an
    existing :class:`random.Random` which is returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(
            f"rng must be None, an int seed, or random.Random, got {type(rng).__name__}"
        )
    return random.Random(rng)


def spawn_rng(parent: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator from ``parent``.

    Used when an experiment needs several decorrelated streams (e.g. one per
    Monte-Carlo repetition) that are still fully determined by the parent
    seed.  ``stream`` distinguishes the children.
    """
    if not isinstance(stream, int) or isinstance(stream, bool):
        raise TypeError(f"stream must be an int, got {type(stream).__name__}")
    seed = (parent.getrandbits(64) << 16) ^ (stream * 0x9E3779B97F4A7C15)
    return random.Random(seed & 0xFFFFFFFFFFFFFFFF)
