"""Wall-clock timing utilities used by the experiment harness."""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Timer", "time_call"]


class Timer:
    """A context manager that records elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ called before __enter__")
        self.elapsed = time.perf_counter() - self._start
        self._start = None


def time_call(func: Callable[[], object]) -> tuple[object, float]:
    """Call ``func()`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
