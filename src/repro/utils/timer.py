"""Wall-clock timing utilities used by the experiment harness.

This module (together with :mod:`repro.obs`) is the *only* place the
repro reads the clock directly — lint rules R006/R106 flag direct
``time.perf_counter()`` / ``time.time()`` calls anywhere else, so every
measurement flows through one instrumented layer.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Timer", "time_call", "wall_clock_unix"]


def wall_clock_unix() -> float:
    """Seconds since the Unix epoch (the one sanctioned wall-clock read).

    Serving-layer artifacts (access-log lines, SLO windows) need a real
    timestamp; algorithm code must keep passing times in explicitly.
    """
    return time.time()


class Timer:
    """A context manager that records elapsed wall-clock time.

    Sequential reuse is supported; *re-entrant* use is not — a second
    ``__enter__`` before the matching ``__exit__`` would silently discard
    the first start time, so it raises instead.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start_ns: Optional[int] = None
        self.elapsed_ns: int = 0

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recent completed timing."""
        return self.elapsed_ns / 1e9

    def __enter__(self) -> "Timer":
        if self._start_ns is not None:
            raise RuntimeError(
                "Timer is already running: re-entrant __enter__ would discard "
                "the active start time (use a second Timer instance)"
            )
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start_ns is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ called before __enter__")
        self.elapsed_ns = time.perf_counter_ns() - self._start_ns
        self._start_ns = None


def time_call(func: Callable[[], object]) -> tuple[object, float]:
    """Call ``func()`` and return ``(result, elapsed_seconds)``."""
    start_ns = time.perf_counter_ns()
    result = func()
    return result, (time.perf_counter_ns() - start_ns) / 1e9
