"""Shared argument-validation helpers.

Every public entry point of :mod:`repro` validates its arguments eagerly and
raises :class:`ValueError` / :class:`TypeError` with messages that name the
offending parameter.  Centralising the checks here keeps the error messages
consistent across the library and keeps the algorithm modules focused on the
algorithms themselves.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "require_int",
    "require_positive",
    "require_non_negative",
    "require_at_least",
    "require_probability",
    "require_power_of_two",
    "require_in_range",
    "require_type",
    "require_non_empty",
]


def require_int(value: Any, name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an int (bools excluded).

    Time stamps, windows and register counts are modelled as natural
    numbers throughout the paper; ``bool`` is rejected explicitly because
    it subclasses ``int`` and silently masquerades as 0/1.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")


def require_positive(value: Any, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is a number > 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: Any, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is a number >= 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_at_least(value: Any, name: str, minimum: float) -> None:
    """Raise :class:`ValueError` unless ``value >= minimum``.

    The one-sided counterpart of :func:`require_in_range`, for parameters
    with a hard floor but no ceiling (e.g. bottom-k sketch sizes, where
    ``k >= 3`` keeps the estimator's variance bound meaningful).
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


def require_probability(value: Any, name: str) -> None:
    """Raise unless ``value`` is a real number in the closed interval [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def require_power_of_two(value: Any, name: str) -> None:
    """Raise unless ``value`` is a positive integer power of two."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0 or value & (value - 1) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def require_in_range(value: Any, name: str, low: float, high: float) -> None:
    """Raise unless ``low <= value <= high``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_type(value: Any, name: str, expected: type | tuple[type, ...]) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")


def require_non_empty(value: Iterable[Any], name: str) -> None:
    """Raise :class:`ValueError` if ``value`` has length zero.

    Only works for sized containers; generators should be materialised by the
    caller first.
    """
    try:
        size = len(value)  # type: ignore[arg-type]
    except TypeError as exc:
        raise TypeError(f"{name} must be a sized container") from exc
    if size == 0:
        raise ValueError(f"{name} must not be empty")
