"""Small shared utilities: validation, RNG plumbing, timing."""

from repro.utils.rng import resolve_rng, spawn_rng
from repro.utils.timer import Timer, time_call
from repro.utils.validation import (
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_power_of_two,
    require_probability,
    require_type,
)

__all__ = [
    "resolve_rng",
    "spawn_rng",
    "Timer",
    "time_call",
    "require_in_range",
    "require_non_empty",
    "require_non_negative",
    "require_positive",
    "require_power_of_two",
    "require_probability",
    "require_type",
]
