"""Run provenance: where did these numbers come from?

Every persisted measurement in the repository — performance-trend
snapshots (:mod:`repro.obs.trend`), experiment-matrix cell results
(:mod:`repro.xp.store`) — must be attributable to the machine that
produced it and the code that was running.  This module is the single
definition of both fingerprints so the formats can never drift apart:

* :func:`machine_fingerprint` — interpreter, platform, CPU count; the
  reader of a snapshot uses it to judge whether a timing comparison is
  even meaningful (a laptop baseline must not gate a CI runner).
* :func:`code_fingerprint` — a content hash over the ``repro`` package
  sources; the experiment runner uses it to decide whether a persisted
  cell result is still *fresh* (same parameters **and** same code) or
  must be recomputed on resume.
"""

from __future__ import annotations

import hashlib
import os
import platform
from typing import Dict, Optional

__all__ = ["machine_fingerprint", "code_fingerprint"]


def machine_fingerprint() -> Dict[str, object]:
    """Where the numbers came from: interpreter, platform, CPU count."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


#: Cached digest per source root (the walk reads every ``.py`` file once
#: per process; results cannot change mid-run because installs are
#: immutable while the interpreter holds the imported modules).
_CODE_FINGERPRINTS: Dict[str, str] = {}


def code_fingerprint(root: Optional[str] = None) -> str:
    """Short content hash of every ``.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package directory.  The
    digest covers relative paths *and* file contents in sorted order, so
    renaming, editing or deleting any module changes it.  Used as the
    freshness component of experiment-cell keys: a persisted result is
    reusable only when parameters and code fingerprint both match.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.abspath(root)
    cached = _CODE_FINGERPRINTS.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for directory, subdirs, files in sorted(os.walk(root)):
        subdirs.sort()
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            relative = os.path.relpath(path, root)
            digest.update(relative.encode("utf-8"))
            digest.update(b"\x00")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x00")
    fingerprint = digest.hexdigest()[:16]
    _CODE_FINGERPRINTS[root] = fingerprint
    return fingerprint
