"""The approximate one-pass IRS algorithm (paper §3.2, Algorithm 3).

Identical control flow to :class:`repro.core.exact.ExactIRS` — a reverse
chronological scan with per-node summaries — but each summary is a
:class:`repro.sketch.vhll.VersionedHLL` instead of an exact map.  The paper's
``ApproxAdd`` / ``ApproxMerge`` become the sketch's ``add_pair`` /
``merge_within``.

Expected complexity (paper Lemmas 5–6): O(m·β·log²ω) time and
O(n·β·log²ω) space, with β = 2**precision cells per sketch.  The estimate of
``|σω(u)|`` carries HyperLogLog's ≈ ``1.04/√β`` relative standard error;
β = 512 — the paper's default — gives ≈ 4.6 %.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

import repro.obs as obs
from repro.core.interactions import Interaction, InteractionLog
from repro.lint.contracts import invariant, post_approx_apply
from repro.obs import OBS_STATE as _OBS
from repro.sketch.hashing import split_hash
from repro.sketch.hll import estimate_from_registers
from repro.sketch.vhll import VersionedHLL
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["ApproxIRS"]

Node = Hashable

_INTERACTIONS = obs.counter(
    "approx.interactions", "Interactions processed by the sketch reverse scan."
)
_MERGES = obs.counter(
    "approx.merges", "Sketch merges performed by the sketch reverse scan."
)
_ENTRIES = obs.gauge(
    "approx.entries",
    "Total (ρ, t) pairs stored across all sketches — the Table 4 memory quantity.",
)
_THROUGHPUT = obs.gauge(
    "approx.interactions_per_second",
    "Reverse-scan throughput of the last ApproxIRS.from_log build (Fig. 3).",
)
_CELL_LEN = obs.histogram(
    "vhll.cell_list_len",
    "Non-empty vHLL cell version-list lengths — Lemma 4 expects O(log ω) means.",
    buckets=obs.DEFAULT_COUNT_BUCKETS,
)


class ApproxIRS:
    """Sketch-based influence-reachability-set index.

    Parameters
    ----------
    window:
        Maximum channel duration ω, in time ticks.
    precision:
        Index bits of the underlying sketches; β = ``2**precision`` cells.
        The paper evaluates β ∈ {16 … 512} and defaults to 512
        (precision 9).
    salt:
        Hash-function selector shared by all per-node sketches.

    Notes
    -----
    Unlike the exact index, the sketch cannot exclude channels that loop
    back to their own start node (items are hashed, not named), so a node
    sitting on a cycle of duration ≤ ω counts itself — a +1 overestimate
    for such nodes.  The relative effect vanishes for the large
    reachability sets influence maximization cares about.
    """

    def __init__(self, window: int, precision: int = 9, salt: int = 0) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._precision = precision
        self._salt = salt
        # Validate precision/salt once through a throwaway sketch.
        VersionedHLL(precision, salt)
        self._num_cells = 1 << precision
        self._sketches: Dict[Node, VersionedHLL] = {}
        self._node_hash: Dict[Node, tuple[int, int]] = {}
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log: InteractionLog,
        window: int,
        precision: int = 9,
        salt: int = 0,
    ) -> "ApproxIRS":
        """Build the full index with one reverse pass over ``log``.

        Interactions sharing a time stamp are processed as a batch against a
        snapshot of the pre-batch sketches, exactly like
        :meth:`repro.core.exact.ExactIRS.from_log` — tied edges must not
        chain into a channel.
        """
        require_type(log, "log", InteractionLog)
        index = cls(window, precision, salt)
        build_span = obs.span("approx.build", window=window, precision=precision)
        with build_span:
            batch: list[Interaction] = []
            for record in log.reverse_time_order():
                if batch and record.time != batch[0].time:
                    index._process_batch(batch)
                    batch = []
                batch.append(record)
            if batch:
                index._process_batch(batch)
            for node in log.nodes:
                index._sketch_for(node)
        if _OBS.enabled:
            _ENTRIES.set(index.entry_count())
            seconds = build_span.duration_ns / 1e9
            if seconds > 0:
                _THROUGHPUT.labels(window=window).set(len(log) / seconds)
            observe = _CELL_LEN.labels(window=window).observe
            for sketch in index._sketches.values():  # repro-lint: budget=O(n·β)
                for length in sketch.cell_lengths():
                    if length:
                        observe(length)
        return index

    def _process_batch(self, records: list[Interaction]) -> None:
        """Process interactions sharing one time stamp (see from_log)."""
        if len(records) == 1:
            record = records[0]
            self.process(record.source, record.target, record.time)
            return
        snapshots: Dict[Node, Optional[VersionedHLL]] = {}
        for record in records:
            target = record.target
            if target not in snapshots:
                existing = self._sketches.get(target)
                snapshots[target] = existing.copy() if existing else None  # repro-lint: disable=R301 (tied-batch snapshot isolation requires a pre-batch copy)
        for record in records:
            target = record.target
            self._apply(record.source, target, record.time, snapshots[target])
        self._last_time = records[0].time

    def process(self, source: Node, target: Node, time: int) -> None:
        """Process one interaction; times must be strictly decreasing.

        Equal stamps are rejected here (their merges would wrongly chain
        tied edges); :meth:`from_log` batches ties correctly.
        """
        require_int(time, "time")
        if self._last_time is not None and time >= self._last_time:
            raise ValueError(
                f"interactions must be processed in strictly decreasing time "
                f"order: got t={time} after t={self._last_time} "
                "(use from_log for logs with tied time stamps)"
            )
        self._last_time = time
        self._apply(source, target, time, self._sketches.get(target))

    def process_tied(
        self,
        source: Node,
        target: Node,
        time: int,
        target_sketch: Optional[VersionedHLL],
    ) -> None:
        """One interaction of a tied batch, merged from an explicit snapshot.

        Mirrors :meth:`repro.core.exact.ExactIRS.process_tied`: the caller
        owns the pre-stamp snapshots and the stamp may equal the current
        frontier — it must not move it forward.
        """
        require_int(time, "time")
        if self._last_time is not None and time > self._last_time:
            raise ValueError(
                f"tied processing cannot move the frontier forward: got "
                f"t={time} after t={self._last_time}"
            )
        self._last_time = time
        self._apply(source, target, time, target_sketch)

    def sketch_snapshot(self, node: Node) -> Optional[VersionedHLL]:
        """An isolated copy of the node's sketch (None when unseen)."""
        existing = self._sketches.get(node)
        return existing.copy() if existing is not None else None  # repro-lint: disable=R301 (tied-batch snapshot isolation requires a pre-batch copy)

    def prune_ends_after(self, threshold: int) -> int:
        """Decay sweep: drop pairs with ``t > threshold`` from every sketch.

        Returns the number of evicted pairs.  Used by the live dual index,
        where pair times are negated channel starts — pairs above the
        negated horizon certify only channels that began before it.
        """
        require_int(threshold, "threshold")
        evicted = 0
        for sketch in self._sketches.values():  # repro-lint: budget=O(n·β) decay sweep, amortised by sweep_every
            evicted += sketch.prune_newer_than(threshold)
        return evicted

    @invariant(post_approx_apply)
    def _apply(
        self,
        source: Node,
        target: Node,
        time: int,
        target_sketch: Optional[VersionedHLL],
    ) -> None:
        if _OBS.enabled:
            _INTERACTIONS.inc()
        if source == target or self._window == 0:
            self._sketch_for(source)
            self._sketch_for(target)
            return
        sketch = self._sketch_for(source)
        cell, r = self._hash_node(target)
        sketch.add_pair(cell, r, time)
        if target_sketch is not None and not target_sketch.is_empty():
            if _OBS.enabled:
                _MERGES.inc()
            sketch.merge_within(target_sketch, time, self._window)

    def _sketch_for(self, node: Node) -> VersionedHLL:
        sketch = self._sketches.get(node)
        if sketch is None:
            sketch = VersionedHLL(self._precision, self._salt)
            self._sketches[node] = sketch
        return sketch

    def _hash_node(self, node: Node) -> tuple[int, int]:
        cached = self._node_hash.get(node)
        if cached is None:
            cached = split_hash(node, self._precision, self._salt)
            self._node_hash[node] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The duration budget ω this index was built with."""
        return self._window

    @property
    def precision(self) -> int:
        """Sketch index bits."""
        return self._precision

    @property
    def num_cells(self) -> int:
        """β — cells per sketch."""
        return self._num_cells

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes with a (possibly empty) sketch."""
        return self._sketches.keys()

    def sketch(self, node: Node) -> VersionedHLL:
        """The versioned sketch of ``node`` (empty for unknown nodes)."""
        found = self._sketches.get(node)
        if found is not None:
            return found
        return VersionedHLL(self._precision, self._salt)

    def registers(self, node: Node) -> list[int]:
        """Flat effective registers of ``node`` — all stored entries count.

        Every pair in a node's sketch was inserted only when its channel met
        the duration budget, so the final estimate uses the per-cell maximum
        over all pairs.
        """
        found = self._sketches.get(node)
        if found is None:
            return [0] * self._num_cells
        return found.effective_registers()

    def irs_estimate(self, node: Node) -> float:
        """Estimated ``|σω(node)|``."""
        found = self._sketches.get(node)
        if found is None:
            return 0.0
        return found.cardinality()

    def irs_estimates(self) -> Dict[Node, float]:
        """Estimated ``|σω(u)|`` for every node."""
        return {node: sketch.cardinality() for node, sketch in self._sketches.items()}

    def spread(self, seeds: Iterable[Node]) -> float:
        """Estimated ``|⋃_{u ∈ seeds} σω(u)|`` via register-wise maxima.

        This is the approximate influence oracle of paper §4.1: unioning
        HyperLogLog sketches is a cell-wise ``max``, so the query cost is
        O(|seeds|·β) regardless of network size.
        """
        combined = [0] * self._num_cells
        for seed in seeds:  # repro-lint: budget=O(|seeds|·β)
            sketch = self._sketches.get(seed)
            if sketch is None:
                continue
            sketch.max_registers_into(combined)
        return estimate_from_registers(combined, self._num_cells)

    def entry_count(self) -> int:
        """Total ``(ρ, t)`` pairs stored across every node's sketch."""
        return sum(sketch.entry_count() for sketch in self._sketches.values())

    def max_cell_length(self) -> int:
        """Longest per-cell version list — empirically O(log ω) (Lemma 4)."""
        longest = 0
        for sketch in self._sketches.values():
            lengths = sketch.cell_lengths()
            if lengths:
                longest = max(longest, max(lengths))
        return longest

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ApproxIRS(window={self._window}, precision={self._precision}, "
            f"nodes={len(self._sketches)}, entries={self.entry_count()})"
        )
