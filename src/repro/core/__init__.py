"""The paper's primary contribution: information channels, IRS indexes,
influence oracles, and greedy influence maximization."""

from repro.core.approx import ApproxIRS
from repro.core.approx_bottomk import BottomKIRS
from repro.core.channels import (
    all_reachability_sets,
    all_reachability_summaries,
    channel_duration,
    channel_end,
    enumerate_channels,
    fastest_channel_duration,
    has_channel,
    reachability_set,
    reachability_summary,
)
from repro.core.exact import ExactIRS
from repro.core.interactions import Interaction, InteractionLog
from repro.core.maximization import (
    celf_top_k,
    greedy_top_k,
    spread_trajectory,
    top_k_by_influence,
)
from repro.core.oracle import (
    ApproxInfluenceOracle,
    ExactInfluenceOracle,
    InfluenceOracle,
)
from repro.core.multiwindow import MultiWindowIRS
from repro.core.streaming import (
    StreamingExactIndex,
    StreamingSketchIndex,
    influencers_of,
)
from repro.core.summary import IRSSummary
from repro.core.witnesses import explain_influence, find_channel
from repro.core.temporal_paths import (
    earliest_arrival_times,
    fastest_path_durations,
    latest_departure_times,
    shortest_path_hops,
)

__all__ = [
    "Interaction",
    "InteractionLog",
    "IRSSummary",
    "ExactIRS",
    "ApproxIRS",
    "BottomKIRS",
    "MultiWindowIRS",
    "StreamingExactIndex",
    "StreamingSketchIndex",
    "influencers_of",
    "InfluenceOracle",
    "ExactInfluenceOracle",
    "ApproxInfluenceOracle",
    "greedy_top_k",
    "celf_top_k",
    "top_k_by_influence",
    "spread_trajectory",
    "reachability_set",
    "reachability_summary",
    "all_reachability_sets",
    "all_reachability_summaries",
    "enumerate_channels",
    "channel_duration",
    "channel_end",
    "has_channel",
    "fastest_channel_duration",
    "earliest_arrival_times",
    "latest_departure_times",
    "fastest_path_durations",
    "shortest_path_hops",
    "find_channel",
    "explain_influence",
]
