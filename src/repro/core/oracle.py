"""Influence oracles (paper §4.1, Definition 3).

Given the per-node influence reachability sets (or their sketches), an
**influence oracle** answers: for a seed set ``S ⊆ V``, what is
``Inf(S) = |⋃_{u∈S} σω(u)|``?

Two interchangeable implementations are provided behind a common interface:

* :class:`ExactInfluenceOracle` — backed by concrete Python sets, exact
  answers, O(Σ|σ(u)|) per query;
* :class:`ApproxInfluenceOracle` — backed by flattened HyperLogLog register
  arrays, ≈ 1.04/√β relative error, O(|S|·β) per query *independent of the
  network size* (the property paper Figure 4 demonstrates).

Both expose an *accumulator* API (``new_accumulator`` / ``accumulate`` /
``value``) so the greedy maximization in :mod:`repro.core.maximization` can
grow a covered-union incrementally instead of recomputing unions from
scratch at every marginal-gain evaluation.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Iterable, List, Set

import repro.obs as obs
from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.obs import OBS_STATE as _OBS
from repro.sketch.hll import estimate_from_registers
from repro.utils.validation import require_int, require_type

__all__ = [
    "InfluenceOracle",
    "ExactInfluenceOracle",
    "ApproxInfluenceOracle",
]

Node = Hashable

_QUERY_SECONDS = obs.histogram(
    "oracle.query_seconds",
    "Influence-oracle query latency by oracle kind and operation (Fig. 4).",
)
_QUERY_SEEDS = obs.histogram(
    "oracle.query_seeds",
    "Seed-set sizes handed to oracle spread queries.",
    buckets=obs.DEFAULT_COUNT_BUCKETS,
)


class InfluenceOracle(abc.ABC):
    """Abstract interface shared by the exact and sketch-backed oracles."""

    @abc.abstractmethod
    def nodes(self) -> Iterable[Node]:
        """Every node the oracle can answer about."""

    @abc.abstractmethod
    def influence(self, node: Node) -> float:
        """``|σω(node)|`` (or its estimate)."""

    @abc.abstractmethod
    def spread(self, seeds: Iterable[Node]) -> float:
        """``|⋃_{u∈seeds} σω(u)|`` (or its estimate)."""

    # -- incremental accumulator API ------------------------------------
    @abc.abstractmethod
    def new_accumulator(self) -> object:
        """An empty covered-union state."""

    @abc.abstractmethod
    def accumulate(self, state: object, node: Node) -> None:
        """Fold ``σω(node)`` into ``state`` in place."""

    @abc.abstractmethod
    def value(self, state: object) -> float:
        """Cardinality (estimate) of the union held in ``state``."""

    def gain(self, state: object, node: Node) -> float:
        """Marginal gain of adding ``node`` to the union in ``state``.

        Default implementation copies the state; subclasses override with a
        cheaper evaluation that does not mutate ``state``.
        """
        probe = self.copy_accumulator(state)
        self.accumulate(probe, node)
        return self.value(probe) - self.value(state)

    @abc.abstractmethod
    def copy_accumulator(self, state: object) -> object:
        """An independent copy of ``state``."""


class ExactInfluenceOracle(InfluenceOracle):
    """Exact oracle over concrete reachability sets.

    Parameters
    ----------
    sets:
        Mapping ``node → σω(node)``; typically produced by
        :meth:`from_index`, or handed in directly (tests, ablations).
    """

    def __init__(self, sets: Dict[Node, Set[Node]]) -> None:
        require_type(sets, "sets", dict)
        self._sets: Dict[Node, frozenset] = {
            node: frozenset(reached) for node, reached in sets.items()  # repro-lint: disable=R301 (one-time defensive copy at construction, not a query-path allocation)
        }
        self._obs_spread = _QUERY_SECONDS.labels(kind="exact", op="spread")
        self._obs_gain = _QUERY_SECONDS.labels(kind="exact", op="gain")

    @classmethod
    def from_index(cls, index: ExactIRS) -> "ExactInfluenceOracle":
        """Build from a fully-constructed :class:`ExactIRS`."""
        require_type(index, "index", ExactIRS)
        return cls({node: index.reachability_set(node) for node in index.nodes})

    def nodes(self) -> Iterable[Node]:
        return self._sets.keys()

    def influence(self, node: Node) -> float:
        return float(len(self._sets.get(node, frozenset())))

    def spread(self, seeds: Iterable[Node]) -> float:
        if _OBS.enabled:
            seeds = list(seeds)
            _QUERY_SEEDS.observe(len(seeds))
        with self._obs_spread.time():
            covered: Set[Node] = set()
            for seed in seeds:
                covered.update(self._sets.get(seed, frozenset()))
            return float(len(covered))

    def new_accumulator(self) -> Set[Node]:
        return set()

    def accumulate(self, state: object, node: Node) -> None:
        assert isinstance(state, set)
        state.update(self._sets.get(node, frozenset()))

    def value(self, state: object) -> float:
        assert isinstance(state, set)
        return float(len(state))

    def gain(self, state: object, node: Node) -> float:
        assert isinstance(state, set)
        with self._obs_gain.time():
            reached = self._sets.get(node, frozenset())
            return float(len(reached - state))

    def copy_accumulator(self, state: object) -> Set[Node]:
        assert isinstance(state, set)
        return set(state)

    def reachability_set(self, node: Node) -> frozenset:
        """The stored ``σω(node)``."""
        return self._sets.get(node, frozenset())

    def targeted_spread(
        self, seeds: Iterable[Node], targets: Iterable[Node]
    ) -> float:
        """``|(⋃ σω(seed)) ∩ targets|`` — influence restricted to an
        audience of interest (e.g. one community, paying customers).

        Only the exact oracle supports this: the sketch union cannot be
        intersected with an arbitrary node set.
        """
        wanted = set(targets)
        covered: Set[Node] = set()
        for seed in seeds:
            covered.update(self._sets.get(seed, frozenset()) & wanted)
        return float(len(covered))

    def most_influential_towards(
        self, targets: Iterable[Node], k: int
    ) -> List[Node]:
        """Greedy top-``k`` seeds for covering ``targets`` specifically."""
        require_int(k, "k")
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        wanted = set(targets)
        restricted = ExactInfluenceOracle(
            {node: reached & wanted for node, reached in self._sets.items()}
        )
        # Local import: maximization imports this module.
        from repro.core.maximization import greedy_top_k

        return greedy_top_k(restricted, k)


class ApproxInfluenceOracle(InfluenceOracle):
    """Sketch-backed oracle over flattened HLL register arrays.

    Per node only the β effective registers are kept (the version lists are
    not needed once the reverse pass is finished), so a query unions seed
    registers cell-wise and runs one HLL estimation — a few microseconds,
    independent of how large the reachability sets actually are.
    """

    def __init__(self, registers: Dict[Node, List[int]], num_cells: int) -> None:
        require_type(registers, "registers", dict)
        if num_cells <= 0 or num_cells & (num_cells - 1) != 0:
            raise ValueError(f"num_cells must be a power of two, got {num_cells}")
        for node, array in registers.items():
            if len(array) != num_cells:
                raise ValueError(
                    f"register array of node {node!r} has length {len(array)}, "
                    f"expected {num_cells}"
                )
        self._registers = {node: list(array) for node, array in registers.items()}  # repro-lint: disable=R301 (one-time defensive copy at construction, not a query-path allocation)
        self._m = num_cells
        self._obs_spread = _QUERY_SECONDS.labels(kind="sketch", op="spread")
        self._obs_gain = _QUERY_SECONDS.labels(kind="sketch", op="gain")

    @classmethod
    def from_index(cls, index: ApproxIRS) -> "ApproxInfluenceOracle":
        """Build from a fully-constructed :class:`ApproxIRS`."""
        require_type(index, "index", ApproxIRS)
        registers = {node: index.registers(node) for node in index.nodes}
        return cls(registers, index.num_cells)

    @property
    def num_cells(self) -> int:
        """β — registers per node."""
        return self._m

    def nodes(self) -> Iterable[Node]:
        return self._registers.keys()

    def registers(self, node: Node) -> List[int]:
        """A copy of ``node``'s effective register array (empty if unknown).

        This is the serialisation surface: a snapshot stores exactly these
        arrays, so a reloaded oracle is bit-identical to the original.
        """
        array = self._registers.get(node)
        if array is None:
            return [0] * self._m
        return list(array)

    def influence(self, node: Node) -> float:
        array = self._registers.get(node)
        if array is None:
            return 0.0
        return estimate_from_registers(array, self._m)

    def spread(self, seeds: Iterable[Node]) -> float:
        if _OBS.enabled:
            seeds = list(seeds)
            _QUERY_SEEDS.observe(len(seeds))
        # One code path for unions: spread == value(accumulate(seeds)).
        # A private re-merge here could drift from the accumulator the
        # greedy maximization grows, and then cached spreads would not be
        # comparable across the two entry points.
        with self._obs_spread.time():
            combined = self.new_accumulator()
            for seed in seeds:
                self.accumulate(combined, seed)
            return self.value(combined)

    def new_accumulator(self) -> List[int]:
        return [0] * self._m

    def accumulate(self, state: object, node: Node) -> None:
        assert isinstance(state, list)
        array = self._registers.get(node)
        if array is None:
            return
        for i, value in enumerate(array):
            if value > state[i]:
                state[i] = value

    def value(self, state: object) -> float:
        assert isinstance(state, list)
        return estimate_from_registers(state, self._m)

    def gain(self, state: object, node: Node) -> float:
        assert isinstance(state, list)
        with self._obs_gain.time():
            array = self._registers.get(node)
            if array is None:
                return 0.0
            merged = [max(a, b) for a, b in zip(state, array)]
            return estimate_from_registers(merged, self._m) - estimate_from_registers(
                state, self._m
            )

    def copy_accumulator(self, state: object) -> List[int]:
        assert isinstance(state, list)
        return list(state)
