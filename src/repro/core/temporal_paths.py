"""Temporal path algorithms (Wu et al., PVLDB 2014 — the paper's ref [26]).

Information channels are a special case of temporal paths, and the paper's
related work leans on this toolbox.  Four classic single-source problems
over an interaction log, each solved with one forward scan over the
time-sorted interactions (the "one-pass" style of Wu et al.):

* **earliest arrival** — for every node, the earliest time information
  leaving ``source`` (not before ``start``) can arrive;
* **latest departure** — for every node, the latest time one can leave it
  and still deliver to ``target`` by a deadline (one *reverse* scan);
* **fastest path** — minimal elapsed duration from ``source`` to each node
  (exactly the minimal ω for which the node enters σω — see
  :func:`repro.core.channels.fastest_channel_duration` for the brute-force
  counterpart restricted to one target);
* **shortest path** — fewest hops along any time-respecting path.

These complement the IRS machinery: the IRS answers "how many nodes can u
reach within ω", temporal paths answer "how fast / how directly can u
reach v".
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.core.interactions import InteractionLog
from repro.utils.validation import require_type

__all__ = [
    "earliest_arrival_times",
    "latest_departure_times",
    "fastest_path_durations",
    "shortest_path_hops",
]

Node = Hashable


def earliest_arrival_times(
    log: InteractionLog,
    source: Node,
    start: Optional[int] = None,
) -> Dict[Node, int]:
    """Earliest arrival time at every reachable node.

    Information is available at ``source`` from time ``start`` (default:
    before the log begins) and travels along interactions whose time is
    **at least** the arrival time at their source node — the source itself
    may act at the time of its own interaction, while relayed information
    needs a strictly later interaction (Definition 1's strict increase is
    preserved because an arrival *at* time t can only be forwarded by an
    interaction at time > t; the source's own sends need no such gap).

    Returns ``{node: earliest arrival}``; the source maps to ``start`` (or
    the log's minimum time − 1 when unconstrained).
    """
    require_type(log, "log", InteractionLog)
    if start is not None and (isinstance(start, bool) or not isinstance(start, int)):
        raise TypeError("start must be an int or None")
    origin = start if start is not None else (
        log.min_time - 1 if log.min_time is not None else 0
    )
    arrival: Dict[Node, int] = {source: origin}
    for record in log:
        if record.time < origin:
            continue
        at_source = arrival.get(record.source)
        if at_source is None:
            continue
        # The original source may send at its own interaction time; any
        # relay must have strictly later time than its arrival.
        usable = record.time >= at_source if record.source == source else (
            record.time > at_source
        )
        if not usable:
            continue
        previous = arrival.get(record.target)
        if previous is None or record.time < previous:
            arrival[record.target] = record.time
    return arrival


def latest_departure_times(
    log: InteractionLog,
    target: Node,
    deadline: Optional[int] = None,
) -> Dict[Node, int]:
    """Latest time one can leave each node and still reach ``target``.

    The mirror image of :func:`earliest_arrival_times`, computed with one
    reverse scan: an interaction ``(u, v, t)`` is usable when ``v`` can
    still forward strictly after ``t`` (or ``v`` is the target, which only
    needs to receive by the deadline).

    Returns ``{node: latest departure}``; the target maps to ``deadline``
    (or the log's maximum time + 1 when unconstrained).
    """
    require_type(log, "log", InteractionLog)
    if deadline is not None and (
        isinstance(deadline, bool) or not isinstance(deadline, int)
    ):
        raise TypeError("deadline must be an int or None")
    horizon = deadline if deadline is not None else (
        log.max_time + 1 if log.max_time is not None else 0
    )
    departure: Dict[Node, int] = {target: horizon}
    for record in log.reverse_time_order():
        if record.time > horizon:
            continue
        at_target = departure.get(record.target)
        if at_target is None:
            continue
        usable = record.time <= at_target if record.target == target else (
            record.time < at_target
        )
        if not usable:
            continue
        previous = departure.get(record.source)
        if previous is None or record.time > previous:
            departure[record.source] = record.time
    return departure


def fastest_path_durations(log: InteractionLog, source: Node) -> Dict[Node, int]:
    """Minimal channel duration from ``source`` to every reachable node.

    ``result[v]`` is the smallest ω such that ``v ∈ σω(source)``.  Computed
    by one earliest-arrival scan per outgoing interaction of ``source``
    (each possible channel start), keeping per-target minima of
    ``end − start + 1``.
    """
    require_type(log, "log", InteractionLog)
    interactions = list(log)
    best: Dict[Node, int] = {}
    for index, first in enumerate(interactions):  # repro-lint: budget=O(m²)
        if first.source != source:
            continue
        arrival: Dict[Node, int] = {first.target: first.time}
        for record in interactions[index + 1 :]:
            at = arrival.get(record.source)
            if at is not None and at < record.time:
                previous = arrival.get(record.target)
                if previous is None or record.time < previous:
                    arrival[record.target] = record.time
        for node, end in arrival.items():
            if node == source:
                continue
            duration = end - first.time + 1
            current = best.get(node)
            if current is None or duration < current:
                best[node] = duration
    return best


def shortest_path_hops(log: InteractionLog, source: Node) -> Dict[Node, int]:
    """Fewest hops of any time-respecting path from ``source``.

    One forward scan maintaining, per node, the minimal hop count over all
    (arrival time, hops) states that are not dominated — here simplified
    to per-node Pareto lists of (time, hops) with both coordinates
    minimal, which a single time-ordered scan keeps consistent.
    """
    require_type(log, "log", InteractionLog)
    # states[v]: list of (arrival_time, hops), Pareto-minimal:
    # time strictly increasing, hops strictly decreasing.
    states: Dict[Node, list] = {source: [(-math.inf, 0)]}
    best: Dict[Node, int] = {}
    for record in log:  # repro-lint: budget=O(m·P)
        frontier = states.get(record.source)
        if not frontier:
            continue
        # Minimal hops among states with arrival strictly before the
        # interaction (the source's own initial state has time -inf).
        usable = [hops for at, hops in frontier if at < record.time]
        if not usable:
            continue
        hops = min(usable) + 1
        if record.target != source:
            if record.target not in best or hops < best[record.target]:
                best[record.target] = hops
        target_states = states.setdefault(record.target, [])
        # Insert (record.time, hops) keeping the Pareto invariant.
        dominated = False
        for at, existing_hops in target_states:
            if at <= record.time and existing_hops <= hops:
                dominated = True
                break
        if not dominated:
            target_states[:] = [
                (at, existing_hops)
                for at, existing_hops in target_states
                if not (at >= record.time and existing_hops >= hops)
            ]
            target_states.append((record.time, hops))
    return best
