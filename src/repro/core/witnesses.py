"""Witness channels: reconstruct the interactions behind an influence claim.

The IRS indexes answer *whether* (and how many); users auditing a result
usually want to see *how* — the concrete sequence of interactions that
realises "u could have influenced v within ω".  This module reconstructs
such a channel:

* :func:`find_channel` returns an actual information channel ``u → v`` of
  duration ≤ ω whose end time is **minimal** (i.e. a witness for
  λω(u, v)), or ``None`` when v ∉ σω(u);
* :func:`explain_influence` renders it as a human-readable hop list.

Reconstruction replays the brute-force earliest-arrival scan of
:mod:`repro.core.channels` with parent pointers; cost is O(starts·m), fine
for the sporadic audit queries this exists for (the indexes remain the
bulk-query machinery).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.interactions import Interaction, InteractionLog
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["find_channel", "explain_influence"]

Node = Hashable


def find_channel(
    log: InteractionLog,
    source: Node,
    target: Node,
    window: int,
) -> Optional[List[Interaction]]:
    """A minimal-end-time channel ``source → target`` of duration ≤ window.

    Returns the interactions in order, or ``None`` when no such channel
    exists.  Among all witnesses with the minimal end time, the one found
    uses earliest-arrival hops (each prefix arrives as early as possible).
    """
    require_type(log, "log", InteractionLog)
    require_int(window, "window")
    require_non_negative(window, "window")
    if window == 0 or source == target:
        return None

    interactions = list(log)
    best: Optional[List[Interaction]] = None
    best_end: Optional[int] = None
    for start_index, first in enumerate(interactions):  # repro-lint: budget=O(m²)
        if first.source != source:
            continue
        deadline = first.time + window - 1
        if best_end is not None and first.time > best_end:
            # Channels from this start cannot end before an already-found
            # witness (their end is >= their start).
            continue
        arrival: Dict[Node, Tuple[int, Optional[Interaction]]] = {
            first.target: (first.time, first)
        }
        for record in interactions[start_index + 1 :]:
            if record.time > deadline:
                break
            reached = arrival.get(record.source)
            if reached is not None and reached[0] < record.time:
                current = arrival.get(record.target)
                if current is None or record.time < current[0]:
                    arrival[record.target] = (record.time, record)
        found = arrival.get(target)
        if found is None or target == source:
            continue
        end_time = found[0]
        if best_end is not None and end_time >= best_end:
            continue
        # Walk parent pointers back to the start edge.
        channel: List[Interaction] = []
        node = target
        while True:
            _, via = arrival[node]
            assert via is not None
            channel.append(via)
            if via is first:
                break
            node = via.source
        channel.reverse()
        best = channel
        best_end = end_time
    return best


def explain_influence(
    log: InteractionLog,
    source: Node,
    target: Node,
    window: int,
) -> str:
    """A human-readable account of how ``source`` could reach ``target``.

    Example output::

        a could have influenced e within 3 ticks:
          t=1  a -> d
          t=3  d -> e
        (duration 3, end time 3)
    """
    channel = find_channel(log, source, target, window)
    if channel is None:
        return (
            f"{source!r} has no information channel to {target!r} "
            f"within {window} ticks"
        )
    duration = channel[-1].time - channel[0].time + 1
    lines = [
        f"{source!r} could have influenced {target!r} within {window} ticks:"
    ]
    for record in channel:
        lines.append(f"  t={record.time}  {record.source!r} -> {record.target!r}")
    lines.append(f"(duration {duration}, end time {channel[-1].time})")
    return "\n".join(lines)
