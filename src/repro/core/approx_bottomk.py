"""Alternative approximate IRS backend on bottom-k sketches (ablation).

Same one-pass reverse scan as :class:`~repro.core.approx.ApproxIRS`, with
each node's versioned HLL replaced by a
:class:`~repro.sketch.bottomk.VersionedBottomK`.  Exists to answer, with
numbers, why the paper versions HyperLogLog rather than the bottom-k
sketches its SKIM/ConTinEst competitors use: a bottom-k sketch can only
afford to keep the k smallest hashes, so an evicted (hash, λ) pair is
unavailable to later merges with stricter time filters, biasing windowed
estimates low; the HLL's per-cell Pareto lists retain exactly the pairs
any future window could need at O(log ω) expected extra cost (Lemma 4).

The ablation benchmark builds both indexes at matched memory and compares
their per-node error against the exact IRS.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.core.interactions import Interaction, InteractionLog
from repro.sketch.bottomk import VersionedBottomK
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["BottomKIRS"]

Node = Hashable


class BottomKIRS:
    """Bottom-k-backed influence reachability index (ablation backend).

    Parameters
    ----------
    window:
        Maximum channel duration ω.
    k:
        Bottom-k capacity per node (64 pairs ≈ the memory of a β=512 vHLL
        whose cells hold ~1.5 pairs each).
    salt:
        Hash-function selector.
    """

    def __init__(self, window: int, k: int = 64, salt: int = 0) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._k = k
        self._salt = salt
        VersionedBottomK(k, salt)  # validate parameters eagerly
        self._sketches: Dict[Node, VersionedBottomK] = {}
        self._last_time: Optional[int] = None

    @classmethod
    def from_log(
        cls, log: InteractionLog, window: int, k: int = 64, salt: int = 0
    ) -> "BottomKIRS":
        """Build with one reverse pass (ties batched like the other indexes)."""
        require_type(log, "log", InteractionLog)
        index = cls(window, k, salt)
        batch: list[Interaction] = []
        for record in log.reverse_time_order():
            if batch and record.time != batch[0].time:
                index._process_batch(batch)
                batch = []
            batch.append(record)
        if batch:
            index._process_batch(batch)
        for node in log.nodes:
            index._sketch_for(node)
        return index

    def _process_batch(self, records: list[Interaction]) -> None:
        snapshots: Dict[Node, Optional[VersionedBottomK]] = {}
        for record in records:
            target = record.target
            if target not in snapshots:
                existing = self._sketches.get(target)
                if existing is None:
                    snapshots[target] = None
                else:
                    clone = VersionedBottomK(self._k, self._salt)
                    clone.merge(existing)
                    snapshots[target] = clone
        for record in records:
            target = record.target
            self._apply(record.source, target, record.time, snapshots[target])
        self._last_time = records[0].time

    def _apply(
        self,
        source: Node,
        target: Node,
        time: int,
        target_sketch: Optional[VersionedBottomK],
    ) -> None:
        if source == target or self._window == 0:
            self._sketch_for(source)
            self._sketch_for(target)
            return
        sketch = self._sketch_for(source)
        sketch.add(target, time)
        if target_sketch is not None and not target_sketch.is_empty():
            sketch.merge_within(target_sketch, time, self._window)

    def _sketch_for(self, node: Node) -> VersionedBottomK:
        sketch = self._sketches.get(node)
        if sketch is None:
            sketch = VersionedBottomK(self._k, self._salt)
            self._sketches[node] = sketch
        return sketch

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def nodes(self) -> Iterable[Node]:
        """All indexed nodes."""
        return self._sketches.keys()

    def irs_estimate(self, node: Node) -> float:
        """Estimated ``|σω(node)|``."""
        found = self._sketches.get(node)
        return found.cardinality() if found is not None else 0.0

    def irs_estimates(self) -> Dict[Node, float]:
        """Estimates for every node."""
        return {node: sk.cardinality() for node, sk in self._sketches.items()}

    def spread(self, seeds: Iterable[Node]) -> float:
        """Estimated union cardinality over the seeds' sketches."""
        combined = VersionedBottomK(self._k, self._salt)
        for seed in seeds:
            sketch = self._sketches.get(seed)
            if sketch is not None:
                combined.merge(sketch)
        return combined.cardinality()

    def entry_count(self) -> int:
        """Total stored (hash, λ) pairs across nodes."""
        return sum(sk.entry_count() for sk in self._sketches.values())
