"""The interaction-network data model.

An *interaction network* ``G(V, E)`` (paper §2) is a set of nodes ``V``
together with a set ``E`` of directed, timestamped **interactions**
``(u, v, t)`` — node ``u`` interacted with node ``v`` at integer time ``t``
(e.g. ``u`` sent ``v`` an email).  The same pair of nodes may interact many
times; it is exactly this repetition that distinguishes interaction networks
from the static graphs classical influence maximization runs on.

:class:`InteractionLog` is the container every algorithm in this library
consumes.  It validates and time-sorts its input once at construction, after
which iteration in forward or reverse chronological order is free — the
paper's one-pass algorithms scan in *reverse* order (its Lemma 1), while the
TCIC cascade simulator scans forward.
"""

from __future__ import annotations

import io
from typing import (
    Hashable,
    Iterable,
    Iterator,
    NamedTuple,
    Optional,
    Sequence,
    Union,
)

__all__ = ["Interaction", "InteractionLog"]

Node = Hashable


class Interaction(NamedTuple):
    """A single directed, timestamped interaction ``source → target``."""

    source: Node
    target: Node
    time: int

    def reversed(self) -> "Interaction":
        """The same event with source and target swapped."""
        return Interaction(self.target, self.source, self.time)


RawInteraction = Union[Interaction, tuple]


class InteractionLog:
    """An immutable, time-sorted sequence of :class:`Interaction` records.

    Parameters
    ----------
    interactions:
        Any iterable of ``(source, target, time)`` triples or
        :class:`Interaction` objects.  Times must be integers.  The input
        need not be sorted — it is sorted (stably) by time at construction.
    allow_self_loops:
        When ``False`` (default) an interaction with ``source == target``
        raises :class:`ValueError`; self-messages carry no influence and the
        paper's datasets do not contain them.

    Example
    -------
    >>> log = InteractionLog([("a", "b", 1), ("b", "c", 3), ("a", "c", 2)])
    >>> log.num_nodes, log.num_interactions
    (3, 3)
    >>> [i.time for i in log]
    [1, 2, 3]
    """

    __slots__ = ("_interactions", "_nodes", "_min_time", "_max_time")

    def __init__(
        self,
        interactions: Iterable[RawInteraction],
        allow_self_loops: bool = False,
    ) -> None:
        records: list[Interaction] = []
        nodes: set[Node] = set()
        for raw in interactions:
            record = self._coerce(raw)
            if record.source == record.target and not allow_self_loops:
                raise ValueError(
                    f"self-loop interaction {record!r} (pass allow_self_loops=True "
                    "to keep them)"
                )
            records.append(record)
            nodes.add(record.source)
            nodes.add(record.target)
        records.sort(key=lambda r: r.time)
        self._interactions: tuple[Interaction, ...] = tuple(records)
        self._nodes: frozenset[Node] = frozenset(nodes)
        if records:
            self._min_time: Optional[int] = records[0].time
            self._max_time: Optional[int] = records[-1].time
        else:
            self._min_time = None
            self._max_time = None

    @staticmethod
    def _coerce(raw: RawInteraction) -> Interaction:
        if isinstance(raw, Interaction):
            record = raw
        else:
            try:
                source, target, time = raw
            except (TypeError, ValueError) as exc:
                raise TypeError(
                    f"interaction must be a (source, target, time) triple, got {raw!r}"
                ) from exc
            record = Interaction(source, target, time)
        if isinstance(record.time, bool) or not isinstance(record.time, int):
            raise TypeError(
                f"interaction time must be an int, got {record.time!r} in {record!r}"
            )
        return record

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._interactions)

    def __iter__(self) -> Iterator[Interaction]:
        """Iterate in forward (increasing-time) order."""
        return iter(self._interactions)

    def __getitem__(self, index: int) -> Interaction:
        return self._interactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionLog):
            return NotImplemented
        return self._interactions == other._interactions

    def __hash__(self) -> int:
        return hash(self._interactions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InteractionLog(nodes={self.num_nodes}, "
            f"interactions={self.num_interactions}, span={self.time_span})"
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def reverse_time_order(self) -> Iterator[Interaction]:
        """Iterate in decreasing-time order (the one-pass algorithms' order)."""
        return reversed(self._interactions)

    def forward(self) -> Iterator[Interaction]:
        """Alias of ``iter(self)`` for symmetry with :meth:`reverse_time_order`."""
        return iter(self._interactions)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[Node]:
        """All nodes appearing as source or target of some interaction."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._nodes)

    @property
    def num_interactions(self) -> int:
        """``m = |E|``."""
        return len(self._interactions)

    @property
    def min_time(self) -> Optional[int]:
        """Earliest interaction time, or ``None`` when empty."""
        return self._min_time

    @property
    def max_time(self) -> Optional[int]:
        """Latest interaction time, or ``None`` when empty."""
        return self._max_time

    @property
    def time_span(self) -> int:
        """``max_time − min_time + 1`` — the number of time ticks covered.

        Zero for an empty log.  Window lengths expressed as a percentage of
        the dataset's span (as the paper's experiments do) are derived from
        this via :meth:`window_from_percent`.
        """
        if self._min_time is None or self._max_time is None:
            return 0
        return self._max_time - self._min_time + 1

    def window_from_percent(self, percent: float) -> int:
        """Convert a window length in percent of the time span to ticks.

        The paper expresses every ω as a percentage of the dataset's total
        span ("we express the window length as a percentage of the total
        time span", §6.1).  The result is at least 1 tick for a non-empty
        log so that a non-zero percentage never degenerates to ω = 0.
        """
        if not isinstance(percent, (int, float)) or isinstance(percent, bool):
            raise TypeError("percent must be a number")
        if not 0 <= percent <= 100:
            raise ValueError(f"percent must be in [0, 100], got {percent}")
        window = int(self.time_span * percent / 100.0)
        if percent > 0 and self.time_span > 0:
            window = max(window, 1)
        return window

    def has_distinct_times(self) -> bool:
        """True when every interaction carries a unique time stamp.

        The paper assumes distinct time stamps (§2).  All algorithms in this
        library tolerate ties (ties simply cannot be chained into a single
        channel, matching the strict ``t1 < t2 < …`` of Definition 1), but
        generators produce distinct stamps to stay close to the paper.
        """
        return len({r.time for r in self._interactions}) == len(self._interactions)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def static_edges(self) -> set[tuple[Node, Node]]:
        """The distinct ``(source, target)`` pairs — the flattened graph.

        This is the preprocessing the paper applies before handing the data
        to the static baselines (SKIM, PageRank, degree heuristics):
        "we convert the interaction network data into the required static
        graph format by removing repeated interactions and the time stamp".
        """
        return {(r.source, r.target) for r in self._interactions}

    def out_degrees(self) -> dict[Node, int]:
        """Distinct out-neighbour counts in the flattened graph."""
        neighbours: dict[Node, set[Node]] = {}
        for source, target, _ in self._interactions:
            neighbours.setdefault(source, set()).add(target)
        degrees = {node: 0 for node in self._nodes}
        for node, outs in neighbours.items():
            degrees[node] = len(outs)
        return degrees

    def restricted_to_window(self, start: int, end: int) -> "InteractionLog":
        """A new log with only interactions whose time lies in ``[start, end]``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        return InteractionLog(
            (r for r in self._interactions if start <= r.time <= end),
            allow_self_loops=True,
        )

    def time_reversed(self) -> "InteractionLog":
        """The time-and-direction dual: ``(u, v, t) → (v, u, −t)``.

        Information channels are self-dual under this transform: ``u``
        reaches ``z`` through a channel of duration d ending at time e in
        the original log **iff** ``z`` reaches ``u`` through a channel of
        duration d in the reversed log (ending at −(e − d + 1)).  The dual
        turns "who can u influence" questions into "who could have
        influenced u" questions — see
        :func:`repro.core.streaming.influencers_of`.
        """
        return InteractionLog(
            (
                Interaction(r.target, r.source, -r.time)
                for r in self._interactions
            ),
            allow_self_loops=True,
        )

    def relabelled(self) -> tuple["InteractionLog", dict[Node, int]]:
        """A copy with nodes renamed to dense integers ``0 … n−1``.

        Returns ``(new_log, mapping)`` where ``mapping[original] = integer``.
        Integer labels make hashing and dict operations measurably faster for
        the large benchmark runs.
        """
        mapping = {node: i for i, node in enumerate(sorted(self._nodes, key=repr))}
        relabelled = InteractionLog(
            (
                Interaction(mapping[r.source], mapping[r.target], r.time)
                for r in self._interactions
            ),
            allow_self_loops=True,
        )
        return relabelled, mapping

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def write(self, path_or_file: Union[str, io.TextIOBase]) -> None:
        """Write as whitespace-separated ``source target time`` lines."""
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                self._write_lines(handle)
        else:
            self._write_lines(path_or_file)

    def _write_lines(self, handle: io.TextIOBase) -> None:
        for source, target, time in self._interactions:
            handle.write(f"{source} {target} {time}\n")

    @classmethod
    def read(
        cls,
        path_or_file: Union[str, io.TextIOBase],
        int_nodes: bool = False,
    ) -> "InteractionLog":
        """Parse a whitespace-separated ``source target time`` file.

        Lines that are empty or start with ``#`` are skipped (SNAP-style
        comments).  When ``int_nodes`` is true, node columns are parsed as
        integers rather than kept as strings.
        """
        if isinstance(path_or_file, str):
            with open(path_or_file, "r", encoding="utf-8") as handle:
                return cls._read_lines(handle, int_nodes)
        return cls._read_lines(path_or_file, int_nodes)

    @classmethod
    def _read_lines(cls, handle: Iterable[str], int_nodes: bool) -> "InteractionLog":
        records = []
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3:
                raise ValueError(
                    f"line {line_number}: expected 'source target time', got {line!r}"
                )
            source: Node = int(parts[0]) if int_nodes else parts[0]
            target: Node = int(parts[1]) if int_nodes else parts[1]
            records.append(Interaction(source, target, int(parts[2])))
        return cls(records, allow_self_loops=True)
