"""The exact one-pass IRS algorithm (paper §3.1, Algorithm 2).

The algorithm scans the interaction log **in reverse chronological order**.
By Lemma 1, adding an interaction ``(u, v, t)`` whose time stamp precedes
everything processed so far can only change the summary of ``u``; the update
rule (Lemma 2) is::

    ϕ'(u) = ↓( {(v, t)} ∪ ϕ(u) ∪ {(z, t') ∈ ϕ(v) | t' − t + 1 ≤ ω} )

i.e. add the direct hop, then fold in every channel of ``v`` that still fits
the duration budget when prepended with the new edge; ``↓`` keeps, per
target, only the minimal end time.

Worst-case cost is O(m·n) time and O(n²) space (Lemma 3) — the price of
exactness that motivates the sketch-based variant in
:mod:`repro.core.approx`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

import repro.obs as obs
from repro.core.interactions import Interaction, InteractionLog
from repro.core.summary import IRSSummary
from repro.lint.contracts import invariant, post_exact_apply
from repro.obs import OBS_STATE as _OBS
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["ExactIRS"]

Node = Hashable

_INTERACTIONS = obs.counter(
    "exact.interactions", "Interactions processed by the exact reverse scan."
)
_MERGES = obs.counter(
    "exact.merges", "Summary merges performed by the exact reverse scan."
)
_ENTRIES = obs.gauge(
    "exact.entries", "Total (node, λ) entries stored in the exact index — Lemma 3's O(n²)."
)
_THROUGHPUT = obs.gauge(
    "exact.interactions_per_second",
    "Reverse-scan throughput of the last ExactIRS.from_log build (Fig. 3).",
)


class ExactIRS:
    """Exact influence-reachability-set index over an interaction log.

    Build it in one call::

        index = ExactIRS.from_log(log, window=omega)

    or incrementally by feeding interactions in reverse chronological order
    through :meth:`process` — the paper's "one-pass but not streaming" mode,
    where each processed interaction must be older than all previous ones.

    Parameters
    ----------
    window:
        Maximum channel duration ω, in time ticks.
    """

    def __init__(self, window: int) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._summaries: Dict[Node, IRSSummary] = {}
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(cls, log: InteractionLog, window: int) -> "ExactIRS":
        """Build the full index with one reverse pass over ``log``.

        The paper assumes distinct time stamps (§2); real logs often have
        ties, so this constructor handles them soundly: interactions sharing
        a time stamp are processed as a *batch* against a snapshot of the
        pre-batch summaries — two tied interactions can never chain into one
        channel (Definition 1 requires strictly increasing times), and the
        snapshot guarantees they cannot contaminate each other's merges.
        """
        require_type(log, "log", InteractionLog)
        index = cls(window)
        build_span = obs.span("exact.build", window=window)
        with build_span:
            batch: list[Interaction] = []
            for record in log.reverse_time_order():
                if batch and record.time != batch[0].time:
                    index._process_batch(batch)
                    batch = []
                batch.append(record)
            if batch:
                index._process_batch(batch)
            # Every node should answer queries, including pure sinks.
            for node in log.nodes:
                index._summaries.setdefault(node, IRSSummary())
        if _OBS.enabled:
            _ENTRIES.set(index.entry_count())
            seconds = build_span.duration_ns / 1e9
            if seconds > 0:
                _THROUGHPUT.labels(window=window).set(len(log) / seconds)
        return index

    def _process_batch(self, records: list[Interaction]) -> None:
        """Process interactions sharing one time stamp (see from_log)."""
        if len(records) == 1:
            record = records[0]
            self.process(record.source, record.target, record.time)
            return
        snapshots: Dict[Node, Optional[IRSSummary]] = {}
        for record in records:
            target = record.target
            if target not in snapshots:
                existing = self._summaries.get(target)
                snapshots[target] = existing.copy() if existing else None  # repro-lint: disable=R301 (tied-batch snapshot isolation requires a pre-batch copy)
        for record in records:
            target = record.target
            self._apply(record.source, target, record.time, snapshots[target])
        self._last_time = records[0].time

    def process(self, source: Node, target: Node, time: int) -> None:
        """Process one interaction; times must be strictly decreasing.

        Implements the body of Algorithm 2:
        ``Add(ϕ(u), (v, t)); Merge(ϕ(u), ϕ(v), t, ω)``.  Feeding two
        interactions with equal stamps through this incremental API is
        rejected — their merges would wrongly chain tied edges; use
        :meth:`from_log`, which batches ties correctly.
        """
        require_int(time, "time")
        if self._last_time is not None and time >= self._last_time:
            raise ValueError(
                f"interactions must be processed in strictly decreasing time "
                f"order: got t={time} after t={self._last_time} "
                "(use from_log for logs with tied time stamps)"
            )
        self._last_time = time
        self._apply(source, target, time, self._summaries.get(target))

    def process_tied(
        self,
        source: Node,
        target: Node,
        time: int,
        target_summary: Optional[IRSSummary],
    ) -> None:
        """One interaction of a tied batch, merged from an explicit snapshot.

        The incremental face of :meth:`from_log`'s tie batching: the caller
        owns the pre-stamp snapshots (see
        :meth:`repro.core.streaming.StreamingExactIndex.observe`) and the
        stamp may equal the current frontier — it must not move it forward.
        """
        require_int(time, "time")
        if self._last_time is not None and time > self._last_time:
            raise ValueError(
                f"tied processing cannot move the frontier forward: got "
                f"t={time} after t={self._last_time}"
            )
        self._last_time = time
        self._apply(source, target, time, target_summary)

    def summary_snapshot(self, node: Node) -> Optional[IRSSummary]:
        """An isolated copy of ``ϕω(node)`` (None when the node is unseen).

        Snapshots are what keep tied interactions from chaining: merges
        within one stamp must read the pre-stamp state, never the partially
        updated one.
        """
        existing = self._summaries.get(node)
        return existing.copy() if existing is not None else None  # repro-lint: disable=R301 (tied-batch snapshot isolation requires a pre-batch copy)

    def evict_ends_after(self, threshold: int) -> Dict[Node, int]:
        """Decay sweep: drop entries with ``λ > threshold`` from every summary.

        Returns how many entries were evicted per *reached* node, which is
        exactly the per-influencer decrement the live index's incremental
        top-k counts need (the index is used as a time-and-direction dual
        there, so "reached node" means influencer).
        """
        require_int(threshold, "threshold")
        evicted: Dict[Node, int] = {}
        for summary in self._summaries.values():  # repro-lint: budget=O(n·|σ|) decay sweep, amortised by sweep_every
            summary.evict_ends_after_into(threshold, evicted)
        return evicted

    @invariant(post_exact_apply)
    def _apply(
        self,
        source: Node,
        target: Node,
        time: int,
        target_summary: Optional[IRSSummary],
    ) -> None:
        if _OBS.enabled:
            _INTERACTIONS.inc()
        if source == target or self._window == 0:
            # Self-loops carry no influence; with ω = 0 even a single edge
            # (duration 1) exceeds the budget.
            self._summaries.setdefault(source, IRSSummary())
            self._summaries.setdefault(target, IRSSummary())
            return
        summary = self._summaries.get(source)
        if summary is None:
            summary = IRSSummary()
            self._summaries[source] = summary
        summary.add(target, time)
        if target_summary is not None and len(target_summary) > 0:
            if _OBS.enabled:
                _MERGES.inc()
            summary.merge_within(target_summary, time, self._window, skip=source)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The duration budget ω this index was built with."""
        return self._window

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes with a (possibly empty) summary."""
        return self._summaries.keys()

    def summary(self, node: Node) -> IRSSummary:
        """``ϕω(node)``; an empty summary for unknown nodes."""
        found = self._summaries.get(node)
        return found if found is not None else IRSSummary()

    def reachability_set(self, node: Node) -> set[Node]:
        """``σω(node)`` as a concrete set."""
        return set(self.summary(node).nodes())

    def irs_size(self, node: Node) -> int:
        """``|σω(node)|``."""
        return len(self.summary(node))

    def irs_sizes(self) -> Dict[Node, int]:
        """``|σω(u)|`` for every node of the index."""
        return {node: len(summary) for node, summary in self._summaries.items()}

    def spread(self, seeds: Iterable[Node]) -> int:
        """``|⋃_{u ∈ seeds} σω(u)|`` — the exact influence-oracle answer."""
        covered: set[Node] = set()
        for seed in seeds:
            covered.update(self.summary(seed).nodes())
        return len(covered)

    def entry_count(self) -> int:
        """Total number of ``(node, λ)`` pairs stored — the O(n²) quantity."""
        return sum(len(summary) for summary in self._summaries.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExactIRS(window={self._window}, nodes={len(self._summaries)}, "
            f"entries={self.entry_count()})"
        )
