"""Multi-window IRS index: one pass, every window (extension).

The paper's indexes fix the duration budget ω up front; asking about a new
ω means another pass over the log (its Table 5 builds one index per window
to compare seed sets).  This module removes that restriction: one reverse
pass builds, per node pair, the **Pareto frontier of channels** — the set
of ``(start, end)`` pairs not dominated by a channel that starts later
*and* ends earlier.  Any window query then reduces to a frontier lookup:

* ``v ∈ σω(u)``  ⇔  some frontier entry has ``end − start + 1 ≤ ω``;
* the fastest channel duration (the smallest such ω) is the frontier's
  minimal duration;
* ``λω(u, v)`` is the earliest ``end`` among entries within the budget.

Why one pass suffices: scanning in reverse time order, every *new* channel
of ``u`` begins with the interaction being processed, so its start time
``t`` is strictly smaller than every start already recorded anywhere.  A
new ``(t, end)`` entry therefore enters ``u``'s frontier for target ``z``
iff ``end`` is strictly smaller than the frontier's current minimal end —
frontiers grow only at the low-start/low-end corner, and each per-pair
frontier is a list with both coordinates strictly decreasing.

Cost: worst case O(n²·F) space where F is the frontier length — strictly
more than :class:`~repro.core.exact.ExactIRS` (which is the special case
that keeps only the minimal-end entry).  The index answers *all* windows,
so it replaces W single-window builds at roughly the cost of the longest.

The merge rule mirrors Lemma 2: prepending ``(u, v, t)`` to a channel of
``v`` with frontier entry ``(s', e')`` requires ``s' > t`` (automatic) and
yields the channel ``(t, e')`` — no duration filter is applied, because
*every* duration is now retained for querying.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.interactions import Interaction, InteractionLog
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["MultiWindowIRS"]

Node = Hashable


class MultiWindowIRS:
    """Window-free influence reachability index.

    Build once::

        index = MultiWindowIRS.from_log(log)

    then query any window::

        index.reachability_set("a", window=3)
        index.fastest_duration("a", "c")
        index.irs_size("a", window=10)

    Notes
    -----
    Like :class:`~repro.core.exact.ExactIRS`, ties in the input are handled
    by batching equal-stamp interactions against pre-batch snapshots, and
    channels looping back to their start node are excluded.
    """

    def __init__(self) -> None:
        # _frontiers[u][v]: list of (start, end), both strictly decreasing.
        self._frontiers: Dict[Node, Dict[Node, List[Tuple[int, int]]]] = {}
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(cls, log: InteractionLog) -> "MultiWindowIRS":
        """Build the index with one reverse pass over ``log``."""
        require_type(log, "log", InteractionLog)
        index = cls()
        batch: list[Interaction] = []
        for record in log.reverse_time_order():
            if batch and record.time != batch[0].time:
                index._process_batch(batch)
                batch = []
            batch.append(record)
        if batch:
            index._process_batch(batch)
        for node in log.nodes:
            index._frontiers.setdefault(node, {})
        return index

    def _process_batch(self, records: list[Interaction]) -> None:
        snapshots: Dict[Node, Optional[Dict[Node, List[Tuple[int, int]]]]] = {}
        for record in records:
            target = record.target
            if target not in snapshots:
                existing = self._frontiers.get(target)
                snapshots[target] = (
                    {v: list(entries) for v, entries in existing.items()}  # repro-lint: disable=R301 (tied-batch snapshot isolation requires a pre-batch copy)
                    if existing
                    else None
                )
        for record in records:
            target = record.target
            self._apply(record.source, target, record.time, snapshots[target])
        self._last_time = records[0].time

    def _apply(
        self,
        source: Node,
        target: Node,
        time: int,
        target_frontier: Optional[Dict[Node, List[Tuple[int, int]]]],
    ) -> None:
        if source == target:
            self._frontiers.setdefault(source, {})
            self._frontiers.setdefault(target, {})
            return
        mine = self._frontiers.setdefault(source, {})
        self._insert(mine, target, time, time)
        if target_frontier:
            for reached, entries in target_frontier.items():
                if reached == source:
                    continue
                # The cheapest extension of any of v's channels to `reached`
                # is the one with the earliest end; all extensions share the
                # new start `time`, so only the minimal end matters.
                best_end = entries[-1][1]
                self._insert(mine, reached, time, best_end)

    @staticmethod
    def _insert(
        frontier: Dict[Node, List[Tuple[int, int]]],
        target: Node,
        start: int,
        end: int,
    ) -> None:
        entries = frontier.get(target)
        if entries is None:
            frontier[target] = [(start, end)]  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)
            return
        last_start, last_end = entries[-1]
        if start == last_start:
            # Same batch stamp: keep the smaller end.
            if end < last_end:
                entries[-1] = (start, end)  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)
            return
        # Reverse scan guarantees start < last_start; the new entry joins
        # the frontier iff it strictly improves the minimal end.
        if end < last_end:
            entries.append((start, end))  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Iterable[Node]:
        """All indexed nodes."""
        return self._frontiers.keys()

    def frontier(self, source: Node, target: Node) -> List[Tuple[int, int]]:
        """The raw ``(start, end)`` Pareto frontier for one pair."""
        return list(self._frontiers.get(source, {}).get(target, ()))

    def fastest_duration(self, source: Node, target: Node) -> Optional[int]:
        """Minimal channel duration ``source → target``; ``None`` if
        unreachable at any window."""
        entries = self._frontiers.get(source, {}).get(target)
        if not entries:
            return None
        return min(end - start + 1 for start, end in entries)  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)

    def reaches(self, source: Node, target: Node, window: int) -> bool:
        """``target ∈ σω(source)`` for ω = ``window``."""
        self._check_window(window)
        entries = self._frontiers.get(source, {}).get(target)
        if not entries:
            return False
        return any(end - start + 1 <= window for start, end in entries)  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)

    def earliest_end(
        self, source: Node, target: Node, window: int
    ) -> Optional[int]:
        """``λω(source, target)`` — minimal end among in-budget channels."""
        self._check_window(window)
        entries = self._frontiers.get(source, {}).get(target)
        if not entries:
            return None
        candidates = [
            end for start, end in entries if end - start + 1 <= window  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)
        ]
        return min(candidates) if candidates else None

    def reachability_set(self, source: Node, window: int) -> set[Node]:
        """``σω(source)`` for ω = ``window``."""
        self._check_window(window)
        frontier = self._frontiers.get(source, {})
        return {
            target
            for target, entries in frontier.items()
            if any(end - start + 1 <= window for start, end in entries)  # repro-lint: disable=R304 (interval frontiers are (start, end) tuple lists; packed layout is ROADMAP item 3)
        }

    def irs_size(self, source: Node, window: int) -> int:
        """``|σω(source)|``."""
        return len(self.reachability_set(source, window))

    def spread(self, seeds: Iterable[Node], window: int) -> int:
        """``|⋃ σω(seed)|`` — the influence-oracle answer at any window."""
        covered: set = set()
        for seed in seeds:
            covered.update(self.reachability_set(seed, window))
        return len(covered)

    def entry_count(self) -> int:
        """Total frontier entries stored (the memory driver)."""
        return sum(
            len(entries)
            for frontier in self._frontiers.values()
            for entries in frontier.values()
        )

    def max_frontier_length(self) -> int:
        """Longest per-pair frontier."""
        longest = 0
        for frontier in self._frontiers.values():  # repro-lint: budget=O(n²·F)
            for entries in frontier.values():
                length = len(entries)
                if length > longest:
                    longest = length
        return longest

    @staticmethod
    def _check_window(window: int) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MultiWindowIRS(nodes={len(self._frontiers)}, "
            f"entries={self.entry_count()})"
        )
