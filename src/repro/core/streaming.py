"""Streaming maintenance of *influenced-by* sets (extension).

The paper is explicit that its one-pass algorithms are **not** streaming:
"if a new interaction arrives with a time stamp later than any other …
potentially the IRS of every node in the network changes" (§3).  That
asymmetry is directional.  The mirror statement of Lemma 1 holds forward:

    when the **latest** interaction ``(u, v, t)`` arrives, only the
    *influenced-by* set of ``v`` — the nodes with a channel **into** ``v``
    — can change.

So while the influence reachability sets σω(·) need the reverse scan, the
dual sets

    σω_in(v) = { u ∈ V | ∃ channel u → v with duration ≤ ω }

admit true streaming maintenance: process interactions as they arrive and
answer "how many distinct users could have influenced v within the last
ω ticks of path budget" at any moment.  This is the live-monitoring use
case (who has this account plausibly heard from?) that the offline index
cannot serve.

Implementation is by duality rather than re-derivation: an in-channel of
``v`` in the stream is exactly an out-channel of ``v`` in the
time-and-direction dual ``(u, v, t) → (v, u, −t)``
(:meth:`~repro.core.interactions.InteractionLog.time_reversed`).  Feeding
dual interactions to the paper's reverse-scan machinery — which requires
strictly *decreasing* stamps, i.e. strictly increasing original stamps —
yields per-node summaries whose entries ``(u, −s)`` record the **latest
channel start time** s: the dominance flips from "earliest end wins" to
"latest start wins", which is precisely what makes late arrivals cheap.

Both flavours are provided: :class:`StreamingExactIndex` (exact dual
summaries) and :class:`StreamingSketchIndex` (dual versioned-HLL), plus
the one-shot helper :func:`influencers_of`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

import repro.obs as obs
from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.core.interactions import InteractionLog
from repro.core.summary import IRSSummary
from repro.lint.contracts import invariant, post_streaming_process
from repro.sketch.vhll import VersionedHLL
from repro.obs import OBS_STATE as _OBS
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = [
    "StreamingExactIndex",
    "StreamingSketchIndex",
    "influencers_of",
]

Node = Hashable

_EVENTS = obs.counter("streaming.events", "Interactions ingested by a streaming index.")
_EVENT_SECONDS = obs.histogram(
    "streaming.event_seconds", "Per-event ingest latency of the streaming indexes."
)
_ENTRIES = obs.gauge(
    "streaming.entries",
    "Stored entries of a streaming index (sampled every 1024 events).",
)

#: Refresh the entries gauge this often; entry_count() walks every summary.
_ENTRIES_SAMPLE_EVERY = 1024


class StreamingExactIndex:
    """Exact influenced-by sets, maintained as interactions arrive.

    Parameters
    ----------
    window:
        Maximum channel duration ω.

    Example
    -------
    >>> index = StreamingExactIndex(window=5)
    >>> index.process("a", "b", 1)
    >>> index.process("b", "c", 3)
    >>> sorted(index.influencers("c"))
    ['a', 'b']
    """

    def __init__(self, window: int) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._dual = ExactIRS(window)
        # Live-mode tie handling: the original-time frontier plus pre-stamp
        # summary snapshots of every node touched at the current stamp.
        self._stamp: Optional[int] = None
        self._stamp_snapshots: Dict[Node, Optional[IRSSummary]] = {}
        # Label children are resolved once; .inc()/.time() stay cheap.
        self._obs_events = _EVENTS.labels(kind="exact")
        self._obs_latency = _EVENT_SECONDS.labels(kind="exact")
        self._obs_entries = _ENTRIES.labels(kind="exact")
        self._obs_seen = 0

    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes seen so far."""
        return self._dual.nodes

    @invariant(post_streaming_process)
    def process(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be strictly increasing."""
        require_int(time, "time")
        # Dual: flip direction, negate time.  The dual index enforces
        # strictly decreasing dual stamps == strictly increasing originals.
        with self._obs_latency.time():
            self._dual.process(target, source, -time)
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @invariant(post_streaming_process)
    def observe(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be *non-decreasing* (live mode).

        Unlike :meth:`process`, equal stamps are accepted: interactions
        sharing the current stamp are applied against a snapshot of each
        dual summary as it stood when the stamp opened — the incremental
        twin of :meth:`from_log`'s tie batching, so tied edges never chain
        into one channel.  Snapshots are taken lazily at a node's first
        touch within the stamp and dropped when the stamp advances.
        """
        require_int(time, "time")
        if self._stamp is not None and time < self._stamp:
            raise ValueError(
                f"live interactions must arrive in non-decreasing time order: "
                f"got t={time} after t={self._stamp}"
            )
        with self._obs_latency.time():
            if time != self._stamp:
                self._stamp = time
                self._stamp_snapshots.clear()
            # Dual event: flip direction, negate time.  The dual source is
            # mutated, the dual target is read — snapshot both at first touch
            # (a node mutated now may be read later within the same stamp).
            snapshots = self._stamp_snapshots
            for node in (target, source):
                if node not in snapshots:
                    snapshots[node] = self._dual.summary_snapshot(node)
            self._dual.process_tied(target, source, -time, snapshots[source])
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @classmethod
    def from_log(cls, log: InteractionLog, window: int) -> "StreamingExactIndex":
        """Replay a whole log (ties batched via the dual's from_log)."""
        require_type(log, "log", InteractionLog)
        index = cls(window)
        index._dual = ExactIRS.from_log(log.time_reversed(), window)
        return index

    @property
    def last_time(self) -> Optional[int]:
        """Original-time frontier of :meth:`observe` (None before any event)."""
        return self._stamp

    def influencers(self, node: Node, since: Optional[int] = None) -> set[Node]:
        """``σω_in(node)`` — everyone with an in-budget channel into node.

        With ``since``, only influence along channels *starting* at or
        after ``since`` counts — the sliding-window decay semantics of
        :mod:`repro.ingest.live` (a channel's start is its oldest
        interaction, so every interaction of a counted channel is recent).
        """
        if since is None:
            return self._dual.reachability_set(node)
        require_int(since, "since")
        return {
            influencer
            for influencer, dual_lambda in self._dual.summary(node).items()
            if -dual_lambda >= since
        }

    def influencer_count(self, node: Node, since: Optional[int] = None) -> int:
        """``|σω_in(node)|`` (optionally decayed, see :meth:`influencers`)."""
        if since is None:
            return self._dual.irs_size(node)
        require_int(since, "since")
        return sum(
            1
            for _, dual_lambda in self._dual.summary(node).items()
            if -dual_lambda >= since
        )

    def influencer_starts(self, node: Node) -> Dict[Node, int]:
        """``{influencer: latest channel start}`` as a fresh dict."""
        return {
            influencer: -dual_lambda
            for influencer, dual_lambda in self._dual.summary(node).items()
        }

    def iter_influencer_starts(self, node: Node) -> Iterator[Tuple[Node, int]]:
        """Lazily yield ``(influencer, latest channel start)`` pairs."""
        for influencer, dual_lambda in self._dual.summary(node).items():
            yield influencer, -dual_lambda

    def evict_started_before(self, cutoff: int) -> Dict[Node, int]:
        """Decay sweep: drop every entry whose channel start precedes ``cutoff``.

        Sound *and* complete for the sliding-window semantics: starts are
        fixed once recorded (expiry is monotone), and any future merge
        extending an evicted channel would inherit the same expired start,
        so nothing evicted can ever be needed again.  Returns per-influencer
        eviction counts — the decrements for the live top-k counts.
        """
        require_int(cutoff, "cutoff")
        return self._dual.evict_ends_after(-cutoff)

    def latest_start(self, node: Node, influencer: Node) -> Optional[int]:
        """Latest start time of an in-budget channel ``influencer → node``.

        The dual's λ (minimal dual end time) is the negated maximal
        original start time — later starts are fresher influence.
        """
        dual_lambda = self._dual.summary(node).earliest_end(influencer)
        return -dual_lambda if dual_lambda is not None else None

    def audience_overlap(self, nodes: Iterable[Node]) -> int:
        """``|⋃ σω_in(v)|`` — distinct users who could have influenced any
        of ``nodes``."""
        return self._dual.spread(nodes)

    def entry_count(self) -> int:
        """Stored summary entries."""
        return self._dual.entry_count()


class StreamingSketchIndex:
    """Sketch-based influenced-by counts, maintained as interactions arrive.

    The memory-bounded sibling of :class:`StreamingExactIndex`: per node a
    versioned HLL over the dual stream, β = ``2**precision`` cells.
    """

    def __init__(self, window: int, precision: int = 9, salt: int = 0) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._dual = ApproxIRS(window, precision=precision, salt=salt)
        self._stamp: Optional[int] = None
        self._stamp_snapshots: Dict[Node, Optional[VersionedHLL]] = {}
        self._obs_events = _EVENTS.labels(kind="sketch")
        self._obs_latency = _EVENT_SECONDS.labels(kind="sketch")
        self._obs_entries = _ENTRIES.labels(kind="sketch")
        self._obs_seen = 0

    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def precision(self) -> int:
        """Sketch index bits."""
        return self._dual.precision

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes seen so far."""
        return self._dual.nodes

    @invariant(post_streaming_process)
    def process(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be strictly increasing."""
        require_int(time, "time")
        with self._obs_latency.time():
            self._dual.process(target, source, -time)
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @classmethod
    def from_log(
        cls,
        log: InteractionLog,
        window: int,
        precision: int = 9,
        salt: int = 0,
    ) -> "StreamingSketchIndex":
        """Replay a whole log."""
        require_type(log, "log", InteractionLog)
        index = cls(window, precision=precision, salt=salt)
        index._dual = ApproxIRS.from_log(
            log.time_reversed(), window, precision=precision, salt=salt
        )
        return index

    @invariant(post_streaming_process)
    def observe(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be non-decreasing (live mode).

        The sketch twin of :meth:`StreamingExactIndex.observe`: tied
        stamps merge from pre-stamp sketch snapshots so tied edges never
        chain.
        """
        require_int(time, "time")
        if self._stamp is not None and time < self._stamp:
            raise ValueError(
                f"live interactions must arrive in non-decreasing time order: "
                f"got t={time} after t={self._stamp}"
            )
        with self._obs_latency.time():
            if time != self._stamp:
                self._stamp = time
                self._stamp_snapshots.clear()
            snapshots = self._stamp_snapshots
            for node in (target, source):
                if node not in snapshots:
                    snapshots[node] = self._dual.sketch_snapshot(node)
            self._dual.process_tied(target, source, -time, snapshots[source])
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @property
    def last_time(self) -> Optional[int]:
        """Original-time frontier of :meth:`observe` (None before any event)."""
        return self._stamp

    def influencer_estimate(self, node: Node, since: Optional[int] = None) -> float:
        """Estimated ``|σω_in(node)|``.

        With ``since``, only channels starting at or after ``since`` count
        (dual pair times are negated starts, so the decay bound is an upper
        bound ``-since`` on pair time).
        """
        if since is None:
            return self._dual.irs_estimate(node)
        require_int(since, "since")
        return self._dual.sketch(node).cardinality_within(None, -since)

    def evict_started_before(self, cutoff: int) -> int:
        """Decay sweep: drop pairs whose channel start precedes ``cutoff``.

        Returns the evicted pair count; see
        :meth:`StreamingExactIndex.evict_started_before` for why eviction
        is sound and complete.
        """
        require_int(cutoff, "cutoff")
        return self._dual.prune_ends_after(-cutoff)

    def audience_overlap(self, nodes: Iterable[Node]) -> float:
        """Estimated ``|⋃ σω_in(v)|`` over the given nodes."""
        return self._dual.spread(nodes)

    def entry_count(self) -> int:
        """Stored sketch pairs."""
        return self._dual.entry_count()


def influencers_of(
    log: InteractionLog, node: Node, window: int
) -> set[Node]:
    """One-shot ``σω_in(node)`` for a complete log.

    Convenience wrapper over :class:`StreamingExactIndex` for offline use;
    equivalent to checking ``node ∈ σω(u)`` for every ``u``, at a fraction
    of the cost.
    """
    require_type(log, "log", InteractionLog)
    return StreamingExactIndex.from_log(log, window).influencers(node)
