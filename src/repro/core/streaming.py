"""Streaming maintenance of *influenced-by* sets (extension).

The paper is explicit that its one-pass algorithms are **not** streaming:
"if a new interaction arrives with a time stamp later than any other …
potentially the IRS of every node in the network changes" (§3).  That
asymmetry is directional.  The mirror statement of Lemma 1 holds forward:

    when the **latest** interaction ``(u, v, t)`` arrives, only the
    *influenced-by* set of ``v`` — the nodes with a channel **into** ``v``
    — can change.

So while the influence reachability sets σω(·) need the reverse scan, the
dual sets

    σω_in(v) = { u ∈ V | ∃ channel u → v with duration ≤ ω }

admit true streaming maintenance: process interactions as they arrive and
answer "how many distinct users could have influenced v within the last
ω ticks of path budget" at any moment.  This is the live-monitoring use
case (who has this account plausibly heard from?) that the offline index
cannot serve.

Implementation is by duality rather than re-derivation: an in-channel of
``v`` in the stream is exactly an out-channel of ``v`` in the
time-and-direction dual ``(u, v, t) → (v, u, −t)``
(:meth:`~repro.core.interactions.InteractionLog.time_reversed`).  Feeding
dual interactions to the paper's reverse-scan machinery — which requires
strictly *decreasing* stamps, i.e. strictly increasing original stamps —
yields per-node summaries whose entries ``(u, −s)`` record the **latest
channel start time** s: the dominance flips from "earliest end wins" to
"latest start wins", which is precisely what makes late arrivals cheap.

Both flavours are provided: :class:`StreamingExactIndex` (exact dual
summaries) and :class:`StreamingSketchIndex` (dual versioned-HLL), plus
the one-shot helper :func:`influencers_of`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

import repro.obs as obs
from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.core.interactions import InteractionLog
from repro.lint.contracts import invariant, post_streaming_process
from repro.obs import OBS_STATE as _OBS
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = [
    "StreamingExactIndex",
    "StreamingSketchIndex",
    "influencers_of",
]

Node = Hashable

_EVENTS = obs.counter("streaming.events", "Interactions ingested by a streaming index.")
_EVENT_SECONDS = obs.histogram(
    "streaming.event_seconds", "Per-event ingest latency of the streaming indexes."
)
_ENTRIES = obs.gauge(
    "streaming.entries",
    "Stored entries of a streaming index (sampled every 1024 events).",
)

#: Refresh the entries gauge this often; entry_count() walks every summary.
_ENTRIES_SAMPLE_EVERY = 1024


class StreamingExactIndex:
    """Exact influenced-by sets, maintained as interactions arrive.

    Parameters
    ----------
    window:
        Maximum channel duration ω.

    Example
    -------
    >>> index = StreamingExactIndex(window=5)
    >>> index.process("a", "b", 1)
    >>> index.process("b", "c", 3)
    >>> sorted(index.influencers("c"))
    ['a', 'b']
    """

    def __init__(self, window: int) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._dual = ExactIRS(window)
        # Label children are resolved once; .inc()/.time() stay cheap.
        self._obs_events = _EVENTS.labels(kind="exact")
        self._obs_latency = _EVENT_SECONDS.labels(kind="exact")
        self._obs_entries = _ENTRIES.labels(kind="exact")
        self._obs_seen = 0

    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes seen so far."""
        return self._dual.nodes

    @invariant(post_streaming_process)
    def process(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be strictly increasing."""
        require_int(time, "time")
        # Dual: flip direction, negate time.  The dual index enforces
        # strictly decreasing dual stamps == strictly increasing originals.
        with self._obs_latency.time():
            self._dual.process(target, source, -time)
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @classmethod
    def from_log(cls, log: InteractionLog, window: int) -> "StreamingExactIndex":
        """Replay a whole log (ties batched via the dual's from_log)."""
        require_type(log, "log", InteractionLog)
        index = cls(window)
        index._dual = ExactIRS.from_log(log.time_reversed(), window)
        return index

    def influencers(self, node: Node) -> set[Node]:
        """``σω_in(node)`` — everyone with an in-budget channel into node."""
        return self._dual.reachability_set(node)

    def influencer_count(self, node: Node) -> int:
        """``|σω_in(node)|``."""
        return self._dual.irs_size(node)

    def latest_start(self, node: Node, influencer: Node) -> Optional[int]:
        """Latest start time of an in-budget channel ``influencer → node``.

        The dual's λ (minimal dual end time) is the negated maximal
        original start time — later starts are fresher influence.
        """
        dual_lambda = self._dual.summary(node).earliest_end(influencer)
        return -dual_lambda if dual_lambda is not None else None

    def audience_overlap(self, nodes: Iterable[Node]) -> int:
        """``|⋃ σω_in(v)|`` — distinct users who could have influenced any
        of ``nodes``."""
        return self._dual.spread(nodes)

    def entry_count(self) -> int:
        """Stored summary entries."""
        return self._dual.entry_count()


class StreamingSketchIndex:
    """Sketch-based influenced-by counts, maintained as interactions arrive.

    The memory-bounded sibling of :class:`StreamingExactIndex`: per node a
    versioned HLL over the dual stream, β = ``2**precision`` cells.
    """

    def __init__(self, window: int, precision: int = 9, salt: int = 0) -> None:
        require_int(window, "window")
        require_non_negative(window, "window")
        self._window = window
        self._dual = ApproxIRS(window, precision=precision, salt=salt)
        self._obs_events = _EVENTS.labels(kind="sketch")
        self._obs_latency = _EVENT_SECONDS.labels(kind="sketch")
        self._obs_entries = _ENTRIES.labels(kind="sketch")
        self._obs_seen = 0

    @property
    def window(self) -> int:
        """The duration budget ω."""
        return self._window

    @property
    def precision(self) -> int:
        """Sketch index bits."""
        return self._dual.precision

    @property
    def nodes(self) -> Iterable[Node]:
        """All nodes seen so far."""
        return self._dual.nodes

    @invariant(post_streaming_process)
    def process(self, source: Node, target: Node, time: int) -> None:
        """Feed one interaction; times must be strictly increasing."""
        require_int(time, "time")
        with self._obs_latency.time():
            self._dual.process(target, source, -time)
        if _OBS.enabled:
            self._obs_events.inc()
            self._obs_seen += 1
            if self._obs_seen % _ENTRIES_SAMPLE_EVERY == 0:
                self._obs_entries.set(self._dual.entry_count())

    @classmethod
    def from_log(
        cls,
        log: InteractionLog,
        window: int,
        precision: int = 9,
        salt: int = 0,
    ) -> "StreamingSketchIndex":
        """Replay a whole log."""
        require_type(log, "log", InteractionLog)
        index = cls(window, precision=precision, salt=salt)
        index._dual = ApproxIRS.from_log(
            log.time_reversed(), window, precision=precision, salt=salt
        )
        return index

    def influencer_estimate(self, node: Node) -> float:
        """Estimated ``|σω_in(node)|``."""
        return self._dual.irs_estimate(node)

    def audience_overlap(self, nodes: Iterable[Node]) -> float:
        """Estimated ``|⋃ σω_in(v)|`` over the given nodes."""
        return self._dual.spread(nodes)

    def entry_count(self) -> int:
        """Stored sketch pairs."""
        return self._dual.entry_count()


def influencers_of(
    log: InteractionLog, node: Node, window: int
) -> set[Node]:
    """One-shot ``σω_in(node)`` for a complete log.

    Convenience wrapper over :class:`StreamingExactIndex` for offline use;
    equivalent to checking ``node ∈ σω(u)`` for every ``u``, at a fraction
    of the cost.
    """
    require_type(log, "log", InteractionLog)
    return StreamingExactIndex.from_log(log, window).influencers(node)
