"""Reference algorithms for information channels (paper Definitions 1–2).

An **information channel** from ``u`` to ``v`` is a series of interactions
``(u,n1,t1),(n1,n2,t2),…,(nk,v,tk)`` with strictly increasing times
``t1 < t2 < … < tk``; its *duration* is ``tk − t1 + 1`` and its *end time*
is ``tk``.  The **influence reachability set** ``σω(u)`` collects every node
reachable from ``u`` through a channel of duration at most ``ω``.

This module contains deliberately simple, obviously-correct implementations
— per-start-edge forward scans and bounded channel enumeration.  They are
quadratic-ish and only suitable for small graphs; their purpose is to be the
ground truth that the one-pass algorithms (:mod:`repro.core.exact`,
:mod:`repro.core.approx`) are tested against, and to provide channel-level
introspection (actual paths, durations) that the summaries discard.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence

from repro.core.interactions import Interaction, InteractionLog
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = [
    "reachability_summary",
    "reachability_set",
    "all_reachability_sets",
    "all_reachability_summaries",
    "enumerate_channels",
    "channel_duration",
    "channel_end",
    "has_channel",
    "fastest_channel_duration",
]

Node = Hashable


def channel_duration(channel: Sequence[Interaction]) -> int:
    """``dur(ic) = tk − t1 + 1`` (paper Definition 1)."""
    if not channel:
        raise ValueError("channel must contain at least one interaction")
    return channel[-1].time - channel[0].time + 1


def channel_end(channel: Sequence[Interaction]) -> int:
    """``end(ic) = tk`` (paper Definition 1)."""
    if not channel:
        raise ValueError("channel must contain at least one interaction")
    return channel[-1].time


def _validate(log: InteractionLog, window: int) -> None:
    require_type(log, "log", InteractionLog)
    require_int(window, "window")
    require_non_negative(window, "window")


def reachability_summary(
    log: InteractionLog, source: Node, window: int
) -> Dict[Node, int]:
    """Exact IRS summary ``ϕω(source)`` by brute force.

    Returns ``{v: λ(source, v)}`` where ``λ`` is the minimal end time over
    all channels ``source → v`` of duration ≤ ``window`` (paper Definition
    4).  The source itself never appears in its own summary.

    Method: for every interaction ``(source, v, t)`` — each possible first
    hop — run one forward earliest-arrival scan over the interactions in
    ``(t, t + window − 1]``, then take per-target minima across first hops.
    """
    _validate(log, window)
    interactions = list(log)
    best: Dict[Node, int] = {}
    for start_index, first in enumerate(interactions):  # repro-lint: budget=O(m²)
        if first.source != source:
            continue
        deadline = first.time + window - 1
        if window == 0:
            continue
        # Earliest arrival time at each node for channels starting with
        # `first`.  `first.target` is reached at `first.time`.
        arrival: Dict[Node, int] = {first.target: first.time}
        for record in interactions[start_index + 1 :]:
            if record.time > deadline:
                break
            origin_arrival = arrival.get(record.source)
            if origin_arrival is not None and origin_arrival < record.time:
                previous = arrival.get(record.target)
                if previous is None or record.time < previous:
                    arrival[record.target] = record.time
        for node, end_time in arrival.items():
            if node == source:
                continue
            current = best.get(node)
            if current is None or end_time < current:
                best[node] = end_time
    return best


def reachability_set(log: InteractionLog, source: Node, window: int) -> set[Node]:
    """Exact ``σω(source)`` (paper Definition 2) by brute force."""
    return set(reachability_summary(log, source, window))


def all_reachability_sets(log: InteractionLog, window: int) -> Dict[Node, set[Node]]:
    """``σω(u)`` for every node ``u`` of the network, by brute force."""
    _validate(log, window)
    return {node: reachability_set(log, node, window) for node in log.nodes}


def all_reachability_summaries(
    log: InteractionLog, window: int
) -> Dict[Node, Dict[Node, int]]:
    """``ϕω(u)`` for every node ``u`` of the network, by brute force."""
    _validate(log, window)
    return {node: reachability_summary(log, node, window) for node in log.nodes}


def enumerate_channels(
    log: InteractionLog,
    source: Node,
    target: Optional[Node] = None,
    window: Optional[int] = None,
    max_channels: int = 100_000,
) -> Iterator[List[Interaction]]:
    """Yield information channels starting at ``source`` by DFS.

    Every yielded value is a list of interactions with strictly increasing
    times whose first source is ``source``.  When ``target`` is given, only
    channels ending at ``target`` are yielded; when ``window`` is given,
    only channels of duration ≤ ``window``.

    The number of channels can be exponential in pathological inputs, so an
    explicit ``max_channels`` budget guards the enumeration; exceeding it
    raises :class:`RuntimeError`.  This function exists for analysis and for
    testing the summary algorithms against literal Definition 1.
    """
    require_type(log, "log", InteractionLog)
    if window is not None:
        require_int(window, "window")
        require_non_negative(window, "window")

    by_source: Dict[Node, List[Interaction]] = {}
    for record in log:
        by_source.setdefault(record.source, []).append(record)
    # Lists inherit the log's time-sorted order.

    yielded = 0
    path: List[Interaction] = []

    def extend(node: Node, after_time: int, start_time: Optional[int]) -> Iterator[List[Interaction]]:
        nonlocal yielded
        for record in by_source.get(node, ()):  # time-ascending
            if record.time <= after_time:
                continue
            if start_time is not None and window is not None:
                if record.time - start_time + 1 > window:
                    break  # later interactions only get worse
            path.append(record)
            if target is None or record.target == target:
                yielded += 1
                if yielded > max_channels:
                    raise RuntimeError(
                        f"more than max_channels={max_channels} channels; "
                        "raise the budget or constrain the query"
                    )
                yield list(path)
            effective_start = start_time if start_time is not None else record.time
            yield from extend(record.target, record.time, effective_start)
            path.pop()

    yield from extend(source, float("-inf"), None)  # type: ignore[arg-type]


def has_channel(
    log: InteractionLog, source: Node, target: Node, window: Optional[int] = None
) -> bool:
    """True iff some channel ``source → target`` exists (duration ≤ window)."""
    if window is not None:
        require_int(window, "window")
        require_non_negative(window, "window")
    effective_window = window if window is not None else log.time_span
    return target in reachability_set(log, source, effective_window)


def fastest_channel_duration(
    log: InteractionLog, source: Node, target: Node
) -> Optional[int]:
    """Minimal duration of any channel ``source → target``, or ``None``.

    This is the "fastest temporal path" notion of Wu et al. (VLDB 2014)
    restricted to channels: the smallest ω for which ``target ∈ σω(source)``.
    Computed by scanning start edges like :func:`reachability_summary` but
    minimising ``end − start + 1`` instead of ``end``.
    """
    require_type(log, "log", InteractionLog)
    interactions = list(log)
    best: Optional[int] = None
    for start_index, first in enumerate(interactions):  # repro-lint: budget=O(m²)
        if first.source != source:
            continue
        arrival: Dict[Node, int] = {first.target: first.time}
        for record in interactions[start_index + 1 :]:
            origin_arrival = arrival.get(record.source)
            if origin_arrival is not None and origin_arrival < record.time:
                previous = arrival.get(record.target)
                if previous is None or record.time < previous:
                    arrival[record.target] = record.time
        if target in arrival and target != source:
            duration = arrival[target] - first.time + 1
            if best is None or duration < best:
                best = duration
    return best
