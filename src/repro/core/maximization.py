"""Greedy influence maximization over an influence oracle (paper §4.2).

Finding the ``k``-seed set with maximum combined IRS coverage is NP-hard
(paper Lemma 7 — it is maximum coverage), but the objective
``Inf(S) = |⋃_{u∈S} σω(u)|`` is monotone and submodular (Lemma 8), so the
classical greedy algorithm achieves the ``1 − 1/e`` approximation.

Three selectors are provided:

* :func:`greedy_top_k` — the paper's Algorithm 4: candidates sorted by
  individual influence; each round scans the sorted list and stops early as
  soon as the best gain found so far exceeds the *individual* influence of
  the next candidate (an upper bound on its gain);
* :func:`celf_top_k` — CELF lazy greedy (Leskovec et al. 2007): cached
  stale gains in a max-heap, re-evaluated only when they surface.  Returns
  identical seed sets (up to ties) with far fewer oracle calls — the
  ablation benchmark quantifies the difference;
* :func:`top_k_by_influence` — no-overlap-awareness baseline that simply
  takes the ``k`` individually strongest nodes (the paper's HD analogue at
  the IRS level), used in tests and ablations.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, List, Optional, Sequence

import repro.obs as obs
from repro.core.oracle import InfluenceOracle
from repro.obs import OBS_STATE as _OBS
from repro.utils.validation import require_int, require_positive, require_type

__all__ = [
    "greedy_top_k",
    "celf_top_k",
    "top_k_by_influence",
    "spread_trajectory",
]

Node = Hashable

_GAIN_EVALS = obs.counter(
    "maximization.gain_evaluations",
    "Marginal-gain oracle evaluations during seed selection.",
)
_LAZY_HITS = obs.counter(
    "maximization.lazy_hits",
    "CELF selections accepted from a cached gain without re-evaluation.",
)
_CUTOFF_BREAKS = obs.counter(
    "maximization.cutoff_breaks",
    "Greedy rounds ended early by the sorted-scan upper-bound cutoff.",
)
_SEEDS_SELECTED = obs.counter(
    "maximization.seeds_selected", "Seeds chosen across all selector calls."
)


def _candidate_list(
    oracle: InfluenceOracle, candidates: Optional[Iterable[Node]]
) -> List[Node]:
    pool = list(candidates) if candidates is not None else list(oracle.nodes())
    # Deterministic tie-breaking: sort by influence desc, then stable repr.
    pool.sort(key=repr)
    pool.sort(key=oracle.influence, reverse=True)
    return pool


def _validate(oracle: InfluenceOracle, k: int) -> None:
    require_type(oracle, "oracle", InfluenceOracle)
    require_int(k, "k")
    require_positive(k, "k")


def greedy_top_k(
    oracle: InfluenceOracle,
    k: int,
    candidates: Optional[Iterable[Node]] = None,
) -> List[Node]:
    """Paper Algorithm 4: greedy seed selection with the sorted-scan cutoff.

    Parameters
    ----------
    oracle:
        An :class:`~repro.core.oracle.InfluenceOracle`.
    k:
        Number of seeds to select (fewer are returned when the oracle knows
        fewer nodes).
    candidates:
        Restrict selection to this pool; defaults to every oracle node.
    """
    _validate(oracle, k)
    pool = _candidate_list(oracle, candidates)
    selected: List[Node] = []
    covered = oracle.new_accumulator()
    chosen: set = set()
    influence = oracle.influence
    oracle_gain = oracle.gain
    count_cutoff = _CUTOFF_BREAKS.inc
    count_eval = _GAIN_EVALS.inc
    while len(selected) < k and len(chosen) < len(pool):
        best_gain = -1.0
        best_node: Optional[Node] = None
        for node in pool:
            if node in chosen:
                continue
            upper_bound = influence(node)
            if best_node is not None and best_gain >= upper_bound:
                # Candidates are influence-sorted, so no later node can beat
                # the current best — the paper's `if gain > σu: break`.
                count_cutoff()
                break
            count_eval()
            gain = oracle_gain(covered, node)
            if gain > best_gain:
                best_gain = gain
                best_node = node
        if best_node is None:
            break
        selected.append(best_node)
        chosen.add(best_node)
        oracle.accumulate(covered, best_node)
        _SEEDS_SELECTED.inc()
    return selected


def celf_top_k(
    oracle: InfluenceOracle,
    k: int,
    candidates: Optional[Iterable[Node]] = None,
) -> List[Node]:
    """CELF lazy-greedy seed selection.

    Exploits submodularity: a node's marginal gain can only shrink as the
    seed set grows, so stale cached gains are valid upper bounds.  The node
    at the top of the heap is re-evaluated against the current covered set;
    if it stays on top it is selected without touching the other candidates.
    """
    _validate(oracle, k)
    pool = _candidate_list(oracle, candidates)
    selected: List[Node] = []
    covered = oracle.new_accumulator()
    # Heap of (-gain, insertion_index, node, round_evaluated).
    heap: List[tuple] = []
    for order, node in enumerate(pool):
        heapq.heappush(heap, (-oracle.influence(node), order, node, -1))
    current_round = 0
    while len(selected) < k and heap:
        neg_gain, order, node, evaluated = heapq.heappop(heap)
        if evaluated == current_round:
            if _OBS.enabled:
                _LAZY_HITS.inc()
                _SEEDS_SELECTED.inc()
            selected.append(node)
            oracle.accumulate(covered, node)
            current_round += 1
            continue
        _GAIN_EVALS.inc()
        fresh_gain = oracle.gain(covered, node)
        heapq.heappush(heap, (-fresh_gain, order, node, current_round))
    return selected


def top_k_by_influence(
    oracle: InfluenceOracle,
    k: int,
    candidates: Optional[Iterable[Node]] = None,
) -> List[Node]:
    """The ``k`` nodes with largest individual influence (overlap-blind)."""
    _validate(oracle, k)
    pool = _candidate_list(oracle, candidates)
    return pool[:k]


def spread_trajectory(oracle: InfluenceOracle, seeds: Sequence[Node]) -> List[float]:
    """Cumulative oracle spread after each prefix of ``seeds``.

    ``result[i] = Inf(seeds[: i + 1])`` — the curve plotted on the y-axis of
    the paper's Figure 5 (there measured by TCIC simulation instead of the
    oracle; :func:`repro.simulation.spread.estimate_spread` provides that).
    """
    require_type(oracle, "oracle", InfluenceOracle)
    covered = oracle.new_accumulator()
    trajectory: List[float] = []
    for seed in seeds:
        oracle.accumulate(covered, seed)
        trajectory.append(oracle.value(covered))
    return trajectory
