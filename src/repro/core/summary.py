"""Exact IRS summaries (paper Definition 4 and Lemma 2).

For a node ``u``, the summary ``ϕω(u)`` maps every node ``v`` reachable from
``u`` through an information channel of duration ≤ ω to
``λ(u, v)`` — the minimal *end time* over all such channels.  Keeping the
minimum end time is what makes the one-pass reverse scan work: when a new,
strictly earlier interaction ``(w, u, t)`` arrives, a channel of ``u``
ending at ``λ`` extends to a channel of ``w`` iff ``λ − t + 1 ≤ ω``, and
among all channels to the same node the one with minimal end time is always
the most extendable (it dominates the others — Lemma 2's ``↓`` operator).
"""

from __future__ import annotations

from typing import Dict, Hashable, ItemsView, Iterator, KeysView, Optional

import repro.obs as obs
from repro.lint.alloctrace import hotpath
from repro.lint.contracts import invariant, post_summary_add, post_summary_merge
from repro.obs import OBS_STATE as _OBS
from repro.utils.validation import require_int, require_non_negative, require_type

__all__ = ["IRSSummary"]

Node = Hashable

_ADD_OPS = obs.counter("summary.add_ops", "IRSSummary.add calls (Algorithm 2 Add).")
_MERGE_OPS = obs.counter(
    "summary.merge_ops", "IRSSummary.merge_within calls (Algorithm 2 Merge)."
)
_MERGE_ADDED = obs.counter(
    "summary.merge_added", "Entries newly added to summaries by merge_within."
)


class IRSSummary:
    """Mutable exact summary ``ϕω(u)``: ``{reached node → λ}``.

    The class is agnostic of which node it summarises and of ω; the
    windowing logic lives in :meth:`merge_within`'s arguments, mirroring the
    paper's ``Merge(ϕ(u), ϕ(v), t, ω)`` signature.

    Example
    -------
    >>> phi = IRSSummary()
    >>> phi.add("c", 8)
    >>> phi.add("c", 7)     # an earlier channel end dominates
    >>> phi.earliest_end("c")
    7
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Dict[Node, int]] = None) -> None:
        self._entries: Dict[Node, int] = dict(entries) if entries else {}

    # ------------------------------------------------------------------
    # Updates (paper Algorithm 2's Add / Merge)
    # ------------------------------------------------------------------
    @invariant(post_summary_add)
    @hotpath
    def add(self, node: Node, end_time: int) -> None:
        """Record a channel to ``node`` ending at ``end_time``; keep the min.

        This is the paper's ``Add(ϕ(u), (v, t))``.
        """
        require_int(end_time, "end_time")
        if _OBS.enabled:
            _ADD_OPS.inc()
        current = self._entries.get(node)
        if current is None or end_time < current:
            self._entries[node] = end_time

    @invariant(post_summary_merge)
    @hotpath
    def merge_within(
        self,
        other: "IRSSummary",
        start_time: int,
        window: int,
        skip: Optional[Node] = None,
    ) -> None:
        """Fold ``other`` into ``self`` under the duration budget.

        This is the paper's ``Merge(ϕ(u), ϕ(v), t, ω)``: every entry
        ``(x, t_x)`` of ``other`` with ``t_x − start_time < window`` (i.e.
        the prepended channel's duration ``t_x − start_time + 1 ≤ ω``) is
        added.  ``skip`` suppresses channels looping back to the summarised
        node itself, which carry no influence.
        """
        require_int(start_time, "start_time")
        require_int(window, "window")
        require_non_negative(window, "window")
        deadline = start_time + window  # keep t_x < deadline
        entries = self._entries
        recording = _OBS.enabled
        before = len(entries) if recording else 0
        for node, end_time in other._entries.items():
            if end_time >= deadline or node is skip or node == skip:
                continue
            current = entries.get(node)
            if current is None or end_time < current:
                entries[node] = end_time
        if recording:
            _MERGE_OPS.inc()
            _MERGE_ADDED.inc(len(entries) - before)

    def evict_ends_after(self, threshold: int) -> list[Node]:
        """Drop every entry with ``λ > threshold``; return the dropped nodes.

        This is the decay sweep of the live dual index
        (:mod:`repro.ingest.live`): dual end times are negated channel
        *start* times, so entries whose λ exceeds the negated horizon
        certify only channels that began before it and can never come
        back — channel starts are fixed once recorded.
        """
        require_int(threshold, "threshold")
        entries = self._entries
        stale = [node for node, end_time in entries.items() if end_time > threshold]
        for node in stale:
            del entries[node]
        return stale

    def evict_ends_after_into(self, threshold: int, counts: Dict[Node, int]) -> int:
        """Like :meth:`evict_ends_after`, folding drops into ``counts``.

        Allocation-free for the caller: the per-summary sweep loop in
        :meth:`repro.core.exact.ExactIRS.evict_ends_after` accumulates all
        decrements into one shared dict instead of collecting a fresh
        list per summary.  Returns how many entries were dropped here.
        """
        require_int(threshold, "threshold")
        entries = self._entries
        stale = [node for node, end_time in entries.items() if end_time > threshold]
        for node in stale:
            del entries[node]
            counts[node] = counts.get(node, 0) + 1
        return len(stale)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def earliest_end(self, node: Node) -> Optional[int]:
        """``λ(u, node)``, or ``None`` when ``node`` is not reachable."""
        return self._entries.get(node)

    def nodes(self) -> KeysView[Node]:
        """The influence reachability set ``σω(u)`` as a view."""
        return self._entries.keys()

    def items(self) -> ItemsView[Node, int]:
        """``(node, λ)`` pairs."""
        return self._entries.items()

    def to_dict(self) -> Dict[Node, int]:
        """A copy of the underlying mapping."""
        return dict(self._entries)

    def __contains__(self, node: object) -> bool:
        return node in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IRSSummary):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = dict(sorted(self._entries.items(), key=repr)[:4])
        suffix = ", …" if len(self._entries) > 4 else ""
        return f"IRSSummary({preview}{suffix} | {len(self._entries)} nodes)"

    def copy(self) -> "IRSSummary":
        """An independent copy."""
        clone = IRSSummary()
        clone._entries = dict(self._entries)
        return clone

    @classmethod
    @hotpath
    def union(cls, *summaries: "IRSSummary") -> "IRSSummary":
        """Pointwise-minimum union of several summaries."""
        result = cls()
        add = result.add
        for summary in summaries:  # repro-lint: budget=O(Σ|ϕ|)
            require_type(summary, "summary", IRSSummary)
            for node, end_time in summary._entries.items():
                add(node, end_time)
        return result
