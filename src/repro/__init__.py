"""repro — a full reproduction of *Information Propagation in Interaction
Networks* (Rohit Kumar & Toon Calders, EDBT 2017).

The library studies potential information flow in **interaction networks**
(timestamped directed edges) through **information channels** — time-
respecting paths of bounded duration ω.  It provides:

* :mod:`repro.core` — the exact and sketch-based one-pass algorithms that
  compute every node's influence reachability set, the influence oracle,
  and greedy/CELF influence maximization;
* :mod:`repro.sketch` — HyperLogLog and the paper's versioned HyperLogLog;
* :mod:`repro.simulation` — the Time-Constrained Information Cascade model
  used to evaluate seed sets;
* :mod:`repro.baselines` — SKIM, ConTinEst, PageRank and degree heuristics;
* :mod:`repro.datasets` — synthetic analogues of the paper's six datasets;
* :mod:`repro.analysis` — the experiment harness behind every table and
  figure of the paper (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import InteractionLog, ExactIRS, greedy_top_k
    from repro.core.oracle import ExactInfluenceOracle

    log = InteractionLog([("a", "b", 1), ("b", "c", 2), ("a", "c", 5)])
    index = ExactIRS.from_log(log, window=3)
    print(index.reachability_set("a"))            # {'b', 'c'}
    oracle = ExactInfluenceOracle.from_index(index)
    print(greedy_top_k(oracle, k=1))              # ['a']
"""

from repro.core import (
    ApproxInfluenceOracle,
    ApproxIRS,
    ExactInfluenceOracle,
    ExactIRS,
    Interaction,
    InteractionLog,
    celf_top_k,
    greedy_top_k,
    top_k_by_influence,
)
from repro.simulation import estimate_spread, run_tcic

__version__ = "1.0.0"

__all__ = [
    "Interaction",
    "InteractionLog",
    "ExactIRS",
    "ApproxIRS",
    "ExactInfluenceOracle",
    "ApproxInfluenceOracle",
    "greedy_top_k",
    "celf_top_k",
    "top_k_by_influence",
    "run_tcic",
    "estimate_spread",
    "__version__",
]
