"""Observability: metrics, spans, and exporters for the IRS pipeline.

Instrumentation is compiled in everywhere but *recorded* only when
enabled — via the ``REPRO_OBS=1`` environment variable (checked once at
import, mirroring :mod:`repro.lint.contracts`) or programmatically:

    import repro.obs as obs

    obs.enable()
    index = ExactIRS.from_log(log, window=3600.0)
    print(obs.render_report(obs.snapshot()))

The disabled path of every metric update is a single attribute check on
a shared state object, so leaving the instrumentation in the hot loops
costs almost nothing (see ``tests/obs/test_overhead.py``).

Module-level convenience handles::

    _EVENTS = obs.counter("streaming.events", "Events ingested")
    _EVENTS.inc()            # records only while enabled

Snapshots are lists of plain dicts; see :mod:`repro.obs.export` for the
JSON-lines / Prometheus / table renderings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

# The lock sanitizer must patch the threading factories before anything
# here creates a lock: REPRO_DEBUG_LOCKS=1 then traces the registry's
# per-family locks and the span recorder along with the serve layer.
# With the flag unset this is a single env read and patches nothing.
from repro.lint import locktrace as _locktrace

_locktrace.install_from_env()

# Same early-install contract for the allocation sanitizer: with
# REPRO_DEBUG_ALLOC=1 tracemalloc must be tracing before the hot sketch/
# core modules run; unset, this is one env read.
from repro.lint import alloctrace as _alloctrace

_alloctrace.install_from_env()

from repro.obs.export import from_jsonl, render_report, to_jsonl, to_prometheus  # noqa: E402
from repro.obs.registry import (  # noqa: E402
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    OBS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    ObsState,
    exponential_buckets,
)
from repro.obs.spans import NOOP_SPAN, SpanHandle, SpanListener, SpanRecorder  # noqa: E402

__all__ = [
    "OBS_ENV",
    "REGISTRY",
    "OBS_STATE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ObsState",
    "SpanRecorder",
    "SpanListener",
    "NOOP_SPAN",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "exponential_buckets",
    "enable",
    "disable",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "span_records",
    "current_span_path",
    "request_context",
    "current_context",
    "snapshot",
    "write_snapshot",
    "reset",
    "to_jsonl",
    "from_jsonl",
    "to_prometheus",
    "render_report",
    "profile",
    "memprof",
    "trend",
    "slo",
]

#: The process-wide registry every instrumented module records into.
REGISTRY = MetricRegistry()

#: The shared enabled flag; hot loops pre-guard with ``OBS_STATE.enabled``.
OBS_STATE = REGISTRY.state

_SPANS = SpanRecorder(REGISTRY)


def enable() -> None:
    """Start recording metrics and spans process-wide."""
    REGISTRY.enable()


def disable() -> None:
    """Stop recording; registered handles keep their accumulated values."""
    REGISTRY.disable()


def enabled() -> bool:
    """True while the instrumentation layer is recording."""
    return REGISTRY.enabled


def counter(name: str, description: str = "") -> Counter:
    """Get or create the process-wide counter family ``name``."""
    return REGISTRY.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    """Get or create the process-wide gauge family ``name``."""
    return REGISTRY.gauge(name, description)


def histogram(name: str, description: str = "", buckets=DEFAULT_TIME_BUCKETS) -> Histogram:
    """Get or create the process-wide histogram family ``name``."""
    return REGISTRY.histogram(name, description, buckets=buckets)


def span(name: str, **labels: object) -> SpanHandle:
    """A context-manager tracing span (no-op singleton while disabled)."""
    return _SPANS.span(name, **labels)


def span_records() -> List[dict]:
    """Finished span records, oldest first."""
    return _SPANS.records()


def current_span_path() -> Tuple[str, ...]:
    """Names of this thread's active spans, outermost first."""
    return _SPANS.current_path()


def request_context(value: str):
    """Attribute this thread's spans/profiles to ``value`` (see
    :meth:`SpanRecorder.context`); a context manager, safe while disabled."""
    return _SPANS.context(value)


def current_context() -> Tuple[str, ...]:
    """This thread's active trace-context values, outermost first."""
    return _SPANS.current_context()


def snapshot(include_spans: bool = True) -> List[dict]:
    """Every metric sample (plus span records) as plain dicts."""
    samples = REGISTRY.samples()
    if include_spans:
        samples.extend(_SPANS.records())
    return samples


def reset() -> None:
    """Zero every metric and drop span records; handles stay valid."""
    REGISTRY.reset()
    _SPANS.reset()


def write_snapshot(path: str, format: Optional[str] = None) -> None:
    """Write the current snapshot to ``path``.

    ``format`` may be ``"jsonl"``, ``"prometheus"`` or ``"table"``; when
    omitted it is inferred from the suffix (``.prom`` → prometheus,
    ``.txt`` → table, anything else → jsonl).
    """
    if format is None:
        if path.endswith(".prom"):
            format = "prometheus"
        elif path.endswith(".txt"):
            format = "table"
        else:
            format = "jsonl"
    samples = snapshot()
    if format == "prometheus":
        text = to_prometheus(samples)
    elif format == "table":
        text = render_report(samples)
    elif format == "jsonl":
        text = to_jsonl(samples)
    else:
        raise ValueError(f"unknown snapshot format: {format!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


# The profiling layers live in submodules (obs.profile / obs.memprof /
# obs.trend); bind them to this registry's span recorder so profiler
# attributions group under the live span tree, and so enabling either
# profiler also turns the span/metric layer on.
from repro.obs import memprof, profile, slo, trend  # noqa: E402  (needs _SPANS)

profile._bind(_SPANS.current_path, REGISTRY.enable)
memprof._bind(_SPANS, REGISTRY.enable)

# Environment opt-in, mirroring repro.lint.contracts: REPRO_OBS=1 in the
# environment turns recording on for the whole process at import time;
# REPRO_OBS_PROFILE=1 / REPRO_OBS_MEMPROF=1 additionally install the
# wall-time / memory profilers (each implies REPRO_OBS).
REGISTRY.enable_from_env()
profile.enable_from_env()
memprof.enable_from_env()
