"""The metric registry: counters, gauges, histograms and the on/off state.

Design constraints (mirrors :mod:`repro.lint.contracts`):

* **Near-zero cost when off.**  Every metric handle shares one
  :class:`ObsState` object with its registry; the disabled fast path of
  every update method is a single attribute check (``self._state.enabled``)
  followed by ``return``.  Hot loops that cannot even afford the method
  call pre-guard with ``if _OBS.enabled:`` on the module-level state
  singleton.
* **Handles are module-level singletons.**  Instrumented modules acquire
  their handles at import time (``_EVENTS = obs.counter(...)``); enabling
  or disabling observability later flips the shared state without
  re-binding anything.
* **Standard library only.**  The algorithm modules import this package,
  so importing anything from ``repro.core`` / ``repro.sketch`` here would
  create a cycle.

Metrics support Prometheus-style labels: ``metric.labels(window="900")``
returns a child handle of the same kind that shares the parent's state,
buckets and description and exports as a separate sample.  Values are
guarded by one lock per metric family so concurrent writers (the
streaming indexes live in whatever threads the caller runs) never lose
updates.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union, cast

__all__ = [
    "OBS_ENV",
    "ObsState",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramTimer",
    "MetricRegistry",
    "exponential_buckets",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

OBS_ENV = "REPRO_OBS"

#: Upper bounds (seconds) for latency histograms: 1 µs … 10 s.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.000001,
    0.00001,
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
)

#: Upper bounds for small-integer histograms (list lengths, seed counts).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    1024,
    4096,
    16384,
)


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric bucket bounds: ``start, start·factor, …``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1; got ({start}, {factor}, {count})"
        )
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


class ObsState:
    """The shared on/off flag; checking it is the whole disabled path."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


LabelKey = Tuple[Tuple[str, str], ...]


class Metric:
    """Base class: name, description, label-children bookkeeping."""

    kind = "metric"

    __slots__ = ("name", "description", "_state", "_lock", "_label_values", "_children")

    def __init__(
        self,
        name: str,
        description: str,
        state: ObsState,
        lock: Optional[threading.Lock] = None,
        label_values: LabelKey = (),
    ) -> None:
        self.name = name
        self.description = description
        self._state = state
        # One lock per metric *family*: children share the parent's lock so
        # a snapshot sees a consistent family.
        self._lock = lock if lock is not None else threading.Lock()
        self._label_values = label_values  # immutable after construction
        self._children: Dict[LabelKey, "Metric"] = {}  # repro-lint: guarded-by=_lock

    # -- labels ---------------------------------------------------------
    def labels(self, **labels: object) -> "Metric":
        """The child handle for this label combination (created on demand).

        Children are real metric objects of the same kind; label values
        are stringified.  Calling ``labels()`` with no arguments returns
        ``self``.
        """
        if not labels:
            return self
        key: LabelKey = tuple(sorted((k, str(v)) for k, v in labels.items()))
        # Deliberate double-checked fast path: a bare read of the dict is
        # safe under the GIL (children are only ever added, never
        # replaced), and a miss re-checks under the lock below.
        child = self._children.get(key)  # repro-lint: disable=R201
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def _make_child(self, key: LabelKey) -> "Metric":
        raise NotImplementedError

    @property
    def label_values(self) -> Dict[str, str]:
        """This handle's labels as a plain dict (empty for the parent)."""
        return dict(self._label_values)

    # -- export ---------------------------------------------------------
    def _iter_family(self) -> Iterator["Metric"]:
        """Self plus every labelled child, parent first.

        The child list is snapshotted under the family lock before
        anything is yielded, so consumers never observe a half-added
        child and never run their bodies inside the lock.
        """
        with self._lock:
            children = [self._children[key] for key in sorted(self._children)]
        yield self
        yield from children

    def samples(self) -> List[dict]:
        """One export dict per family member that has recorded anything."""
        return [
            member._sample()
            for member in self._iter_family()
            if member._has_data()
        ]

    def _sample(self) -> dict:
        raise NotImplementedError

    def _has_data(self) -> bool:
        raise NotImplementedError

    def _reset(self) -> None:
        raise NotImplementedError

    def _base_sample(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "labels": dict(self._label_values),
            "description": self.description,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suffix = f" {dict(self._label_values)}" if self._label_values else ""
        return f"{type(self).__name__}({self.name!r}{suffix})"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._value = 0.0  # repro-lint: guarded-by=_lock

    def _make_child(self, key: LabelKey) -> "Counter":
        return Counter(self.name, self.description, self._state, self._lock, key)

    def labels(self, **labels: object) -> "Counter":
        return cast("Counter", super().labels(**labels))

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (no-op while observability is disabled)."""
        if not self._state.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The accumulated count."""
        with self._lock:
            return self._value

    def _has_data(self) -> bool:
        with self._lock:
            return self._value != 0.0 or not self._children

    def _sample(self) -> dict:
        sample = self._base_sample()
        with self._lock:
            sample["value"] = self._value
        return sample

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    __slots__ = ("_value", "_touched")

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._value = 0.0  # repro-lint: guarded-by=_lock
        self._touched = False  # repro-lint: guarded-by=_lock

    def _make_child(self, key: LabelKey) -> "Gauge":
        return Gauge(self.name, self.description, self._state, self._lock, key)

    def labels(self, **labels: object) -> "Gauge":
        return cast("Gauge", super().labels(**labels))

    def set(self, value: float) -> None:
        """Overwrite the gauge (no-op while observability is disabled)."""
        if not self._state.enabled:
            return
        with self._lock:
            self._value = float(value)
            self._touched = True

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        if not self._state.enabled:
            return
        with self._lock:
            self._value += amount
            self._touched = True

    def dec(self, amount: float = 1.0) -> None:
        """Shift the gauge down by ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current gauge value."""
        with self._lock:
            return self._value

    def _has_data(self) -> bool:
        with self._lock:
            return self._touched or not self._children

    def _sample(self) -> dict:
        sample = self._base_sample()
        with self._lock:
            sample["value"] = self._value
        return sample

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._touched = False


class HistogramTimer:
    """Context manager that observes its elapsed seconds on exit."""

    __slots__ = ("_histogram", "_start_ns", "elapsed_ns")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "HistogramTimer":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self._start_ns
        self._histogram.observe(self.elapsed_ns / 1e9)


class _NoopTimer:
    """Reusable do-nothing stand-in for :class:`HistogramTimer`."""

    __slots__ = ()

    elapsed_ns = 0

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NOOP_TIMER = _NoopTimer()


class Histogram(Metric):
    """Bucketed distribution with count / sum / min / max.

    Buckets are fixed upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  The exported ``buckets`` list is cumulative
    (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    __slots__ = ("_buckets", "_bucket_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        description: str,
        state: ObsState,
        lock: Optional[threading.Lock] = None,
        label_values: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, description, state, lock, label_values)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self._buckets = bounds  # immutable after construction
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf tail; repro-lint: guarded-by=_lock
        self._count = 0  # repro-lint: guarded-by=_lock
        self._sum = 0.0  # repro-lint: guarded-by=_lock
        self._min = float("inf")  # repro-lint: guarded-by=_lock
        self._max = float("-inf")  # repro-lint: guarded-by=_lock

    def _make_child(self, key: LabelKey) -> "Histogram":
        return Histogram(
            self.name, self.description, self._state, self._lock, key, self._buckets
        )

    def labels(self, **labels: object) -> "Histogram":
        return cast("Histogram", super().labels(**labels))

    def observe(self, value: float) -> None:
        """Record one observation (no-op while observability is disabled)."""
        if not self._state.enabled:
            return
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        # Buckets are few (≤ ~16); a linear scan beats bisect's call cost.
        for index, bound in enumerate(self._buckets):
            if value <= bound:
                return index
        return len(self._buckets)

    def time(self) -> Union["HistogramTimer", "_NoopTimer"]:
        """A context manager timing its body into this histogram.

        Returns the shared no-op singleton while disabled, so hot call
        sites pay one method call and one attribute check.
        """
        if not self._state.enabled:
            return NOOP_TIMER
        return HistogramTimer(self)

    # -- stats ----------------------------------------------------------
    # The family lock is a plain (non-reentrant) Lock, so everything
    # below reads the raw fields under the lock instead of chaining
    # through the locking properties.
    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def _has_data(self) -> bool:
        with self._lock:
            return self._count > 0 or not self._children

    def _sample(self) -> dict:
        sample = self._base_sample()
        with self._lock:
            cumulative = []
            running = 0
            for bound, bucket_count in zip(self._buckets, self._bucket_counts):
                running += bucket_count
                cumulative.append([bound, running])
            count = self._count
            total = self._sum
            minimum = self._min if count else 0.0
            maximum = self._max if count else 0.0
        sample.update(
            {
                "count": count,
                "sum": total,
                "min": minimum,
                "max": maximum,
                "mean": total / count if count else 0.0,
                "buckets": cumulative,
            }
        )
        return sample

    def _reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self._buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricRegistry:
    """Named metric families plus the shared enabled flag.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing handle (so every module sees
    the same family), asking with a conflicting kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}  # repro-lint: guarded-by=_lock
        self.state = ObsState()

    # -- switching ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True while metric updates are being recorded."""
        return self.state.enabled

    def enable(self) -> None:
        """Start recording metric updates."""
        self.state.enabled = True

    def disable(self) -> None:
        """Stop recording; handles stay registered and keep their values."""
        self.state.enabled = False

    def enable_from_env(self, environ: Optional[Dict[str, str]] = None) -> bool:
        """Enable when ``REPRO_OBS`` is set to a non-empty value ≠ ``0``."""
        env = os.environ if environ is None else environ
        if env.get(OBS_ENV, "") not in ("", "0"):
            self.enable()
            return True
        return False

    # -- registration ---------------------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = Histogram(name, description, self.state, buckets=buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls: type, name: str, description: str) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, description, self.state)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Optional[Metric]:
        """The registered family called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Zero every value (handles stay registered and keep working)."""
        with self._lock:
            for metric in self._metrics.values():
                for member in metric._iter_family():
                    member._reset()

    # -- export ---------------------------------------------------------
    def samples(self) -> List[dict]:
        """Export dicts for every family member, sorted by (name, labels)."""
        collected: List[dict] = []
        for metric in self.metrics():
            collected.extend(metric.samples())
        collected.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return collected
