"""Exporters for metric snapshots.

All three formats operate on the plain sample dicts produced by
:meth:`repro.obs.registry.MetricRegistry.samples` (and the span records
from :class:`repro.obs.spans.SpanRecorder`), so a snapshot written to
disk as JSON lines can be re-rendered later as a table or
Prometheus-style text without the live registry.

Formats:

* **JSON lines** — one sample per line; the archival format and the CI
  artifact.
* **Prometheus text** — the ``# HELP`` / ``# TYPE`` exposition format;
  metric names have dots mapped to underscores, histograms expand into
  cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
* **Report table** — a human-readable summary for ``repro obs report``
  and the benchmark terminal summary.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["to_jsonl", "from_jsonl", "to_prometheus", "render_report"]


def to_jsonl(samples: Iterable[dict]) -> str:
    """Serialize samples as JSON lines (trailing newline included)."""
    lines = [json.dumps(sample, sort_keys=True) for sample in samples]
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[dict]:
    """Parse a JSON-lines snapshot back into sample dicts."""
    samples = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from exc
        if not isinstance(sample, dict) or "name" not in sample or "type" not in sample:
            raise ValueError(f"line {lineno}: not a metrics sample: {line[:80]}")
        samples.append(sample)
    return samples


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(samples: Iterable[dict]) -> str:
    """Render samples in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers = set()
    for sample in samples:
        kind = sample.get("type", "")
        if kind == "span":
            continue  # spans export through their {name}_seconds histogram
        name = _prom_name(sample["name"])
        labels = sample.get("labels", {})
        if name not in seen_headers:
            description = sample.get("description", "")
            if description:
                lines.append(f"# HELP {name} {_escape(description)}")
            lines.append(f"# TYPE {name} {kind}")
            seen_headers.add(name)
        if kind == "histogram":
            cumulative = 0
            for bound, running in sample.get("buckets", []):
                cumulative = running
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': _format_value(bound)})}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {sample['count']}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {sample['sum']!r}")
            lines.append(f"{name}_count{_prom_labels(labels)} {sample['count']}")
        else:
            lines.append(
                f"{name}{_prom_labels(labels)} {_format_value(sample['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


def _sig(value: float) -> str:
    if value == 0:
        return "0"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def render_report(samples: Iterable[dict]) -> str:
    """A human-readable table for each metric kind present."""
    counters, gauges, histograms, spans = [], [], [], []
    for sample in samples:
        kind = sample.get("type")
        if kind == "counter":
            counters.append(sample)
        elif kind == "gauge":
            gauges.append(sample)
        elif kind == "histogram":
            histograms.append(sample)
        elif kind == "span":
            spans.append(sample)

    sections: List[str] = []
    if counters:
        rows = [
            [s["name"], _label_text(s["labels"]), _sig(s["value"])] for s in counters
        ]
        sections.append("counters")
        sections.extend(_render_table(("name", "labels", "value"), rows))
        sections.append("")
    if gauges:
        rows = [
            [s["name"], _label_text(s["labels"]), _sig(s["value"])] for s in gauges
        ]
        sections.append("gauges")
        sections.extend(_render_table(("name", "labels", "value"), rows))
        sections.append("")
    if histograms:
        rows = [
            [
                s["name"],
                _label_text(s["labels"]),
                str(s["count"]),
                _sig(s["mean"]),
                _sig(s["min"]),
                _sig(s["max"]),
            ]
            for s in histograms
        ]
        sections.append("histograms")
        sections.extend(
            _render_table(("name", "labels", "count", "mean", "min", "max"), rows)
        )
        sections.append("")
    if spans:
        rows = [
            [
                s["name"],
                _label_text(s.get("labels", {})),
                _sig(s.get("duration_ns", 0) / 1e9),
                str(s.get("parent") or "-"),
            ]
            for s in spans
        ]
        sections.append("spans")
        sections.extend(_render_table(("name", "labels", "seconds", "parent"), rows))
        sections.append("")
    if not sections:
        return "(no metrics recorded)\n"
    return "\n".join(sections)
