"""Performance-trend snapshots (``BENCH_<n>.json``) and regression gates.

The paper's headline claims are performance claims (Fig. 3 build
runtime, Fig. 4 query time, Table 4 memory); the benchmark suite
measures them, but a measurement nobody compares is not a gate.  This
module turns each benchmark session into a schema-versioned snapshot and
gives CI a noise-tolerant comparator:

* :func:`bench_snapshot` / :func:`write_bench_snapshot` — collect
  per-benchmark ``median`` / ``IQR`` timings (from the pytest-benchmark
  session, see ``benchmarks/conftest.py``), key obs counters, and a
  machine fingerprint into one JSON document;
* :func:`load_bench_snapshot` — read + validate a snapshot, with clean
  one-line errors for missing files, truncated JSON and schema
  mismatches;
* :func:`diff_snapshots` / :func:`render_diff` — compare two snapshots
  under a relative-threshold **and** IQR-overlap rule, render the result
  as a table, JSON or markdown, and report whether any regression
  survived both rules (the CI exit code).

Noise rule
----------
A benchmark regresses only when *both* hold:

1. ``new.median > old.median * (1 + threshold)`` (default +10 %), and
2. the interquartile ranges ``[q1, q3]`` of old and new do **not**
   overlap.

Rule 2 is what makes the gate honest on shared CI runners: a noisy
benchmark has wide, overlapping IQRs, and a genuine slowdown separates
them.  Improvements are reported symmetrically but never gate.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

# The single definition of run provenance lives in utils.provenance (the
# experiment-matrix store reuses it verbatim); re-exported here because
# every snapshot producer historically imported it from this module.
from repro.utils.provenance import machine_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_PREFIX",
    "SERVE_SCHEMA",
    "DEFAULT_THRESHOLD",
    "machine_fingerprint",
    "quartiles",
    "bench_snapshot",
    "serve_bench_snapshot",
    "write_bench_snapshot",
    "load_bench_snapshot",
    "validate_snapshot",
    "diff_snapshots",
    "render_diff",
    "has_regressions",
]

#: Version marker of the snapshot document.  Bump the suffix on breaking
#: field changes; the comparator refuses to diff mismatched versions.
BENCH_SCHEMA = "repro-bench/1"
BENCH_SCHEMA_PREFIX = "repro-bench/"

#: Serving-tier latency/throughput snapshots written by ``bench_serve``
#: (aggregated loadgen rounds).  Same entry shape as :data:`BENCH_SCHEMA`
#: plus an optional per-entry ``direction``; the comparator refuses to
#: diff a serve snapshot against a build/query one.
SERVE_SCHEMA = "repro-servebench/1"
SERVE_SCHEMA_PREFIX = "repro-servebench/"

#: Every schema this build can read, mapped to its version marker.
_SUPPORTED_SCHEMAS = {
    BENCH_SCHEMA_PREFIX: BENCH_SCHEMA,
    SERVE_SCHEMA_PREFIX: SERVE_SCHEMA,
}

#: Default relative slowdown (on the median) that rule 1 tolerates.
DEFAULT_THRESHOLD = 0.10

#: Numeric timing fields every benchmark entry must carry (seconds for
#: ``repro-bench``; milliseconds or requests/s for ``repro-servebench``).
TIMING_FIELDS = ("median", "q1", "q3", "iqr")

#: Per-entry comparison direction: latencies regress when they grow,
#: throughput regresses when it shrinks.
DIRECTION_LOWER = "lower_is_better"
DIRECTION_HIGHER = "higher_is_better"
_DIRECTIONS = (DIRECTION_LOWER, DIRECTION_HIGHER)


def bench_snapshot(
    benchmarks: Iterable[Mapping[str, object]],
    counters: Optional[Mapping[str, float]] = None,
    context: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a snapshot document.

    ``benchmarks`` yields mappings with at least ``name`` plus the
    :data:`TIMING_FIELDS` (seconds) and optionally ``rounds`` / ``mean``
    / ``stddev``.  ``counters`` carries key obs counter values (e.g.
    ``exact.interactions``); ``context`` is free-form run metadata
    (dataset names, scale, benchmark selection).
    """
    entries: List[Dict[str, object]] = []
    for bench in benchmarks:
        entry: Dict[str, object] = {"name": str(bench["name"])}
        for field in TIMING_FIELDS:
            entry[field] = float(bench[field])  # type: ignore[arg-type]
        for optional in ("rounds", "mean", "stddev", "group"):
            if optional in bench and bench[optional] is not None:
                entry[optional] = bench[optional]
        entries.append(entry)
    entries.sort(key=lambda entry: entry["name"])  # type: ignore[arg-type,return-value]
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "context": dict(context or {}),
        "benchmarks": entries,
        "counters": {str(k): float(v) for k, v in (counters or {}).items()},
    }


def quartiles(values: Sequence[float]) -> Dict[str, float]:
    """``median``/``q1``/``q3``/``iqr`` of ``values`` (linear interpolation).

    The shared summary every trend comparison is built on — serve-bench
    aggregation below and the experiment-matrix significance layer
    (:mod:`repro.xp.stats`) use this one function so their IQR-overlap
    rules are numerically identical.
    """
    if not values:
        raise ValueError("cannot take quartiles of an empty sequence")
    ordered = sorted(float(v) for v in values)

    def _at(quantile: float) -> float:
        position = quantile * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    q1, median, q3 = _at(0.25), _at(0.5), _at(0.75)
    return {"median": median, "q1": q1, "q3": q3, "iqr": q3 - q1}


#: Backwards-compatible alias (the function predates its public export).
_quartiles = quartiles


def serve_bench_snapshot(
    reports: Sequence[Mapping[str, object]],
    counters: Optional[Mapping[str, float]] = None,
    context: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Aggregate loadgen round reports into a ``repro-servebench/1`` doc.

    ``reports`` holds one ``LoadgenReport.to_dict()`` mapping per round;
    each latency percentile (and the throughput) becomes one benchmark
    entry whose ``median``/``q1``/``q3`` summarise the *across-round*
    distribution, so the IQR-overlap noise rule of :func:`diff_snapshots`
    applies to serve numbers exactly as it does to build/query timings.
    Throughput entries carry ``direction: higher_is_better``.
    """
    if not reports:
        raise ValueError("serve_bench_snapshot needs at least one loadgen report")
    percentiles = ("p50", "p95", "p99", "mean")
    entries: List[Dict[str, object]] = []
    for key in percentiles:
        samples = [float(report["latency_ms"][key]) for report in reports]  # type: ignore[index,call-overload]
        entry: Dict[str, object] = {"name": f"loadgen.{key}_ms", "rounds": len(reports)}
        entry.update(_quartiles(samples))
        entries.append(entry)
    throughput: Dict[str, object] = {
        "name": "loadgen.throughput_rps",
        "rounds": len(reports),
        "direction": DIRECTION_HIGHER,
    }
    throughput.update(_quartiles([float(r["throughput_rps"]) for r in reports]))
    entries.append(throughput)
    entries.sort(key=lambda entry: entry["name"])  # type: ignore[arg-type,return-value]
    totals = {
        "loadgen.requests": float(sum(int(r["requests"]) for r in reports)),  # type: ignore[call-overload]
        "loadgen.errors": float(sum(int(r["errors"]) for r in reports)),  # type: ignore[call-overload]
    }
    totals.update({str(k): float(v) for k, v in (counters or {}).items()})
    return {
        "schema": SERVE_SCHEMA,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "context": dict(context or {}),
        "benchmarks": entries,
        "counters": totals,
    }


def write_bench_snapshot(path: str, snapshot: Mapping[str, object]) -> None:
    """Validate and write ``snapshot`` to ``path`` as indented JSON."""
    validate_snapshot(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_snapshot(snapshot: object) -> None:
    """Raise ``ValueError`` (one line) when ``snapshot`` is malformed."""
    if not isinstance(snapshot, dict):
        raise ValueError("bench snapshot must be a JSON object")
    schema = snapshot.get("schema")
    prefix = next(
        (p for p in _SUPPORTED_SCHEMAS if isinstance(schema, str) and schema.startswith(p)),
        None,
    )
    if prefix is None:
        raise ValueError(
            f"not a bench snapshot: missing/foreign schema marker {schema!r} "
            f"(expected {BENCH_SCHEMA!r} or {SERVE_SCHEMA!r})"
        )
    if schema != _SUPPORTED_SCHEMAS[prefix]:
        raise ValueError(
            f"unsupported bench schema {schema!r}; this build reads "
            f"{_SUPPORTED_SCHEMAS[prefix]!r}"
        )
    benchmarks = snapshot.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError("bench snapshot field 'benchmarks' must be a list")
    seen = set()
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError(f"benchmarks[{index}] must be an object with a 'name'")
        name = entry["name"]
        if name in seen:
            raise ValueError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        for field in TIMING_FIELDS:
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"benchmarks[{index}] ({name!r}): field {field!r} must be a "
                    f"non-negative number, got {value!r}"
                )
        direction = entry.get("direction", DIRECTION_LOWER)
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"benchmarks[{index}] ({name!r}): field 'direction' must be one "
                f"of {_DIRECTIONS}, got {direction!r}"
            )
    counters = snapshot.get("counters", {})
    if not isinstance(counters, dict):
        raise ValueError("bench snapshot field 'counters' must be an object")


def load_bench_snapshot(path: str) -> Dict[str, object]:
    """Read and validate a snapshot file.

    Every failure mode — missing file, unreadable JSON, wrong schema —
    surfaces as a single-line ``ValueError`` naming the file, so the CLI
    can print it verbatim and exit 1.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(f"{path}: cannot read bench snapshot: {exc.strerror or exc}") from exc
    if not text.strip():
        raise ValueError(f"{path}: empty bench snapshot")
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: truncated or invalid JSON: {exc}") from exc
    try:
        validate_snapshot(snapshot)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return snapshot


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

#: Per-benchmark comparison verdicts.
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"
VERDICT_OK = "ok"
VERDICT_ADDED = "added"
VERDICT_REMOVED = "removed"


def _iqr_overlap(old: Mapping[str, object], new: Mapping[str, object]) -> bool:
    """True when the [q1, q3] ranges of ``old`` and ``new`` intersect."""
    return float(new["q1"]) <= float(old["q3"]) and float(old["q1"]) <= float(new["q3"])


def diff_snapshots(
    old: Mapping[str, object],
    new: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Compare two snapshots benchmark by benchmark.

    Returns a report dict: ``rows`` (one per benchmark, sorted by name,
    each with old/new medians, the ratio and a verdict), ``counters``
    (relative drift of shared obs counters, informational only) and
    ``threshold``.  Schema compatibility must already hold
    (:func:`load_bench_snapshot` enforces it for files; for in-memory
    documents call :func:`validate_snapshot` yourself).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_schema = old.get("schema")
    new_schema = new.get("schema")
    if old_schema != new_schema:
        raise ValueError(
            f"cannot diff snapshots of different schemas: "
            f"{old_schema!r} vs {new_schema!r}"
        )
    old_entries = {entry["name"]: entry for entry in old["benchmarks"]}  # type: ignore[index,union-attr]
    new_entries = {entry["name"]: entry for entry in new["benchmarks"]}  # type: ignore[index,union-attr]
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old_entries) | set(new_entries)):
        before = old_entries.get(name)
        after = new_entries.get(name)
        if before is None:
            rows.append(
                {
                    "name": name,
                    "verdict": VERDICT_ADDED,
                    "new_median": float(after["median"]),  # type: ignore[index]
                }
            )
            continue
        if after is None:
            rows.append(
                {
                    "name": name,
                    "verdict": VERDICT_REMOVED,
                    "old_median": float(before["median"]),
                }
            )
            continue
        old_median = float(before["median"])
        new_median = float(after["median"])
        ratio = new_median / old_median if old_median > 0 else float("inf")
        overlap = _iqr_overlap(before, after)
        direction = str(after.get("direction", before.get("direction", DIRECTION_LOWER)))
        grew = new_median > old_median * (1.0 + threshold)
        shrank = new_median < old_median * (1.0 - threshold)
        if direction == DIRECTION_HIGHER:
            grew, shrank = shrank, grew  # less throughput is the slowdown
        if grew and not overlap:
            verdict = VERDICT_REGRESSION
        elif shrank and not overlap:
            verdict = VERDICT_IMPROVEMENT
        else:
            verdict = VERDICT_OK
        rows.append(
            {
                "name": name,
                "verdict": verdict,
                "old_median": old_median,
                "new_median": new_median,
                "ratio": ratio,
                "iqr_overlap": overlap,
                "direction": direction,
            }
        )
    old_counters: Mapping[str, float] = old.get("counters", {})  # type: ignore[assignment]
    new_counters: Mapping[str, float] = new.get("counters", {})  # type: ignore[assignment]
    counter_rows = []
    for name in sorted(set(old_counters) & set(new_counters)):
        before_value = float(old_counters[name])
        after_value = float(new_counters[name])
        counter_rows.append(
            {
                "name": name,
                "old": before_value,
                "new": after_value,
                "ratio": after_value / before_value if before_value else float("inf"),
            }
        )
    return {
        "schema": old_schema,
        "threshold": threshold,
        "rows": rows,
        "counters": counter_rows,
    }


def has_regressions(diff: Mapping[str, object]) -> bool:
    """True when any row of a :func:`diff_snapshots` report regressed."""
    return any(row["verdict"] == VERDICT_REGRESSION for row in diff["rows"])  # type: ignore[index,union-attr]


def _ratio_text(row: Mapping[str, object]) -> str:
    ratio = row.get("ratio")
    if not isinstance(ratio, float) or ratio == float("inf"):
        return "-"
    return f"{(ratio - 1.0) * 100.0:+.1f}%"


def _seconds(value: object) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value:.6f}"


def render_diff(diff: Mapping[str, object], format: str = "table") -> str:
    """Render a :func:`diff_snapshots` report (``table``/``json``/``markdown``)."""
    if format == "json":
        return json.dumps(diff, indent=2, sort_keys=True) + "\n"
    rows: Sequence[Mapping[str, object]] = diff["rows"]  # type: ignore[assignment]
    threshold = diff.get("threshold", DEFAULT_THRESHOLD)
    cells = [
        [
            str(row["name"]),
            _seconds(row.get("old_median")),
            _seconds(row.get("new_median")),
            _ratio_text(row),
            str(row["verdict"]),
        ]
        for row in rows
    ]
    headers = ("benchmark", "old_median_s", "new_median_s", "delta", "verdict")
    regressions = sum(1 for row in rows if row["verdict"] == VERDICT_REGRESSION)
    summary = (
        f"{len(cells)} benchmarks compared, {regressions} regression(s) "
        f"at threshold +{float(threshold) * 100.0:g}% with disjoint IQRs"
    )
    if format == "markdown":
        lines = ["| " + " | ".join(headers) + " |"]
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        lines.extend("| " + " | ".join(row) + " |" for row in cells)
        lines.append("")
        lines.append(summary)
        return "\n".join(lines) + "\n"
    if format == "table":
        from repro.obs.export import _render_table

        if not cells:
            return "(no benchmarks to compare)\n"
        return "\n".join(_render_table(headers, cells) + ["", summary]) + "\n"
    raise ValueError(f"unknown diff format {format!r}; use table, json or markdown")
