"""Span-attributed memory profiling via :mod:`tracemalloc`.

Table 4's ``summary.bytes`` gauge reports *how much* memory a sketch
index holds; this module answers *who allocated it*.  While enabled, a
span listener reads ``tracemalloc.get_traced_memory()`` at every span
boundary and attributes the net allocation delta to the span's path, so
the same tree that structures wall time (``exact.build``,
``approx.build``, ``experiment.memory`` …) also structures bytes:

* **net bytes** — allocations minus frees across the span, children
  included (the span's retained footprint contribution);
* **self bytes** — net minus the net of its direct children (what the
  span's own code allocated).

Reading the traced counters is a few hundred nanoseconds — cheap enough
for span boundaries, which are rare by design — while full
``tracemalloc`` snapshots (per-line statistics) would cost milliseconds;
the span tree keeps attribution useful without that price.

Enablement mirrors the profiler: ``REPRO_OBS_MEMPROF=1`` at import
(via :mod:`repro.obs`), ``obs.memprof.enable()``, or the CLI
``--memprof`` flag.  Enabling starts ``tracemalloc`` when it is not
already tracing and stops it again on disable (only if we started it).
Disabled, nothing is registered and span exits pay only the listener
truthiness check they already paid.
"""

from __future__ import annotations

import os
import threading
import tracemalloc
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import Span, SpanListener, SpanRecorder

__all__ = [
    "MEMPROF_ENV",
    "SpanMemoryProfiler",
    "MemoryReport",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "collect",
    "enable_from_env",
]

MEMPROF_ENV = "REPRO_OBS_MEMPROF"

SpanPath = Tuple[str, ...]


class _PathStats:
    """Accumulated allocation statistics for one span path."""

    __slots__ = ("count", "net_bytes", "self_bytes", "peak_delta")

    def __init__(self) -> None:
        self.count = 0
        self.net_bytes = 0
        self.self_bytes = 0
        self.peak_delta = 0


class _OpenSpan:
    """Bookkeeping for one active span on one thread."""

    __slots__ = ("start_bytes", "children_net")

    def __init__(self, start_bytes: int) -> None:
        self.start_bytes = start_bytes
        self.children_net = 0


class SpanMemoryProfiler(SpanListener):
    """Span listener that folds tracemalloc deltas into a span tree."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._stats: Dict[SpanPath, _PathStats] = {}  # repro-lint: guarded-by=_lock

    # -- listener callbacks ---------------------------------------------
    def _open(self) -> List[_OpenSpan]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def span_started(self, span: Span, path: SpanPath) -> None:
        current, _peak = tracemalloc.get_traced_memory()
        self._open().append(_OpenSpan(current))

    def span_finished(self, span: Span, path: SpanPath) -> None:
        frames = self._open()
        if not frames:
            return  # span began before the profiler was enabled
        frame = frames.pop()
        current, peak = tracemalloc.get_traced_memory()
        net = current - frame.start_bytes
        if frames:
            frames[-1].children_net += net
        with self._lock:
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = _PathStats()
            stats.count += 1
            stats.net_bytes += net
            stats.self_bytes += net - frame.children_net
            stats.peak_delta = max(stats.peak_delta, peak - frame.start_bytes)

    # -- snapshots ------------------------------------------------------
    def collect(self) -> "MemoryReport":
        """An immutable snapshot of the accumulated span statistics."""
        with self._lock:
            entries = {
                path: {
                    "count": stats.count,
                    "net_bytes": stats.net_bytes,
                    "self_bytes": stats.self_bytes,
                    "peak_delta": stats.peak_delta,
                }
                for path, stats in self._stats.items()
            }
        return MemoryReport(entries)

    def reset(self) -> None:
        """Drop accumulated statistics (open spans keep their baselines)."""
        with self._lock:
            self._stats = {}


class MemoryReport:
    """Per-span-path allocation statistics, frozen at collect time."""

    def __init__(self, entries: Dict[SpanPath, Dict[str, int]]) -> None:
        self.entries = dict(entries)

    def net_by_span(self) -> Dict[str, int]:
        """Net allocated bytes per span name (nested spans included).

        Sums the *self* bytes of every path containing the name, so a
        parent credited through its children is not double-counted.
        """
        totals: Dict[str, int] = {}
        for path, stats in self.entries.items():
            for name in set(path):
                totals[name] = totals.get(name, 0) + stats["self_bytes"]
        return totals

    def total_net_bytes(self) -> int:
        """Net bytes attributed across the whole span tree."""
        return sum(stats["self_bytes"] for stats in self.entries.values())

    def table(self, limit: int = 20) -> str:
        """A human-readable per-path table, largest net first."""
        from repro.obs.export import _render_table

        ranked = sorted(
            self.entries.items(),
            key=lambda item: (-item[1]["net_bytes"], item[0]),
        )[:limit]
        rows = [
            [
                " > ".join(path) or "(root)",
                str(stats["count"]),
                _format_bytes(stats["net_bytes"]),
                _format_bytes(stats["self_bytes"]),
                _format_bytes(stats["peak_delta"]),
            ]
            for path, stats in ranked
        ]
        if not rows:
            return "(no memory attributions)\n"
        return "\n".join(
            ["span memory attribution (tracemalloc)"]
            + _render_table(("span path", "count", "net", "self", "peak_over_start"), rows)
        ) + "\n"


def _format_bytes(value: int) -> str:
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if magnitude < 1024 or unit == "GiB":
            if unit == "B":
                return f"{sign}{magnitude}B"
            return f"{sign}{magnitude:.1f}{unit}"
        magnitude /= 1024.0
    return f"{sign}{magnitude:.1f}GiB"  # pragma: no cover - unreachable


#: The process-wide span memory profiler (registered while enabled).
MEMPROFILER = SpanMemoryProfiler()

_RECORDER: Optional[SpanRecorder] = None
_ON_ENABLE = None
_ENABLED = False
_STARTED_TRACEMALLOC = False


def _bind(recorder: SpanRecorder, on_enable) -> None:
    """Internal wiring called once by :mod:`repro.obs` at import."""
    global _RECORDER, _ON_ENABLE
    _RECORDER = recorder
    _ON_ENABLE = on_enable


def enable() -> None:
    """Start span-attributed memory profiling (also enables obs)."""
    global _ENABLED, _STARTED_TRACEMALLOC
    if _ENABLED:
        return
    if _ON_ENABLE is not None:
        _ON_ENABLE()
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _STARTED_TRACEMALLOC = True
    if _RECORDER is not None:
        _RECORDER.add_listener(MEMPROFILER)
    _ENABLED = True


def disable() -> None:
    """Stop profiling; tracemalloc is stopped only if we started it."""
    global _ENABLED, _STARTED_TRACEMALLOC
    if not _ENABLED:
        return
    if _RECORDER is not None:
        _RECORDER.remove_listener(MEMPROFILER)
    if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_TRACEMALLOC = False
    _ENABLED = False


def is_enabled() -> bool:
    """True while the span memory profiler is registered."""
    return _ENABLED


def reset() -> None:
    """Drop the process-wide profiler's accumulated statistics."""
    MEMPROFILER.reset()


def collect() -> MemoryReport:
    """Snapshot the process-wide profiler's statistics."""
    return MEMPROFILER.collect()


def enable_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Enable when ``REPRO_OBS_MEMPROF`` is set non-empty and ≠ ``0``."""
    env = os.environ if environ is None else environ
    if env.get(MEMPROF_ENV, "") not in ("", "0"):
        enable()
        return True
    return False
