"""Per-route serving SLOs evaluated from the observability registry.

The paper's serving claim (Fig. 4: oracle queries answered in
microseconds to milliseconds) only stays true if someone watches it.
This module turns that claim into declarative, enforceable objectives:

* :class:`SLOSpec` — one route's objective: a p99 latency threshold
  (milliseconds) and an error-rate budget (fraction of requests allowed
  to fail with a 5xx);
* :func:`evaluate_slos` — judge a metrics snapshot (the list-of-dicts
  form produced by :func:`repro.obs.snapshot`) against a spec list,
  estimating p99 from the cumulative histogram buckets of
  ``serve.http_request_seconds{route}`` and the error rate from the
  ``serve.http_requests{route,code}`` counters;
* :class:`SLOTracker` — the live form: retains a rolling window of
  registry snapshots and evaluates each spec over the *deltas* inside
  the window, reporting a burn rate (window error rate ÷ budget, >1
  means the budget is being spent faster than allowed).  The HTTP
  server's ``/v1/healthz`` carries its output;
* :func:`load_slo_specs` / :func:`render_slo` — JSON spec files for the
  ``repro obs slo --check`` CLI gate and its table/JSON rendering.

Quantiles estimated from histogram buckets are upper-bound-biased (the
estimate interpolates within the bucket that crosses the target rank),
which is the conservative direction for a latency objective: a breach
verdict can only be pessimistic, never optimistic.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SLOS",
    "DEFAULT_WINDOW_SECONDS",
    "SLOSpec",
    "SLOStatus",
    "SLOTracker",
    "evaluate_slos",
    "histogram_quantile",
    "load_slo_specs",
    "render_slo",
]

#: Histogram family the latency objective reads (labelled by route).
LATENCY_METRIC = "serve.http_request_seconds"

#: Counter family the error budget reads (labelled by route and code).
REQUEST_COUNTER = "serve.http_requests"

#: Rolling-window length the live tracker evaluates over.
DEFAULT_WINDOW_SECONDS = 300.0


@dataclass(frozen=True)
class SLOSpec:
    """One route's objective: p99 latency bound + 5xx error budget."""

    route: str
    p99_ms: float
    error_budget: float

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError(f"p99_ms must be > 0, got {self.p99_ms}")
        if not 0.0 <= self.error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be a fraction in [0, 1], got {self.error_budget}"
            )


#: Objectives for the bundled serving routes.  Generous by design: they
#: gate CI on shared runners, and a tight bound belongs in a spec file
#: tuned on the machine that serves (see ``load_slo_specs``).
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(route="/v1/healthz", p99_ms=250.0, error_budget=0.0),
    SLOSpec(route="/v1/influence", p99_ms=250.0, error_budget=0.02),
    SLOSpec(route="/v1/spread", p99_ms=500.0, error_budget=0.02),
    SLOSpec(route="/v1/topk", p99_ms=1000.0, error_budget=0.02),
)


@dataclass(frozen=True)
class SLOStatus:
    """The verdict for one spec: observed values plus breach reasons."""

    route: str
    requests: int
    errors: int
    error_rate: float
    error_budget: float
    p99_ms: Optional[float]
    p99_target_ms: float
    burn_rate: Optional[float]
    window_seconds: Optional[float]
    ok: bool
    breaches: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (the ``/v1/healthz`` payload shape)."""
        return {
            "route": self.route,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "error_budget": self.error_budget,
            "p99_ms": self.p99_ms,
            "p99_target_ms": self.p99_target_ms,
            "burn_rate": self.burn_rate,
            "window_seconds": self.window_seconds,
            "ok": self.ok,
            "breaches": list(self.breaches),
        }


def histogram_quantile(
    buckets: Sequence[Sequence[float]],
    count: int,
    quantile: float,
    maximum: Optional[float] = None,
) -> Optional[float]:
    """Estimate a quantile from cumulative ``[bound, count]`` pairs.

    ``buckets`` is the export shape of :class:`repro.obs.Histogram`
    (cumulative counts at each upper bound); ``count`` the total number
    of observations including the implicit ``+Inf`` tail.  Interpolates
    linearly inside the bucket whose cumulative count crosses the target
    rank; observations beyond the last bound fall back to ``maximum``
    (or the last bound when no maximum is known).  Returns ``None`` for
    an empty histogram.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if count <= 0:
        return None
    rank = quantile * count
    previous_bound = 0.0
    previous_cum = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return float(bound)
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (float(bound) - previous_bound) * fraction
        previous_bound = float(bound)
        previous_cum = float(cumulative)
    # Target rank sits in the +Inf tail: the best honest answer is the
    # largest observation (or the last finite bound as a floor).
    if maximum is not None:
        return max(float(maximum), previous_bound)
    return previous_bound


# ---------------------------------------------------------------------------
# Snapshot plumbing: per-route totals out of the samples list
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RouteTotals:
    """Cumulative per-route counts extracted from one metrics snapshot."""

    requests: float
    errors: float
    buckets: Tuple[Tuple[float, float], ...]
    count: int
    maximum: float


def _route_totals(samples: Iterable[Mapping[str, object]]) -> Dict[str, _RouteTotals]:
    requests: Dict[str, float] = {}
    errors: Dict[str, float] = {}
    histograms: Dict[str, Mapping[str, object]] = {}
    for sample in samples:
        name = sample.get("name")
        labels = sample.get("labels") or {}
        route = labels.get("route") if isinstance(labels, Mapping) else None
        if not isinstance(route, str):
            continue
        if name == REQUEST_COUNTER and sample.get("type") == "counter":
            value = float(sample.get("value", 0.0))  # type: ignore[arg-type]
            requests[route] = requests.get(route, 0.0) + value
            code = str(labels.get("code", ""))
            if code.startswith("5"):
                errors[route] = errors.get(route, 0.0) + value
        elif name == LATENCY_METRIC and sample.get("type") == "histogram":
            histograms[route] = sample
    totals: Dict[str, _RouteTotals] = {}
    for route in set(requests) | set(histograms):
        histogram = histograms.get(route, {})
        buckets = tuple(
            (float(bound), float(cumulative))
            for bound, cumulative in histogram.get("buckets", ())  # type: ignore[union-attr]
        )
        totals[route] = _RouteTotals(
            requests=requests.get(route, 0.0),
            errors=errors.get(route, 0.0),
            buckets=buckets,
            count=int(histogram.get("count", 0)),  # type: ignore[arg-type]
            maximum=float(histogram.get("max", 0.0)),  # type: ignore[arg-type]
        )
    return totals


def _judge(
    spec: SLOSpec,
    requests: float,
    errors: float,
    p99_ms: Optional[float],
    window_seconds: Optional[float],
) -> SLOStatus:
    breaches: List[str] = []
    error_rate = errors / requests if requests else 0.0
    burn_rate: Optional[float] = None
    if requests:
        if spec.error_budget > 0:
            burn_rate = error_rate / spec.error_budget
        elif errors:
            burn_rate = float("inf")
        else:
            burn_rate = 0.0
    if requests and error_rate > spec.error_budget:
        breaches.append(
            f"error rate {error_rate:.4f} exceeds budget {spec.error_budget:.4f}"
        )
    if p99_ms is not None and p99_ms > spec.p99_ms:
        breaches.append(f"p99 {p99_ms:.3f}ms exceeds target {spec.p99_ms:g}ms")
    return SLOStatus(
        route=spec.route,
        requests=int(requests),
        errors=int(errors),
        error_rate=error_rate,
        error_budget=spec.error_budget,
        p99_ms=p99_ms,
        p99_target_ms=spec.p99_ms,
        burn_rate=burn_rate,
        window_seconds=window_seconds,
        ok=not breaches,
        breaches=tuple(breaches),
    )


def evaluate_slos(
    specs: Sequence[SLOSpec],
    samples: Iterable[Mapping[str, object]],
) -> List[SLOStatus]:
    """Judge ``specs`` against one metrics snapshot (lifetime totals).

    Routes with no traffic evaluate as ``ok`` with zero requests — an
    idle route has spent none of its budget.
    """
    totals = _route_totals(samples)
    statuses: List[SLOStatus] = []
    for spec in specs:
        route = totals.get(spec.route)
        if route is None:
            statuses.append(_judge(spec, 0.0, 0.0, None, None))
            continue
        p99_seconds = histogram_quantile(
            route.buckets, route.count, 0.99, maximum=route.maximum
        )
        p99_ms = p99_seconds * 1e3 if p99_seconds is not None else None
        statuses.append(_judge(spec, route.requests, route.errors, p99_ms, None))
    return statuses


# ---------------------------------------------------------------------------
# Live rolling-window tracking
# ---------------------------------------------------------------------------


class SLOTracker:
    """Evaluates SLOs over a rolling window of registry snapshots.

    Call :meth:`observe` with the current samples (typically from every
    ``/v1/healthz`` probe); the tracker keeps the snapshots that fall
    inside ``window_seconds`` and judges each spec on the *difference*
    between the newest and oldest retained snapshot, so a long-lived
    server reports the last few minutes rather than its whole lifetime.
    With fewer than two snapshots in the window it falls back to
    lifetime totals (the only honest answer on the first probe).
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec] = DEFAULT_SLOS,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_snapshots: int = 240,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if max_snapshots < 2:
            raise ValueError(f"max_snapshots must be >= 2, got {max_snapshots}")
        self.specs = tuple(specs)
        self.window_seconds = float(window_seconds)
        self._snapshots: Deque[Tuple[float, Dict[str, _RouteTotals]]] = deque(
            maxlen=max_snapshots
        )

    def observe(
        self,
        samples: Iterable[Mapping[str, object]],
        now: Optional[float] = None,
    ) -> List[SLOStatus]:
        """Fold one snapshot in and return the windowed verdicts.

        ``now`` is a monotonic timestamp override for tests; by default
        the tracker reads ``time.monotonic()`` itself.
        """
        timestamp = time.monotonic() if now is None else float(now)
        totals = _route_totals(samples)
        self._snapshots.append((timestamp, totals))
        while (
            len(self._snapshots) > 1
            and timestamp - self._snapshots[0][0] > self.window_seconds
            and timestamp - self._snapshots[1][0] >= self.window_seconds
        ):
            self._snapshots.popleft()
        oldest_ts, oldest = self._snapshots[0]
        window = timestamp - oldest_ts if len(self._snapshots) > 1 else None
        statuses: List[SLOStatus] = []
        for spec in self.specs:
            new = totals.get(spec.route)
            if new is None:
                statuses.append(_judge(spec, 0.0, 0.0, None, window))
                continue
            old = oldest.get(spec.route) if window is not None else None
            requests = new.requests - (old.requests if old else 0.0)
            errors = new.errors - (old.errors if old else 0.0)
            buckets, count = self._bucket_delta(new, old)
            p99_seconds = histogram_quantile(
                buckets, count, 0.99, maximum=new.maximum
            )
            p99_ms = p99_seconds * 1e3 if p99_seconds is not None else None
            statuses.append(_judge(spec, requests, errors, p99_ms, window))
        return statuses

    @staticmethod
    def _bucket_delta(
        new: _RouteTotals, old: Optional[_RouteTotals]
    ) -> Tuple[Tuple[Tuple[float, float], ...], int]:
        if old is None or len(old.buckets) != len(new.buckets):
            return new.buckets, new.count
        buckets = tuple(
            (bound, cumulative - old_cumulative)
            for (bound, cumulative), (_, old_cumulative) in zip(
                new.buckets, old.buckets
            )
        )
        return buckets, new.count - old.count


# ---------------------------------------------------------------------------
# Spec files and rendering (the CLI surface)
# ---------------------------------------------------------------------------


def load_slo_specs(path: str) -> List[SLOSpec]:
    """Read a JSON spec file: ``[{"route", "p99_ms", "error_budget"}, …]``.

    Every failure mode surfaces as a one-line ``ValueError`` naming the
    file, matching the trend/snapshot loader convention.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(f"{path}: cannot read SLO spec: {exc.strerror or exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: truncated or invalid JSON: {exc}") from exc
    if not isinstance(document, list) or not document:
        raise ValueError(f"{path}: SLO spec must be a non-empty JSON array")
    specs: List[SLOSpec] = []
    seen: set = set()
    for index, entry in enumerate(document):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: spec[{index}] must be an object")
        try:
            route = entry["route"]
            spec = SLOSpec(
                route=str(route),
                p99_ms=float(entry["p99_ms"]),
                error_budget=float(entry["error_budget"]),
            )
        except KeyError as exc:
            raise ValueError(
                f"{path}: spec[{index}] is missing required field {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: spec[{index}]: {exc}") from exc
        if spec.route in seen:
            raise ValueError(f"{path}: duplicate route {spec.route!r}")
        seen.add(spec.route)
        specs.append(spec)
    return specs


def render_slo(statuses: Sequence[SLOStatus], format: str = "table") -> str:
    """Render verdicts as a ``table`` or ``json`` report."""
    if format == "json":
        return (
            json.dumps([status.to_dict() for status in statuses], indent=2, sort_keys=True)
            + "\n"
        )
    if format != "table":
        raise ValueError(f"unknown SLO format {format!r}; use table or json")
    lines = [
        f"{'route':<20} {'reqs':>8} {'errors':>7} {'err_rate':>9} "
        f"{'p99_ms':>10} {'target':>8} {'burn':>6}  verdict"
    ]
    for status in statuses:
        p99 = f"{status.p99_ms:.3f}" if status.p99_ms is not None else "-"
        burn = f"{status.burn_rate:.2f}" if status.burn_rate is not None else "-"
        verdict = "ok" if status.ok else "BREACH: " + "; ".join(status.breaches)
        lines.append(
            f"{status.route:<20} {status.requests:>8} {status.errors:>7} "
            f"{status.error_rate:>9.4f} {p99:>10} {status.p99_target_ms:>8g} "
            f"{burn:>6}  {verdict}"
        )
    breached = sum(1 for status in statuses if not status.ok)
    lines.append("")
    lines.append(f"{len(statuses)} route SLO(s) evaluated, {breached} breached")
    return "\n".join(lines) + "\n"
