"""Lightweight tracing spans layered on the metric registry.

A span wraps a region of work (an index build, an experiment stage) and
records a timestamped entry — name, labels, duration, parent span,
thread — into a bounded in-memory buffer.  Span durations are also
observed into a histogram named ``{name}_seconds`` in the owning
registry, so exporters see them without special handling.

Like the metrics, the disabled path is a single attribute check:
``span(...)`` returns a shared no-op singleton while observability is
off, and the active-span stack is thread-local so concurrent pipelines
nest correctly.

Listeners (:meth:`SpanRecorder.add_listener`) observe span boundaries —
the memory profiler attributes tracemalloc deltas this way — and the
wall-time profiler reads :meth:`SpanRecorder.current_path` to group
frames under the enclosing span.  Both hooks cost one truthiness check
per real span and nothing at all while observability is off.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricRegistry

__all__ = ["Span", "SpanRecorder", "SpanListener", "NOOP_SPAN"]

#: Retain at most this many finished span records (oldest dropped first).
MAX_SPAN_RECORDS = 4096


class _NoopSpan:
    """Shared do-nothing span returned while observability is off."""

    __slots__ = ()

    name = ""
    duration_ns = 0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One active span; use as a context manager."""

    __slots__ = ("name", "labels", "_recorder", "_start_ns", "duration_ns", "_parent")

    def __init__(self, recorder: "SpanRecorder", name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._recorder = recorder
        self._start_ns = 0
        self.duration_ns = 0
        self._parent: Optional[str] = None

    def __enter__(self) -> "Span":
        stack = self._recorder._stack()
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        if self._recorder._listeners:
            self._recorder._notify_started(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_ns = time.perf_counter_ns() - self._start_ns
        if self._recorder._listeners:
            self._recorder._notify_finished(self)
        stack = self._recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder._finish(self)

    @property
    def duration_seconds(self) -> float:
        """Elapsed wall time in seconds (0.0 until the span exits)."""
        return self.duration_ns / 1e9


#: What ``span(...)`` hands back: a live span or the shared no-op.
SpanHandle = Union[Span, _NoopSpan]


class SpanListener:
    """Observer interface for span boundaries (subclass what you need).

    Both callbacks receive the span and its *path* — the names of every
    active span on the current thread, root first, including the span
    itself.  ``span_finished`` fires before the span leaves the stack.
    """

    def span_started(self, span: Span, path: Tuple[str, ...]) -> None:
        """Called immediately after ``span`` joins the active stack."""

    def span_finished(self, span: Span, path: Tuple[str, ...]) -> None:
        """Called when ``span`` exits, while it is still on the stack."""


class SpanRecorder:
    """Creates spans and retains a bounded buffer of finished records."""

    def __init__(self, registry: MetricRegistry) -> None:
        self._registry = registry
        self._records: Deque[dict] = deque(maxlen=MAX_SPAN_RECORDS)  # repro-lint: guarded-by=_lock
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Read lock-free on the span hot path; mutated copy-on-write
        #: under ``_lock`` (the reads carry per-line R201 suppressions).
        self._listeners: Tuple[SpanListener, ...] = ()  # repro-lint: guarded-by=_lock

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _context_stack(self) -> List[str]:
        stack = getattr(self._local, "context", None)
        if stack is None:
            stack = []
            self._local.context = stack
        return stack

    @contextmanager
    def context(self, value: str) -> Iterator[None]:
        """Attribute this thread's spans to ``value`` for the ``with`` body.

        A context is a synthetic path root — typically a request identity
        like ``request:a1b2c3`` pushed by the serving tier — that prefixes
        :meth:`current_path` and is stamped onto every span record
        finished underneath it.  The profiler and memory profiler group
        by path, so all work done inside the body is attributed to the
        owning context.  Contexts nest; the API works (cheaply) even
        while observability is disabled so request identity never
        depends on the recording switch.
        """
        stack = self._context_stack()
        stack.append(str(value))
        try:
            yield
        finally:
            stack.pop()

    def current_context(self) -> Tuple[str, ...]:
        """This thread's active context values, outermost first."""
        stack = getattr(self._local, "context", None)
        if not stack:
            return ()
        return tuple(stack)

    def current_path(self) -> Tuple[str, ...]:
        """Active context values plus span names, outermost first."""
        prefix = self.current_context()
        stack = getattr(self._local, "stack", None)
        if not stack:
            return prefix
        return prefix + tuple(span.name for span in stack)

    # -- listeners ------------------------------------------------------
    def add_listener(self, listener: SpanListener) -> None:
        """Register a span-boundary observer (idempotent)."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener: SpanListener) -> None:
        """Deregister ``listener``; unknown listeners are ignored."""
        with self._lock:
            self._listeners = tuple(
                existing for existing in self._listeners if existing is not listener
            )

    def _notify_started(self, span: Span) -> None:
        path = self.current_path()
        # Deliberate lock-free read: _listeners is an immutable tuple
        # replaced copy-on-write under _lock, so a bare read sees either
        # the old or the new tuple — never a partial one.
        for listener in self._listeners:  # repro-lint: disable=R201
            listener.span_started(span, path)

    def _notify_finished(self, span: Span) -> None:
        path = self.current_path()
        # Deliberate lock-free read; see _notify_started.
        for listener in self._listeners:  # repro-lint: disable=R201
            listener.span_finished(span, path)

    def span(self, name: str, **labels: object) -> "SpanHandle":
        """A context-manager span; the no-op singleton while disabled."""
        if not self._registry.state.enabled:
            return NOOP_SPAN
        return Span(self, name, {k: str(v) for k, v in labels.items()})

    def _finish(self, span: Span) -> None:
        record = {
            "type": "span",
            "name": span.name,
            "labels": span.labels,
            "duration_ns": span.duration_ns,
            "parent": span._parent,
            "context": list(self.current_context()),
            "thread": threading.current_thread().name,
        }
        with self._lock:
            self._records.append(record)
        histogram = self._registry.histogram(
            f"{span.name}_seconds",
            f"Duration of {span.name} spans.",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        if span.labels:
            histogram = histogram.labels(**span.labels)
        histogram.observe(span.duration_ns / 1e9)

    def records(self) -> List[dict]:
        """Finished span records, oldest first."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop every retained span record."""
        with self._lock:
            self._records.clear()
