"""Deterministic, span-integrated wall-time profiler.

Answers the question the metric layer cannot: *where inside a span does
the time go?*  While enabled, every Python function entry/exit in the
process is observed (``sys.setprofile``; ``sys.monitoring`` — PEP 669 —
on 3.12+), wall time is attributed to the innermost ``repro.*`` frame on
the stack, and each attribution is grouped under the path of obs spans
active at that moment (e.g. ``exact.build → summary.merge``).  Because
the profiler is event-driven rather than sampling, the attribution is
deterministic: two runs of the same seeded workload produce the same
stacks, differing only in the measured nanoseconds.

Exports:

* **collapsed-stack text** (:meth:`ProfileReport.collapsed`) — one line
  per distinct ``span-path;frame-stack`` with its self-time, directly
  consumable by ``flamegraph.pl`` / speedscope;
* **top-N table** (:meth:`ProfileReport.top_table`) — per-frame self and
  cumulative seconds;
* **span totals** (:meth:`ProfileReport.span_totals`) — wall time
  grouped by enclosing span, comparable against the ``{span}_seconds``
  histograms the span layer records (the acceptance cross-check in
  ``tests/obs/test_profile.py``).

Discipline mirrors the metric layer: nothing is installed until
``REPRO_OBS_PROFILE=1`` (read once at import by :mod:`repro.obs`),
``obs.profile.enable()`` or the CLI ``--profile`` flag; disabling
uninstalls the hooks entirely, so the disabled path costs nothing.

The instrumentation layer itself (``repro/obs/``, ``repro/lint/``) is
excluded from the attributed stacks — profiling the profiler would only
add noise under every span.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "PROFILE_ENV",
    "PROFILE_BACKEND_ENV",
    "SpanProfiler",
    "ProfileReport",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "collect",
    "enable_from_env",
    "default_backend",
]

PROFILE_ENV = "REPRO_OBS_PROFILE"
PROFILE_BACKEND_ENV = "REPRO_OBS_PROFILE_BACKEND"

#: Path fragments whose frames are *never* attributed: the observability
#: and lint layers are measurement machinery, not measured code.
EXCLUDED_FRAGMENTS = ("repro/obs/", "repro/lint/")

#: Stack entry standing in for time spent outside any ``repro.*`` frame.
UNTRACKED = "(untracked)"

_perf_ns = time.perf_counter_ns

ProfileKey = Tuple[Tuple[str, ...], Tuple[str, ...]]


def default_backend() -> str:
    """``"monitoring"`` on 3.12+ (PEP 669), else ``"setprofile"``.

    Overridable via ``REPRO_OBS_PROFILE_BACKEND`` for A/B runs.
    """
    override = os.environ.get(PROFILE_BACKEND_ENV, "")
    if override in ("setprofile", "monitoring"):
        return override
    if sys.version_info >= (3, 12) and hasattr(sys, "monitoring"):
        return "monitoring"
    return "setprofile"


class _ThreadState:
    """Per-thread profiling state: the tracked stack and its counters."""

    __slots__ = ("stack", "entered", "last_ns", "data", "busy")

    def __init__(self) -> None:
        #: Frame keys of the ``repro.*`` frames currently on the stack.
        self.stack: List[str] = []
        #: One flag per *observed* call: did it push onto ``stack``?
        self.entered: List[bool] = []
        self.last_ns = 0
        #: (span path, frame stack) → accumulated self nanoseconds.
        self.data: Dict[ProfileKey, int] = {}
        #: Re-entrancy guard for the monitoring backend.
        self.busy = False


class SpanProfiler:
    """Attributes wall time to ``repro.*`` frames grouped by obs span.

    Parameters
    ----------
    span_provider:
        Zero-argument callable returning the current thread's active span
        names, outermost first (the span recorder's ``current_path``).
        Defaults to "no spans", which still yields a plain profile.
    """

    def __init__(self, span_provider: Optional[Callable[[], Tuple[str, ...]]] = None) -> None:
        self._span_provider = span_provider or (lambda: ())
        self._local = threading.local()
        self._states: List[_ThreadState] = []  # repro-lint: guarded-by=_lock
        self._lock = threading.Lock()
        # Benign-race memo cache: worst case two threads compute the same
        # code-object key and one write wins — deliberately unguarded.
        self._key_cache: Dict[object, Optional[str]] = {}
        self._enabled = False
        self._backend = ""
        self._monitoring_registered = False

    # -- configuration --------------------------------------------------
    def set_span_provider(self, provider: Callable[[], Tuple[str, ...]]) -> None:
        """Rebind the span-path source (used by :mod:`repro.obs` wiring)."""
        self._span_provider = provider

    @property
    def enabled(self) -> bool:
        """True while the profiling hooks are installed."""
        return self._enabled

    @property
    def backend(self) -> str:
        """The active backend name, or ``""`` while disabled."""
        return self._backend if self._enabled else ""

    # -- lifecycle ------------------------------------------------------
    def enable(self, backend: Optional[str] = None) -> None:
        """Install the profiling hooks (idempotent)."""
        if self._enabled:
            return
        chosen = backend or default_backend()
        if chosen not in ("setprofile", "monitoring"):
            raise ValueError(
                f"unknown profile backend {chosen!r}; use 'setprofile' or 'monitoring'"
            )
        if chosen == "monitoring" and not hasattr(sys, "monitoring"):
            chosen = "setprofile"
        self._backend = chosen
        self._enabled = True
        if chosen == "monitoring":
            self._install_monitoring()
        else:
            threading.setprofile(self._setprofile_callback)
            sys.setprofile(self._setprofile_callback)

    def disable(self) -> None:
        """Uninstall the hooks; accumulated data stays until :meth:`reset`."""
        if not self._enabled:
            return
        # Flush the open interval on this thread so time since the last
        # event is not lost (other threads flush at their next event,
        # which never comes — acceptable for a process-wide stop).
        state = self._state()
        self._attribute(state, _perf_ns())
        if self._backend == "monitoring":
            self._uninstall_monitoring()
        else:
            sys.setprofile(None)
            threading.setprofile(None)
        self._enabled = False
        self._backend = ""

    def reset(self) -> None:
        """Drop all accumulated attributions (hooks stay as they are)."""
        with self._lock:
            for state in self._states:
                state.data = {}
                state.last_ns = _perf_ns()

    def collect(self) -> "ProfileReport":
        """A merged snapshot of every thread's attributions so far."""
        if self._enabled:
            # Close the current interval so recent work is included.
            self._attribute(self._state(), _perf_ns())
        merged: Dict[ProfileKey, int] = {}
        with self._lock:
            states = list(self._states)
        for state in states:
            for key, ns in state.data.items():
                merged[key] = merged.get(key, 0) + ns
        return ProfileReport(merged)

    # -- shared core ----------------------------------------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            state.last_ns = _perf_ns()
            self._local.state = state
            with self._lock:
                self._states.append(state)
        return state

    def _attribute(self, state: _ThreadState, now: int) -> None:
        elapsed = now - state.last_ns
        state.last_ns = now
        if elapsed <= 0:
            return
        span_path = self._span_provider()
        if not span_path and not state.stack:
            return  # idle outside any repro frame or span: not ours
        key = (span_path, tuple(state.stack))
        data = state.data
        data[key] = data.get(key, 0) + elapsed

    def _frame_key(self, code: object) -> Optional[str]:
        """``repro.core.summary:IRSSummary.merge`` for repro code, else None."""
        cached = self._key_cache.get(code, False)
        if cached is not False:
            return cached  # type: ignore[return-value]
        filename = getattr(code, "co_filename", "") or ""
        normalized = filename.replace("\\", "/")
        key: Optional[str] = None
        if "/repro/" in normalized and not any(
            fragment in normalized for fragment in EXCLUDED_FRAGMENTS
        ):
            tail = normalized.rsplit("/repro/", 1)[1]
            module = "repro." + tail[:-3].replace("/", ".") if tail.endswith(".py") else "repro"
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            qualname = getattr(code, "co_qualname", None) or getattr(code, "co_name", "?")
            key = f"{module}:{qualname}"
        self._key_cache[code] = key
        return key

    # -- sys.setprofile backend -----------------------------------------
    # The callbacks deliberately do NOT exclude their own execution time
    # from the attributed intervals: the span histograms this profile is
    # validated against measure real wall time *with* the profiler
    # installed, so the overhead must land in the same buckets (it
    # accrues to whichever frame was running, like cProfile's totals).

    def _setprofile_callback(self, frame, event: str, arg: object) -> None:
        if event == "call":
            state = self._state()
            self._attribute(state, _perf_ns())
            key = self._frame_key(frame.f_code)
            if key is not None:
                state.stack.append(key)
                state.entered.append(True)
            else:
                state.entered.append(False)
        elif event == "return":
            state = self._state()
            self._attribute(state, _perf_ns())
            if state.entered and state.entered.pop() and state.stack:
                state.stack.pop()
        # c_call / c_return / c_exception: the Python stack is unchanged,
        # so the elapsed time simply accrues to the current frame at the
        # next Python-level event.

    # -- sys.monitoring backend (3.12+) ---------------------------------
    def _install_monitoring(self) -> None:
        mon = sys.monitoring
        mon.use_tool_id(mon.PROFILER_ID, "repro-obs-profile")
        events = mon.events
        mon.register_callback(mon.PROFILER_ID, events.PY_START, self._mon_push)
        mon.register_callback(mon.PROFILER_ID, events.PY_RESUME, self._mon_push)
        mon.register_callback(mon.PROFILER_ID, events.PY_THROW, self._mon_push)
        mon.register_callback(mon.PROFILER_ID, events.PY_RETURN, self._mon_pop)
        mon.register_callback(mon.PROFILER_ID, events.PY_YIELD, self._mon_pop)
        mon.register_callback(mon.PROFILER_ID, events.PY_UNWIND, self._mon_pop)
        mon.set_events(
            mon.PROFILER_ID,
            events.PY_START
            | events.PY_RESUME
            | events.PY_THROW
            | events.PY_RETURN
            | events.PY_YIELD
            | events.PY_UNWIND,
        )
        self._monitoring_registered = True

    def _uninstall_monitoring(self) -> None:
        if not self._monitoring_registered:
            return
        mon = sys.monitoring
        mon.set_events(mon.PROFILER_ID, 0)
        for event in (
            mon.events.PY_START,
            mon.events.PY_RESUME,
            mon.events.PY_THROW,
            mon.events.PY_RETURN,
            mon.events.PY_YIELD,
            mon.events.PY_UNWIND,
        ):
            mon.register_callback(mon.PROFILER_ID, event, None)
        mon.free_tool_id(mon.PROFILER_ID)
        self._monitoring_registered = False

    def _mon_push(self, code, _offset, *_rest: object) -> None:
        state = self._state()
        if state.busy:
            return
        state.busy = True
        try:
            self._attribute(state, _perf_ns())
            key = self._frame_key(code)
            if key is not None:
                state.stack.append(key)
                state.entered.append(True)
            else:
                state.entered.append(False)
        finally:
            state.busy = False

    def _mon_pop(self, code, _offset, *_rest: object) -> None:
        state = self._state()
        if state.busy:
            return
        state.busy = True
        try:
            self._attribute(state, _perf_ns())
            if state.entered and state.entered.pop() and state.stack:
                state.stack.pop()
        finally:
            state.busy = False


class ProfileReport:
    """An immutable snapshot of profiler attributions.

    ``entries`` maps ``(span path, frame stack)`` — both tuples of
    strings — to accumulated self-time nanoseconds.
    """

    def __init__(self, entries: Dict[ProfileKey, int]) -> None:
        self.entries: Dict[ProfileKey, int] = dict(entries)

    @property
    def total_ns(self) -> int:
        """Total attributed nanoseconds across all stacks."""
        return sum(self.entries.values())

    def span_totals(self) -> Dict[str, int]:
        """Cumulative nanoseconds per span name (nested time included).

        A span's total sums every attribution whose span path contains
        that name, matching the cumulative semantics of the
        ``{span}_seconds`` histograms recorded by the span layer.
        """
        totals: Dict[str, int] = {}
        for (span_path, _stack), ns in self.entries.items():
            for name in set(span_path):
                totals[name] = totals.get(name, 0) + ns
        return totals

    def self_by_frame(self) -> Dict[str, int]:
        """Self nanoseconds per frame key (leaf-of-stack attribution)."""
        totals: Dict[str, int] = {}
        for (_span_path, stack), ns in self.entries.items():
            leaf = stack[-1] if stack else UNTRACKED
            totals[leaf] = totals.get(leaf, 0) + ns
        return totals

    def cumulative_by_frame(self) -> Dict[str, int]:
        """Cumulative nanoseconds per frame key (anywhere-on-stack)."""
        totals: Dict[str, int] = {}
        for (_span_path, stack), ns in self.entries.items():
            for frame in set(stack) or {UNTRACKED}:
                totals[frame] = totals.get(frame, 0) + ns
        return totals

    def collapsed(self) -> str:
        """Collapsed-stack text: ``span;…;frame;… <microseconds>`` lines.

        Span-path components lead each line, so a flamegraph groups the
        frames under their enclosing spans.  Lines are sorted for
        deterministic output.
        """
        lines = []
        for (span_path, stack), ns in self.entries.items():
            frames = list(span_path) + (list(stack) if stack else [UNTRACKED])
            lines.append((";".join(frames), ns // 1_000))
        lines.sort()
        return "\n".join(f"{stack} {us}" for stack, us in lines) + ("\n" if lines else "")

    def top_table(self, limit: int = 15) -> str:
        """A ``self/cumulative`` seconds table of the hottest frames."""
        from repro.obs.export import _render_table

        self_ns = self.self_by_frame()
        cumulative_ns = self.cumulative_by_frame()
        ranked = sorted(self_ns.items(), key=lambda item: (-item[1], item[0]))[:limit]
        rows = [
            [
                frame,
                f"{ns / 1e9:.6f}",
                f"{cumulative_ns.get(frame, ns) / 1e9:.6f}",
            ]
            for frame, ns in ranked
        ]
        if not rows:
            return "(no profile samples)\n"
        header = f"top {len(rows)} frames by self time"
        return "\n".join(
            [header] + _render_table(("frame", "self_s", "cum_s"), rows)
        ) + "\n"

    def top_frames(self, limit: int = 5) -> List[Tuple[str, int]]:
        """The ``limit`` hottest frames as ``(frame, self_ns)`` pairs."""
        ranked = sorted(
            self.self_by_frame().items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:limit]


#: The process-wide profiler; :mod:`repro.obs` binds its span provider.
PROFILER = SpanProfiler()

#: Hook invoked by :func:`enable` so turning profiling on also turns the
#: span/metric layer on (bound to ``REGISTRY.enable`` by ``repro.obs``).
_ON_ENABLE: Optional[Callable[[], None]] = None


def _bind(span_provider: Callable[[], Tuple[str, ...]], on_enable: Callable[[], None]) -> None:
    """Internal wiring called once by :mod:`repro.obs` at import."""
    global _ON_ENABLE
    PROFILER.set_span_provider(span_provider)
    _ON_ENABLE = on_enable


def enable(backend: Optional[str] = None) -> None:
    """Install the process-wide profiler (also enables the obs layer)."""
    if _ON_ENABLE is not None:
        _ON_ENABLE()
    PROFILER.enable(backend)


def disable() -> None:
    """Uninstall the process-wide profiler (obs layer is left as-is)."""
    PROFILER.disable()


def is_enabled() -> bool:
    """True while the process-wide profiler is installed."""
    return PROFILER.enabled


def reset() -> None:
    """Drop the process-wide profiler's accumulated attributions."""
    PROFILER.reset()


def collect() -> ProfileReport:
    """Snapshot the process-wide profiler's attributions."""
    return PROFILER.collect()


def enable_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Enable when ``REPRO_OBS_PROFILE`` is set non-empty and ≠ ``0``."""
    env = os.environ if environ is None else environ
    if env.get(PROFILE_ENV, "") not in ("", "0"):
        enable()
        return True
    return False
