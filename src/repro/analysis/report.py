"""Programmatic experiment reports.

``generate_report`` runs the complete experiment battery (every table and
figure of the paper, at a configurable scale) and renders one markdown
document — the machine-written counterpart of the hand-curated
EXPERIMENTS.md.  Downstream users call it to regenerate all numbers on
their own machine::

    from repro.analysis.report import generate_report
    print(generate_report(scale=0.2, seed=1))

or from the benchmarks, which persist it under ``benchmarks/results/``.

Scale guidance: 1.0 is the full catalog (~2–3 minutes of pure Python);
0.1 gives a smoke-test report in seconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import (
    accuracy_experiment,
    dataset_characteristics,
    memory_experiment,
    oracle_query_experiment,
    runtime_experiment,
    seed_overlap_experiment,
    seed_time_experiment,
    spread_comparison,
)
from repro.analysis.metrics import format_table
from repro.analysis.plots import ascii_chart, series_from_rows
from repro.core.interactions import InteractionLog
from repro.datasets.catalog import dataset_names, load_dataset
from repro.utils.validation import require_positive

__all__ = ["generate_report", "REPORT_SECTIONS"]

REPORT_SECTIONS = (
    "table2",
    "table3",
    "table4",
    "fig3",
    "fig4",
    "fig5",
    "table5",
    "table6",
)


def _markdown_block(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    scale: float = 1.0,
    seed: int = 1,
    sections: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
    precision: int = 9,
) -> str:
    """Run the experiment battery and return a markdown report.

    Parameters
    ----------
    scale:
        Dataset size multiplier relative to the catalog.
    seed:
        Generator seed; the whole report is deterministic given it.
    sections:
        Subset of :data:`REPORT_SECTIONS` to include (default: all).
    datasets:
        Catalog names to use (default: all six; the exact-index sections
        always restrict themselves to the datasets small enough for it).
    precision:
        Sketch index bits.
    """
    require_positive(scale, "scale")
    chosen = list(sections) if sections is not None else list(REPORT_SECTIONS)
    unknown = [s for s in chosen if s not in REPORT_SECTIONS]
    if unknown:
        raise ValueError(f"unknown sections: {unknown}; known: {REPORT_SECTIONS}")
    names = list(datasets) if datasets is not None else dataset_names()

    logs: Dict[str, InteractionLog] = {
        name: load_dataset(name, rng=seed, scale=scale) for name in names
    }
    small_names = [
        name
        for name in names
        if name in ("enron-sim", "lkml-sim", "facebook-sim", "slashdot-sim")
    ] or names[:1]
    small_logs = {name: logs[name] for name in small_names}

    parts: List[str] = [
        "# Experiment report (auto-generated)",
        "",
        f"catalog scale = {scale}, generator seed = {seed}, "
        f"sketch precision = {precision} (beta = {1 << precision}).",
        "",
    ]

    if "table2" in chosen:
        rows = dataset_characteristics(names, rng=seed, scale=scale)
        parts.append(
            _markdown_block(
                "Table 2 — dataset characteristics",
                format_table(rows),
            )
        )

    if "table3" in chosen:
        rows = []
        for name in [n for n in ("higgs-sim", "slashdot-sim") if n in logs] or small_names[:1]:
            rows.extend(
                accuracy_experiment(
                    logs[name],
                    name,
                    betas=(16, 64, 256, 512),
                    window_percents=(1, 10, 20),
                )
            )
        parts.append(
            _markdown_block("Table 3 — IRS-size estimation error", format_table(rows))
        )

    if "table4" in chosen:
        rows = memory_experiment(logs, window_percents=(1, 10, 20), precision=precision)
        parts.append(
            _markdown_block("Table 4 — accounted sketch memory (MB)", format_table(rows))
        )

    if "fig3" in chosen:
        rows = runtime_experiment(
            logs, window_percents=(1, 10, 20, 50, 100), precision=precision
        )
        chart = ascii_chart(
            series_from_rows(rows, x="window_pct", y="seconds", series="dataset"),
            title="processing seconds (log10) vs window %",
            log_y=True,
        )
        parts.append(
            _markdown_block(
                "Figure 3 — processing time vs window",
                format_table(rows) + "\n\n" + chart,
            )
        )

    if "fig4" in chosen:
        rows = []
        for name in small_names[:1] + names[-1:]:
            rows.extend(
                oracle_query_experiment(
                    logs[name],
                    name,
                    seed_counts=(10, 100, 1_000),
                    precision=precision,
                    repetitions=3,
                    rng=seed,
                )
            )
        parts.append(
            _markdown_block(
                "Figure 4 — oracle query time vs seed count", format_table(rows)
            )
        )

    if "fig5" in chosen:
        rows = []
        for name in small_names[:2]:
            rows.extend(
                spread_comparison(
                    logs[name],
                    name,
                    ks=(5, 15, 30),
                    window_percents=(1,),
                    probabilities=(1.0,),
                    runs=2,
                    precision=precision,
                    rng=seed,
                )
            )
        chart_sections = []
        for name in small_names[:2]:
            chart_sections.append(
                ascii_chart(
                    series_from_rows(
                        rows,
                        x="k",
                        y="spread",
                        series="method",
                        where={"dataset": name},
                    ),
                    title=f"{name}: TCIC spread vs k (omega = 1%, p = 1)",
                    width=48,
                    height=10,
                )
            )
        parts.append(
            _markdown_block(
                "Figure 5 — TCIC spread of top-k seeds",
                format_table(rows) + "\n\n" + "\n\n".join(chart_sections),
            )
        )

    if "table5" in chosen:
        rows = seed_overlap_experiment(
            logs, window_percents=(1, 10, 20), k=10, precision=precision
        )
        parts.append(
            _markdown_block(
                "Table 5 — common top-10 seeds across windows", format_table(rows)
            )
        )

    if "table6" in chosen:
        rows = seed_time_experiment(
            small_logs,
            k=20,
            methods=("IRS-approx", "SKIM", "PR", "HD", "SHD", "CTE"),
            precision=precision,
            rng=seed,
        )
        parts.append(
            _markdown_block(
                "Table 6 — seconds to find top-20 seeds", format_table(rows)
            )
        )

    return "\n".join(parts)
