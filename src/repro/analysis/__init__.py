"""Experiment harness, metrics, and memory accounting for the paper's
tables and figures."""

from repro.analysis.experiments import (
    ALL_METHODS,
    accuracy_experiment,
    dataset_characteristics,
    memory_experiment,
    oracle_query_experiment,
    runtime_experiment,
    seed_overlap_experiment,
    seed_time_experiment,
    select_seeds,
    spread_comparison,
)
from repro.analysis.memory import (
    EXACT_ENTRY_BYTES,
    SKETCH_ENTRY_BYTES,
    accounted_bytes,
    deep_size,
    megabytes,
)
from repro.analysis.plots import ascii_chart, series_from_rows
from repro.analysis.report import REPORT_SECTIONS, generate_report
from repro.analysis.metrics import (
    SummaryStats,
    average_relative_error,
    format_table,
    jaccard,
    relative_error,
    seed_overlap,
    summarize,
)

__all__ = [
    "ALL_METHODS",
    "select_seeds",
    "dataset_characteristics",
    "accuracy_experiment",
    "memory_experiment",
    "runtime_experiment",
    "oracle_query_experiment",
    "spread_comparison",
    "seed_overlap_experiment",
    "seed_time_experiment",
    "accounted_bytes",
    "deep_size",
    "megabytes",
    "EXACT_ENTRY_BYTES",
    "SKETCH_ENTRY_BYTES",
    "relative_error",
    "average_relative_error",
    "seed_overlap",
    "jaccard",
    "SummaryStats",
    "summarize",
    "format_table",
    "ascii_chart",
    "series_from_rows",
    "generate_report",
    "REPORT_SECTIONS",
]
