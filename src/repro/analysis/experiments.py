"""The experiment harness — one function per paper table / figure.

Every function returns a list of plain dict rows (render with
:func:`repro.analysis.metrics.format_table`), so the benchmark scripts under
``benchmarks/`` are thin wrappers that choose sizes, call one function here
and print the rows next to the paper's reported shape.

Mapping to the paper (see DESIGN.md §4 for the full index):

=====================  ====================================================
function               reproduces
=====================  ====================================================
dataset_characteristics  Table 2 (dataset statistics)
accuracy_experiment      Table 3 (avg relative IRS-size error vs β and ω)
memory_experiment        Table 4 (memory at ω ∈ {1, 10, 20}%)
runtime_experiment       Figure 3 (processing time vs ω)
oracle_query_experiment  Figure 4 (oracle query time vs seed-set size)
spread_comparison        Figure 5 (TCIC spread of each method's top-k)
seed_overlap_experiment  Table 5 (common seeds across window lengths)
seed_time_experiment     Table 6 (time to find the top-50 seeds)
=====================  ====================================================
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

import repro.obs as obs
from repro.analysis.memory import accounted_bytes, megabytes
from repro.analysis.metrics import average_relative_error, seed_overlap
from repro.baselines.continest import continest_top_k
from repro.baselines.degree import (
    degree_discount_top_k,
    high_degree_top_k,
    smart_high_degree_top_k,
)
from repro.baselines.ic_greedy import ic_greedy_top_k
from repro.baselines.pagerank import pagerank_top_k
from repro.baselines.skim import skim_top_k
from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.core.interactions import InteractionLog
from repro.core.maximization import greedy_top_k
from repro.core.oracle import ApproxInfluenceOracle, ExactInfluenceOracle
from repro.datasets.catalog import dataset_names, load_dataset
from repro.simulation.spread import estimate_spread
from repro.utils.rng import RngLike, resolve_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import require_type

_SUMMARY_BYTES = obs.gauge(
    "summary.bytes",
    "Accounted sketch-index memory per dataset and window (Table 4).",
)

__all__ = [
    "ALL_METHODS",
    "select_seeds",
    "dataset_characteristics",
    "accuracy_experiment",
    "memory_experiment",
    "runtime_experiment",
    "oracle_query_experiment",
    "spread_comparison",
    "seed_overlap_experiment",
    "seed_time_experiment",
]

Node = Hashable

ALL_METHODS = ("PR", "HD", "SHD", "SKIM", "CTE", "IRS", "IRS-approx")
"""The seven competitors of paper Figure 5 / Table 6."""

EXTRA_METHODS = ("DD", "ICG")
"""Classical baselines beyond the paper's panel: DegreeDiscount (ref [4])
and Kempe-style Monte-Carlo IC greedy (refs [13]/[17]).  Accepted by
:func:`select_seeds` but not part of the default comparison (ICG in
particular is orders of magnitude slower, which is rather the point)."""


# ---------------------------------------------------------------------------
# Seed selection dispatcher
# ---------------------------------------------------------------------------
def select_seeds(
    log: InteractionLog,
    method: str,
    k: int,
    window: int,
    precision: int = 9,
    rng: RngLike = 0,
) -> List[Node]:
    """Top-``k`` seeds of ``log`` according to ``method``.

    ``method`` is one of :data:`ALL_METHODS`.  ``window`` (ω in ticks) is
    used by the IRS methods and as ConTinEst's horizon; the static methods
    ignore it, exactly as in the paper.
    """
    require_type(log, "log", InteractionLog)
    if method == "PR":
        return pagerank_top_k(log, k)
    if method == "HD":
        return high_degree_top_k(log, k)
    if method == "SHD":
        return smart_high_degree_top_k(log, k)
    if method == "SKIM":
        return skim_top_k(log, k, rng=rng)
    if method == "CTE":
        return continest_top_k(log, k, horizon=max(window, 1), rng=rng)
    if method == "IRS":
        oracle = ExactInfluenceOracle.from_index(ExactIRS.from_log(log, window))
        return greedy_top_k(oracle, k)
    if method == "IRS-approx":
        index = ApproxIRS.from_log(log, window, precision=precision)
        return greedy_top_k(ApproxInfluenceOracle.from_index(index), k)
    if method == "DD":
        return degree_discount_top_k(log, k)
    if method == "ICG":
        return ic_greedy_top_k(log, k, probability=0.1, runs=20, rng=rng)
    raise ValueError(
        f"unknown method {method!r}; known: {ALL_METHODS + EXTRA_METHODS}"
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------
def dataset_characteristics(
    names: Optional[Sequence[str]] = None,
    rng: RngLike = 0,
    scale: float = 1.0,
) -> List[Dict[str, object]]:
    """Table 2: |V|, |E| and day span of every (simulated) dataset."""
    rows = []
    for name in names if names is not None else dataset_names():
        log = load_dataset(name, rng=rng, scale=scale)
        rows.append(
            {
                "dataset": name,
                "nodes": log.num_nodes,
                "interactions": log.num_interactions,
                "span_ticks": log.time_span,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------
def accuracy_experiment(
    log: InteractionLog,
    dataset: str = "",
    betas: Sequence[int] = (16, 32, 64, 128, 256, 512),
    window_percents: Sequence[float] = (1, 10, 20),
    salt: int = 0,
) -> List[Dict[str, object]]:
    """Table 3: average relative IRS-size error per β and window length.

    Builds one exact index per window (the expensive part) and one
    approximate index per (β, window) pair, then compares sizes node by
    node via :func:`~repro.analysis.metrics.average_relative_error`.
    """
    require_type(log, "log", InteractionLog)
    rows = []
    for percent in window_percents:
        window = log.window_from_percent(percent)
        exact_sizes = ExactIRS.from_log(log, window).irs_sizes()
        for beta in betas:
            precision = _precision_for(beta)
            approx = ApproxIRS.from_log(log, window, precision=precision, salt=salt)
            error = average_relative_error(exact_sizes, approx.irs_estimates())
            rows.append(
                {
                    "dataset": dataset,
                    "beta": beta,
                    "window_pct": percent,
                    "avg_rel_error": error,
                }
            )
    return rows


def _precision_for(beta: int) -> int:
    if beta <= 0 or beta & (beta - 1) != 0:
        raise ValueError(f"beta must be a positive power of two, got {beta}")
    return beta.bit_length() - 1


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------
def memory_experiment(
    logs: Mapping[str, InteractionLog],
    window_percents: Sequence[float] = (1, 10, 20),
    precision: int = 9,
) -> List[Dict[str, object]]:
    """Table 4: accounted sketch memory per dataset and window length."""
    rows = []
    for name, log in logs.items():
        row: Dict[str, object] = {"dataset": name}
        for percent in window_percents:
            window = log.window_from_percent(percent)
            with obs.span("experiment.memory", dataset=name, window_pct=percent):
                index = ApproxIRS.from_log(log, window, precision=precision)
                index_bytes = accounted_bytes(index)
            _SUMMARY_BYTES.labels(dataset=name, window_pct=f"{percent:g}").set(
                index_bytes
            )
            row[f"mb_at_{percent:g}pct"] = megabytes(index_bytes)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------
def runtime_experiment(
    logs: Mapping[str, InteractionLog],
    window_percents: Sequence[float] = (1, 5, 10, 20, 40, 60, 80, 100),
    precision: int = 9,
) -> List[Dict[str, object]]:
    """Figure 3: one-pass processing time of the approximate algorithm as a
    function of the window length."""
    rows = []
    for name, log in logs.items():
        for percent in window_percents:
            window = log.window_from_percent(percent)
            with obs.span("experiment.runtime", dataset=name, window_pct=percent):
                with Timer() as timer:
                    ApproxIRS.from_log(log, window, precision=precision)
            rows.append(
                {
                    "dataset": name,
                    "window_pct": percent,
                    "seconds": timer.elapsed,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------
def oracle_query_experiment(
    log: InteractionLog,
    dataset: str = "",
    seed_counts: Sequence[int] = (10, 100, 1_000, 5_000, 10_000),
    window_percent: float = 20,
    precision: int = 9,
    repetitions: int = 5,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Figure 4: influence-oracle query time vs seed-set size.

    Seeds are sampled uniformly (with replacement past the node count, as
    the paper's 10 000-seed queries on smaller graphs imply); each query is
    repeated and averaged.
    """
    require_type(log, "log", InteractionLog)
    generator = resolve_rng(rng)
    window = log.window_from_percent(window_percent)
    oracle = ApproxInfluenceOracle.from_index(
        ApproxIRS.from_log(log, window, precision=precision)
    )
    nodes = sorted(log.nodes, key=repr)
    rows = []
    for count in seed_counts:
        seeds = [nodes[generator.randrange(len(nodes))] for _ in range(count)]
        with obs.span("experiment.oracle_query", dataset=dataset, num_seeds=count):
            with Timer() as timer:
                for _ in range(repetitions):
                    oracle.spread(seeds)
        rows.append(
            {
                "dataset": dataset,
                "num_seeds": count,
                "milliseconds": timer.elapsed / repetitions * 1_000.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
def spread_comparison(
    log: InteractionLog,
    dataset: str = "",
    ks: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    window_percents: Sequence[float] = (1, 20),
    probabilities: Sequence[float] = (0.5, 1.0),
    methods: Sequence[str] = ALL_METHODS,
    runs: int = 5,
    precision: int = 9,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Figure 5: simulated TCIC spread of every method's top-k seeds.

    Greedy selectors produce *nested* seed lists, so each method selects
    ``max(ks)`` seeds once and the spread of every prefix is simulated —
    exactly how the paper's curves are drawn.
    """
    require_type(log, "log", InteractionLog)
    generator = resolve_rng(rng)
    k_max = max(ks)
    rows = []
    for percent in window_percents:
        window = log.window_from_percent(percent)
        for stream, method in enumerate(methods):
            seeds = select_seeds(
                log,
                method,
                k_max,
                window,
                precision=precision,
                rng=spawn_rng(generator, stream),
            )
            for probability in probabilities:
                for k in ks:
                    estimate = estimate_spread(
                        log,
                        seeds[:k],
                        window,
                        probability,
                        runs=runs,
                        rng=spawn_rng(generator, 7_000 + stream * 101 + k),
                    )
                    rows.append(
                        {
                            "dataset": dataset,
                            "window_pct": percent,
                            "probability": probability,
                            "method": method,
                            "k": k,
                            "spread": estimate.mean,
                        }
                    )
    return rows


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------
def seed_overlap_experiment(
    logs: Mapping[str, InteractionLog],
    window_percents: Sequence[float] = (1, 10, 20),
    k: int = 10,
    precision: int = 9,
) -> List[Dict[str, object]]:
    """Table 5: common seeds among the top-k found at different windows."""
    rows = []
    for name, log in logs.items():
        seeds_by_window = {}
        for percent in window_percents:
            window = log.window_from_percent(percent)
            index = ApproxIRS.from_log(log, window, precision=precision)
            oracle = ApproxInfluenceOracle.from_index(index)
            seeds_by_window[percent] = greedy_top_k(oracle, k)
        row: Dict[str, object] = {"dataset": name}
        percents = list(window_percents)
        for i, first in enumerate(percents):
            for second in percents[i + 1 :]:
                row[f"common_{first:g}pct_{second:g}pct"] = seed_overlap(
                    seeds_by_window[first], seeds_by_window[second]
                )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 6
# ---------------------------------------------------------------------------
def seed_time_experiment(
    logs: Mapping[str, InteractionLog],
    k: int = 50,
    window_percent: float = 1,
    methods: Sequence[str] = ALL_METHODS,
    precision: int = 9,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Table 6: wall-clock seconds to find the top-``k`` seeds per method.

    For the IRS methods the timing *includes* the one-pass index
    construction (the paper's Table 6 does the same — its IRS column grows
    with the interaction count, not the node count).
    """
    generator = resolve_rng(rng)
    rows = []
    for name, log in logs.items():
        row: Dict[str, object] = {"dataset": name}
        window = log.window_from_percent(window_percent)
        for stream, method in enumerate(methods):
            with obs.span("experiment.seed_time", dataset=name, method=method):
                with Timer() as timer:
                    select_seeds(
                        log,
                        method,
                        k,
                        window,
                        precision=precision,
                        rng=spawn_rng(generator, stream),
                    )
            row[method] = timer.elapsed
        rows.append(row)
    return rows
