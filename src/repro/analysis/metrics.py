"""Metrics shared by the experiment harness and the test-suite.

Small, dependency-free implementations of the quantities the paper reports:
average relative estimation error (Table 3), seed-set overlap counts
(Table 5), and generic summary statistics for timing/spread series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Sequence

__all__ = [
    "relative_error",
    "average_relative_error",
    "seed_overlap",
    "jaccard",
    "SummaryStats",
    "summarize",
    "format_table",
]

Node = Hashable


def relative_error(true_value: float, estimate: float) -> float:
    """``|estimate − true| / true``; true must be non-zero."""
    if true_value == 0:
        raise ValueError("relative error undefined for a zero true value")
    return abs(estimate - true_value) / abs(true_value)


def average_relative_error(
    true_values: Mapping[Node, float],
    estimates: Mapping[Node, float],
) -> float:
    """Mean relative error over keys with non-zero true value.

    This is the paper's Table 3 metric: "the average relative error in the
    estimation of the IRS size for all the nodes".  Nodes with an empty IRS
    are skipped (their relative error is undefined; both algorithms agree
    on them anyway because an empty sketch estimates exactly zero).
    """
    errors = []
    for key, true_value in true_values.items():
        if true_value == 0:
            continue
        errors.append(relative_error(true_value, estimates.get(key, 0.0)))
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def seed_overlap(first: Iterable[Node], second: Iterable[Node]) -> int:
    """Number of common elements — the paper's Table 5 statistic."""
    return len(set(first) & set(second))


def jaccard(first: Iterable[Node], second: Iterable[Node]) -> float:
    """Jaccard similarity of two seed sets."""
    a, b = set(first), set(second)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True)
class SummaryStats:
    """Mean / std / extremes of a numeric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of ``values`` (sample standard deviation)."""
    if not values:
        raise ValueError("values must not be empty")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return SummaryStats(
        count=n, mean=mean, std=std, minimum=min(values), maximum=max(values)
    )


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as a fixed-width text table (benchmark output)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0])
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
