"""The canonical parameter grid of the paper's evaluation (§5).

Every figure/table sweeps some subset of the same five axes — dataset,
window length ω, sketch precision (β = 2^precision), seed-selection
method, rng seed.  Until this module existed each ``benchmarks/bench_*``
script carried its own copy of the relevant tuples, so the grids could
(and did threaten to) drift apart.  This is now the single definition,
consumed by

* the benchmark scripts under ``benchmarks/`` (one import each), and
* the default experiment-matrix spec (:func:`repro.xp.spec.paper_spec`),

so "the grid the benches run" and "the grid the orchestrator declares"
are the same object.

Values mirror the paper exactly where feasible and the documented
reductions otherwise (see DESIGN.md §2 and EXPERIMENTS.md): e.g.
``SPREAD_KS`` is the bench-budget subset of Figure 5's k ∈ {5..50}.
"""

from __future__ import annotations

from repro.analysis.experiments import ALL_METHODS

__all__ = [
    "DEFAULT_PRECISION",
    "BETAS",
    "WINDOW_PERCENTS",
    "WINDOW_SWEEP",
    "SEED_COUNTS",
    "QUERY_WINDOW_PERCENT",
    "SPREAD_KS",
    "SPREAD_WINDOW_PERCENTS",
    "SPREAD_PROBABILITIES",
    "SPREAD_METHODS",
    "SEED_TIME_METHODS",
    "SEED_TIME_K",
    "SEED_TIME_WINDOW_PERCENT",
    "OVERLAP_K",
    "ACCURACY_DATASETS",
    "SPREAD_DATASETS",
    "QUERY_DATASETS",
    "SMALL_DATASETS",
]

#: Sketch precision used everywhere a single β is reported (β = 2⁹ = 512).
DEFAULT_PRECISION = 9

#: Table 3's register-count sweep (β, a power of two).
BETAS = (16, 32, 64, 128, 256, 512)

#: Tables 3–5's window lengths, as % of each dataset's time span.
WINDOW_PERCENTS = (1, 10, 20)

#: Figure 3's full window sweep (one-pass build time vs ω).
WINDOW_SWEEP = (1, 5, 10, 20, 40, 60, 80, 100)

#: Figure 4's seed-set sizes (oracle query time vs |S|).
SEED_COUNTS = (10, 100, 1_000, 5_000, 10_000)

#: Figure 4 fixes the window at 20 % while sweeping the seed count.
QUERY_WINDOW_PERCENT = 20

#: Figure 5's seed-set sizes, reduced to the bench budget (paper: 5..50
#: in steps of 5; prefixes of one nested greedy list either way).
SPREAD_KS = (5, 15, 30, 50)

#: Figure 5 contrasts a short and a long window.
SPREAD_WINDOW_PERCENTS = (1, 20)

#: Figure 5's two infection probabilities.
SPREAD_PROBABILITIES = (0.5, 1.0)

#: Figure 5 / Table 6 method panel (the paper's seven competitors).
SPREAD_METHODS = ALL_METHODS

#: Table 6 drops exact IRS (its panel times the approx variant only).
SEED_TIME_METHODS = ("IRS-approx", "SKIM", "PR", "HD", "SHD", "CTE")

#: Table 6 times the top-50 selection at the 1 % window.
SEED_TIME_K = 50
SEED_TIME_WINDOW_PERCENT = 1

#: Table 5 compares top-10 seed sets across windows.
OVERLAP_K = 10

#: Table 3 runs where the exact index fits in memory.
ACCURACY_DATASETS = ("higgs-sim", "slashdot-sim")

#: Figure 5's three spread panels.
SPREAD_DATASETS = ("lkml-sim", "enron-sim", "facebook-sim")

#: Figure 4 contrasts the smallest and largest graphs.
QUERY_DATASETS = ("slashdot-sim", "us2016-sim")

#: The four datasets small enough for exact-index experiments.
SMALL_DATASETS = ("enron-sim", "lkml-sim", "facebook-sim", "slashdot-sim")
