"""Text-mode chart rendering for the figure reproductions.

The paper's Figures 3–5 are line charts.  The benchmark harness runs in a
terminal with no display, so this module renders series as fixed-width
ASCII line charts — enough to eyeball the *shape* (who is on top, where
curves flatten, where they cross) that EXPERIMENTS.md compares against the
paper.  No third-party plotting dependency is required anywhere in the
repository.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["ascii_chart", "series_from_rows"]

_MARKERS = "ox+*#@%&"


def series_from_rows(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    series: str,
    where: Optional[Mapping[str, object]] = None,
) -> Dict[str, list]:
    """Group benchmark rows into ``{series label: [(x, y), …]}``.

    ``where`` filters rows by exact column matches first — e.g.
    ``{"dataset": "lkml-sim", "probability": 1.0}`` selects one panel of
    Figure 5.
    """
    grouped: Dict[str, list] = {}
    for row in rows:
        if where and any(row.get(k) != v for k, v in where.items()):
            continue
        label = str(row[series])
        grouped.setdefault(label, []).append((float(row[x]), float(row[y])))  # type: ignore[arg-type]
    for points in grouped.values():
        points.sort()
    return grouped


def ascii_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render ``{label: [(x, y), …]}`` as an ASCII line chart.

    Each series gets a marker character; the legend maps markers to labels.
    ``log_y`` plots log10(y) (Figure 3 in the paper is log-scale).
    """
    if not series:
        return f"{title}\n(no series)" if title else "(no series)"
    points = [
        (x, y)
        for values in series.values()
        for x, y in values
    ]
    if not points:
        return f"{title}\n(no points)" if title else "(no points)"

    def transform(y: float) -> float:
        if not log_y:
            return y
        return math.log10(y) if y > 0 else math.log10(1e-6)

    xs = [x for x, _ in points]
    ys = [transform(y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_range = x_high - x_low or 1.0
    y_range = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            column = round((x - x_low) / x_range * (width - 1))
            row = round((transform(y) - y_low) / y_range * (height - 1))
            grid[height - 1 - row][column] = marker

    y_label_high = f"{y_high:.3g}" + ("(log10)" if log_y else "")
    y_label_low = f"{y_low:.3g}"
    gutter = max(len(y_label_high), len(y_label_low)) + 1

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_label_high
        elif row_index == height - 1:
            label = y_label_low
        else:
            label = ""
        lines.append(label.rjust(gutter) + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * (gutter + 1) + x_axis)
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]}={label}"
        for index, label in enumerate(sorted(series))
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)
