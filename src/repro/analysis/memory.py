"""Deterministic memory accounting for IRS indexes (paper Table 4).

The paper reports operating-system megabytes of its C++ process.  A Python
RSS number would mostly measure the interpreter, so we account for the data
structures directly, in two complementary ways:

* **entry accounting** — the number of stored entries times a fixed
  per-entry footprint (the C++-like cost model: an exact entry is a
  ``(node id, timestamp)`` record, a sketch entry is a ``(ρ, timestamp)``
  pair), matching the quantity Lemmas 3–6 bound;
* **deep size** — a recursive :func:`sys.getsizeof` walk over the live
  Python objects, for users who want actual interpreter bytes.

Both grow the same way — with n and (slightly) with ω — which is the shape
Table 4 demonstrates.
"""

from __future__ import annotations

import sys
from typing import Iterable, Set

from repro.core.approx import ApproxIRS
from repro.core.exact import ExactIRS
from repro.utils.validation import require_type

__all__ = [
    "EXACT_ENTRY_BYTES",
    "SKETCH_ENTRY_BYTES",
    "accounted_bytes",
    "deep_size",
    "megabytes",
]

EXACT_ENTRY_BYTES = 16
"""Cost model for one exact summary entry: 64-bit node id + 64-bit λ."""

SKETCH_ENTRY_BYTES = 12
"""Cost model for one vHLL pair: 64-bit timestamp + 8-bit ρ, padded."""


def accounted_bytes(index) -> int:
    """Entry-accounted size in bytes of an :class:`ExactIRS` or
    :class:`ApproxIRS` index (see module docstring for the cost model)."""
    if isinstance(index, ExactIRS):
        return index.entry_count() * EXACT_ENTRY_BYTES
    if isinstance(index, ApproxIRS):
        return index.entry_count() * SKETCH_ENTRY_BYTES
    raise TypeError(
        f"index must be ExactIRS or ApproxIRS, got {type(index).__name__}"
    )


def deep_size(obj: object, _seen: Set[int] = None) -> int:  # type: ignore[assignment]
    """Recursive ``sys.getsizeof`` over containers and slotted objects."""
    if _seen is None:
        _seen = set()
    identity = id(obj)
    if identity in _seen:
        return 0
    _seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            deep_size(key, _seen) + deep_size(value, _seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_size(item, _seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_size(vars(obj), _seen)
    if hasattr(obj, "__slots__"):
        for slot in obj.__slots__:  # type: ignore[attr-defined]
            if hasattr(obj, slot):
                size += deep_size(getattr(obj, slot), _seen)
    return size


def megabytes(num_bytes: int) -> float:
    """Bytes → MB (10^6, matching the paper's table units)."""
    return num_bytes / 1_000_000.0
