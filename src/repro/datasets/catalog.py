"""Named dataset catalog mirroring the paper's Table 2.

Each entry is a scaled-down synthetic analogue of one of the six real
datasets.  Interaction counts are Table 2's divided by 100 (US-2016 by
1000 — pure-Python budget), but node counts are divided by only 20 (200
for US-2016): scaling |V| and |E| by the same factor would inflate the
pairwise interaction density ``|E| / |V|²`` by that factor and *saturate*
reachability — every node would reach every other and all influence
methods would tie, which is not how the originals behave.  The node-heavy
scaling keeps relative reachability structure at the cost of ~5× fewer
interactions per node.  Time spans keep the papers' day counts with a
configurable number of ticks per day so that window percentages translate
to meaningful ω values.

============ ============= ========== ============ ======= =========
name         paper dataset |V| (Tab2) |E| (Tab2)   days    generator
============ ============= ========== ============ ======= =========
enron-sim    Enron         87.3 k     1,148.1 k    8,767   email
lkml-sim     Lkml          27.4 k     1,048.6 k    2,923   email
facebook-sim Facebook      46.9 k       877.0 k    1,592   email
higgs-sim    Higgs         304.7 k      526.2 k        7   cascade
slashdot-sim Slashdot      51.1 k       140.8 k      978   forum
us2016-sim   US-2016       4,468 k   44,638 k         16   cascade
============ ============= ========== ============ ======= =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.interactions import InteractionLog
from repro.datasets import generators
from repro.utils.rng import RngLike
from repro.utils.validation import require_positive

__all__ = ["DatasetSpec", "CATALOG", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible synthetic stand-in for one of the paper's datasets."""

    name: str
    paper_name: str
    kind: str  # "email" | "cascade" | "forum"
    num_nodes: int
    num_interactions: int
    days: int
    ticks_per_day: int = 10

    @property
    def time_span(self) -> int:
        """Total span in ticks."""
        return self.days * self.ticks_per_day

    def generate(self, rng: RngLike = 0, scale: float = 1.0) -> InteractionLog:
        """Materialise the dataset at ``scale`` (1.0 = the catalog size)."""
        require_positive(scale, "scale")
        nodes = max(int(self.num_nodes * scale), 2)
        interactions = max(int(self.num_interactions * scale), 1)
        builder: Callable[..., InteractionLog]
        if self.kind == "email":
            builder = generators.email_network
        elif self.kind == "cascade":
            builder = generators.cascade_network
        elif self.kind == "forum":
            builder = generators.forum_network
        else:  # pragma: no cover - specs are fixed below
            raise ValueError(f"unknown dataset kind {self.kind!r}")
        return builder(nodes, interactions, self.time_span, rng=rng)


CATALOG: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("enron-sim", "Enron", "email", 4_365, 11_481, 8_767),
        DatasetSpec("lkml-sim", "Lkml", "email", 1_370, 10_486, 2_923),
        DatasetSpec("facebook-sim", "Facebook", "email", 2_345, 8_770, 1_592),
        DatasetSpec("higgs-sim", "Higgs", "cascade", 15_235, 5_262, 7, ticks_per_day=1_000),
        DatasetSpec("slashdot-sim", "Slashdot", "forum", 2_555, 1_408, 978),
        DatasetSpec("us2016-sim", "US-2016", "cascade", 22_340, 44_638, 16, ticks_per_day=1_000),
    )
}


def dataset_names() -> List[str]:
    """Catalog dataset names, in the paper's Table 2 order."""
    return list(CATALOG)


def load_dataset(name: str, rng: RngLike = 0, scale: float = 1.0) -> InteractionLog:
    """Generate the named catalog dataset (deterministic for a given rng).

    ``scale`` shrinks or grows node/interaction counts proportionally —
    tests use small scales, the full benchmark suite uses 1.0.
    """
    spec = CATALOG.get(name)
    if spec is None:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return spec.generate(rng=rng, scale=scale)
