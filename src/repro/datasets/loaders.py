"""Reading / writing interaction logs and third-party conversions.

Complements the on-class IO of :class:`~repro.core.interactions.InteractionLog`
with CSV support and an optional export to ``networkx`` (handy for users who
want to run their own static analyses next to this library's algorithms).
"""

from __future__ import annotations

import csv
import io
from typing import Union

from repro.core.interactions import Interaction, InteractionLog
from repro.utils.validation import require_type

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_csv",
    "write_csv",
    "to_networkx",
]


def read_edge_list(path: str, int_nodes: bool = False) -> InteractionLog:
    """Read a whitespace-separated ``source target time`` file (SNAP style)."""
    return InteractionLog.read(path, int_nodes=int_nodes)


def write_edge_list(log: InteractionLog, path: str) -> None:
    """Write ``log`` as whitespace-separated ``source target time`` lines."""
    require_type(log, "log", InteractionLog)
    log.write(path)


def read_csv(
    path_or_file: Union[str, io.TextIOBase],
    int_nodes: bool = False,
) -> InteractionLog:
    """Read a CSV with a ``source,target,time`` header (column order free)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8", newline="") as handle:
            return _read_csv_handle(handle, int_nodes)
    return _read_csv_handle(path_or_file, int_nodes)


def _read_csv_handle(handle, int_nodes: bool) -> InteractionLog:
    reader = csv.DictReader(handle)
    missing = {"source", "target", "time"} - set(reader.fieldnames or ())
    if missing:
        raise ValueError(f"CSV is missing columns: {sorted(missing)}")
    records = []
    for row in reader:
        source = int(row["source"]) if int_nodes else row["source"]
        target = int(row["target"]) if int_nodes else row["target"]
        records.append(Interaction(source, target, int(row["time"])))
    return InteractionLog(records, allow_self_loops=True)


def write_csv(log: InteractionLog, path_or_file: Union[str, io.TextIOBase]) -> None:
    """Write ``log`` as a ``source,target,time`` CSV."""
    require_type(log, "log", InteractionLog)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8", newline="") as handle:
            _write_csv_handle(log, handle)
    else:
        _write_csv_handle(log, path_or_file)


def _write_csv_handle(log: InteractionLog, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(["source", "target", "time"])
    for source, target, time in log:
        writer.writerow([source, target, time])


def to_networkx(log: InteractionLog, static: bool = False):
    """Convert to a ``networkx`` graph.

    ``static=False`` returns a ``MultiDiGraph`` with a ``time`` attribute
    per interaction; ``static=True`` returns the flattened ``DiGraph``.
    Raises :class:`ImportError` when networkx is unavailable.
    """
    require_type(log, "log", InteractionLog)
    import networkx as nx

    if static:
        graph = nx.DiGraph()
        graph.add_nodes_from(log.nodes)
        graph.add_edges_from(log.static_edges())
        return graph
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(log.nodes)
    for source, target, time in log:
        graph.add_edge(source, target, time=time)
    return graph
