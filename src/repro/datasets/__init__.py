"""Synthetic interaction-network generators, the Table 2 catalog, and IO."""

from repro.datasets.catalog import CATALOG, DatasetSpec, dataset_names, load_dataset
from repro.datasets.generators import (
    cascade_network,
    email_network,
    forum_network,
    uniform_network,
)
from repro.datasets.statistics import LogStatistics, burstiness, describe, gini
from repro.datasets.loaders import (
    read_csv,
    read_edge_list,
    to_networkx,
    write_csv,
    write_edge_list,
)

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "email_network",
    "cascade_network",
    "forum_network",
    "uniform_network",
    "read_edge_list",
    "write_edge_list",
    "read_csv",
    "write_csv",
    "to_networkx",
    "LogStatistics",
    "describe",
    "gini",
    "burstiness",
]
