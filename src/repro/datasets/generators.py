"""Synthetic interaction-network generators.

The paper evaluates on six real logs (email: Enron, Lkml; social: Facebook,
Higgs, Slashdot; Twitter: US-2016).  Those require network access and, for
the largest, tens of gigabytes — neither available here — so this module
generates *statistically analogous* streams (the substitution is documented
in DESIGN.md §2).  What the algorithms are sensitive to, and what the
generators therefore reproduce, is:

* heavy-tailed activity — a few prolific senders, many occasional ones;
* community structure — most interactions stay inside a cluster;
* repeated interactions between the same pairs (the defining feature of
  interaction networks vs. static graphs);
* reply dynamics / cascades — interactions that *answer* recent
  interactions, which is what creates long time-respecting channels;
* a fixed total time span with strictly increasing integer timestamps
  (the paper assumes distinct stamps, §2).

Three shapes are provided: :func:`email_network` (Enron/Lkml/Facebook-like),
:func:`cascade_network` (Higgs/US-2016-like retweet bursts) and
:func:`forum_network` (Slashdot-like threaded replies), plus a structureless
:func:`uniform_network` control.
"""

from __future__ import annotations

import math
from itertools import accumulate
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.interactions import Interaction, InteractionLog
from repro.utils.rng import RngLike, resolve_rng
from repro.utils.validation import require_positive, require_probability

__all__ = [
    "email_network",
    "cascade_network",
    "forum_network",
    "uniform_network",
]


def _validate_common(num_nodes: int, num_interactions: int, time_span: int) -> None:
    for name, value in (
        ("num_nodes", num_nodes),
        ("num_interactions", num_interactions),
        ("time_span", time_span),
    ):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"{name} must be an int")
        require_positive(value, name)
    if num_nodes < 2:
        raise ValueError("num_nodes must be at least 2")


def _distinct_times(raw: Sequence[float], time_span: int) -> List[int]:
    """Map raw (possibly duplicated) float times to strictly increasing ints.

    Relative order and approximate spacing are preserved; output values live
    in ``[0, ~time_span + len(raw))``.
    """
    if not raw:
        return []
    low = min(raw)
    high = max(raw)
    width = high - low
    scale = (time_span - 1) / width if width > 0 else 0.0
    order = sorted(range(len(raw)), key=lambda i: raw[i])
    times = [0] * len(raw)
    previous = -1
    for position in order:
        value = int(round((raw[position] - low) * scale))
        if value <= previous:
            value = previous + 1
        times[position] = value
        previous = value
    return times


def _zipf_weights(count: int, exponent: float) -> List[float]:
    """Unnormalised Zipf weights ``1/rank**exponent``."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def _zipf_cumulative(count: int, exponent: float) -> List[float]:
    """Cumulative Zipf weights — lets ``random.choices`` draw in O(log n)
    instead of recomputing the O(n) prefix sums on every call."""
    return list(accumulate(_zipf_weights(count, exponent)))


def email_network(
    num_nodes: int,
    num_interactions: int,
    time_span: int,
    num_communities: int = 8,
    internal_probability: float = 0.8,
    reply_probability: float = 0.3,
    activity_exponent: float = 1.1,
    rng: RngLike = None,
) -> InteractionLog:
    """An email-like interaction stream (Enron/Lkml/Facebook analogue).

    Users belong to communities; each message picks a Zipf-active sender,
    then either replies to one of the sender's recently *received* messages
    (with ``reply_probability`` — this is what builds long time-respecting
    chains) or mails a member of its community (w.p.
    ``internal_probability``) or anyone.

    Parameters mirror the visible statistics of the paper's email datasets:
    long spans, many repeated pairs, heavy-tailed out-degree.
    """
    _validate_common(num_nodes, num_interactions, time_span)
    require_probability(internal_probability, "internal_probability")
    require_probability(reply_probability, "reply_probability")
    require_positive(activity_exponent, "activity_exponent")
    if isinstance(num_communities, bool) or not isinstance(num_communities, int):
        raise TypeError("num_communities must be an int")
    require_positive(num_communities, "num_communities")
    generator = resolve_rng(rng)

    communities = [generator.randrange(num_communities) for _ in range(num_nodes)]
    members: List[List[int]] = [[] for _ in range(num_communities)]
    for node, community in enumerate(communities):
        members[community].append(node)
    # Guarantee no community is a singleton pool for recipient choice.
    cum_weights = _zipf_cumulative(num_nodes, activity_exponent)
    population = list(range(num_nodes))

    # Recent inbox per node (most recent senders), bounded.
    inbox: List[List[int]] = [[] for _ in range(num_nodes)]
    inbox_cap = 8

    raw_times = sorted(generator.random() for _ in range(num_interactions))
    times = _distinct_times(raw_times, time_span)

    records: List[Interaction] = []
    for index in range(num_interactions):
        sender = generator.choices(population, cum_weights=cum_weights, k=1)[0]
        recipient: Optional[int] = None
        if inbox[sender] and generator.random() < reply_probability:
            recipient = generator.choice(inbox[sender])
        if recipient is None or recipient == sender:
            pool = members[communities[sender]]
            if len(pool) > 1 and generator.random() < internal_probability:
                recipient = generator.choice(pool)
            else:
                recipient = generator.randrange(num_nodes)
        attempts = 0
        while recipient == sender and attempts < 8:
            recipient = generator.randrange(num_nodes)
            attempts += 1
        if recipient == sender:
            recipient = (sender + 1) % num_nodes
        records.append(Interaction(sender, recipient, times[index]))
        box = inbox[recipient]
        box.append(sender)
        if len(box) > inbox_cap:
            del box[0]
    return InteractionLog(records)


def cascade_network(
    num_nodes: int,
    num_interactions: int,
    time_span: int,
    num_hubs: int = 0,
    burst_size_mean: float = 20.0,
    hop_decay: float = 0.7,
    rng: RngLike = None,
) -> InteractionLog:
    """A retweet-cascade stream (Higgs/US-2016 analogue).

    A scale-free follower base graph is grown by preferential attachment;
    activity arrives as *bursts*: a hub posts, a geometric number of
    followers re-share within a tight time window, and their followers may
    re-share in turn (probability decaying by ``hop_decay`` per hop).  The
    resulting log is short-spanned and extremely bursty, like the Higgs
    dataset (7 days, half a million interactions).

    ``num_hubs = 0`` derives a default of ``max(4, num_nodes // 100)``.
    """
    _validate_common(num_nodes, num_interactions, time_span)
    require_probability(hop_decay, "hop_decay")
    require_positive(burst_size_mean, "burst_size_mean")
    generator = resolve_rng(rng)
    if num_hubs == 0:
        num_hubs = max(4, num_nodes // 100)

    # Preferential-attachment follower lists: followers[v] = who re-shares v.
    followers: List[List[int]] = [[] for _ in range(num_nodes)]
    attachment: List[int] = []
    for node in range(num_nodes):
        links = min(3, node)
        for _ in range(links):
            target = attachment[generator.randrange(len(attachment))]
            if target != node:
                followers[target].append(node)
        attachment.extend([node] * (links + 1))

    hubs = sorted(
        range(num_nodes), key=lambda node: len(followers[node]), reverse=True
    )[:num_hubs]

    raw_events: List[Tuple[float, int, int]] = []  # (raw time, source, target)
    while len(raw_events) < num_interactions:
        root = hubs[generator.randrange(len(hubs))]
        burst_start = generator.random()
        # (node, hop, share time); re-share edges point child -> parent
        # (the Higgs convention: a retweet is an interaction from the
        # retweeter towards the original author).
        frontier = [(root, 0, burst_start)]
        share_probability = 1.0
        while frontier and len(raw_events) < num_interactions:
            node, hop, at = frontier.pop()
            share_probability = hop_decay**hop
            for follower in followers[node]:
                if generator.random() > share_probability:
                    continue
                delay = generator.expovariate(burst_size_mean) / 50.0
                follower_time = at + 1e-6 + delay
                raw_events.append((follower_time, follower, node))
                if len(raw_events) >= num_interactions:
                    break
                frontier.append((follower, hop + 1, follower_time))
        if not followers[root]:
            # Degenerate hub: emit a single post to a random node.
            other = generator.randrange(num_nodes)
            if other != root:
                raw_events.append((burst_start, other, root))

    raw_events = raw_events[:num_interactions]
    times = _distinct_times([event[0] for event in raw_events], time_span)
    records = [
        Interaction(source, target, times[index])
        for index, (_, source, target) in enumerate(raw_events)
    ]
    return InteractionLog(records)


def forum_network(
    num_nodes: int,
    num_interactions: int,
    time_span: int,
    thread_length_mean: float = 6.0,
    activity_exponent: float = 1.0,
    rng: RngLike = None,
) -> InteractionLog:
    """A threaded-reply stream (Slashdot analogue).

    Discussions are threads: a starter posts, then a geometric number of
    repliers join over time, each reply directed at an earlier participant
    of the same thread (usually a recent one).  Reply edges naturally chain
    backwards in conversation order, which yields moderate numbers of
    time-respecting channels between frequent posters.
    """
    _validate_common(num_nodes, num_interactions, time_span)
    require_positive(thread_length_mean, "thread_length_mean")
    generator = resolve_rng(rng)

    cum_weights = _zipf_cumulative(num_nodes, activity_exponent)
    population = list(range(num_nodes))

    raw_events: List[Tuple[float, int, int]] = []
    while len(raw_events) < num_interactions:
        thread_start = generator.random()
        participants = [generator.choices(population, cum_weights=cum_weights, k=1)[0]]
        length = 1 + min(
            int(generator.expovariate(1.0 / thread_length_mean)), num_nodes
        )
        at = thread_start
        for _ in range(length):
            if len(raw_events) >= num_interactions:
                break
            replier = generator.choices(population, cum_weights=cum_weights, k=1)[0]
            # Prefer replying to a recent participant.
            target_pool = participants[-4:]
            target = target_pool[generator.randrange(len(target_pool))]
            if replier == target:
                continue
            at += generator.random() * 1e-3
            raw_events.append((at, replier, target))
            participants.append(replier)

    raw_events = raw_events[:num_interactions]
    times = _distinct_times([event[0] for event in raw_events], time_span)
    records = [
        Interaction(source, target, times[index])
        for index, (_, source, target) in enumerate(raw_events)
    ]
    return InteractionLog(records)


def uniform_network(
    num_nodes: int,
    num_interactions: int,
    time_span: int,
    rng: RngLike = None,
) -> InteractionLog:
    """Structureless control: uniformly random pairs, uniform times."""
    _validate_common(num_nodes, num_interactions, time_span)
    generator = resolve_rng(rng)
    raw_times = [generator.random() for _ in range(num_interactions)]
    times = _distinct_times(raw_times, time_span)
    records: List[Interaction] = []
    for index in range(num_interactions):
        source = generator.randrange(num_nodes)
        target = generator.randrange(num_nodes)
        while target == source:
            target = generator.randrange(num_nodes)
        records.append(Interaction(source, target, times[index]))
    return InteractionLog(records)
