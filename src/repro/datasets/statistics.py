"""Descriptive statistics of interaction logs.

DESIGN.md's substitution argument — "the synthetic datasets preserve the
stream properties the algorithms are sensitive to" — needs those properties
to be *measurable*.  This module quantifies them:

* degree concentration (Gini coefficient of out-activity),
* repetition (interactions per distinct static edge),
* reciprocity (fraction of static edges whose reverse also exists),
* burstiness (Goh & Barabási's ``(σ − μ)/(σ + μ)`` of inter-arrival gaps),
* reachability saturation (share of the graph the most-reaching node's
  IRS covers at a reference window).

The generator test-suite pins the qualitative ranges (email logs are
reciprocal and heavy-tailed, cascade logs are bursty, uniform logs are
neither), and the Table 2 bench reports them next to the size columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable

from repro.core.exact import ExactIRS
from repro.core.interactions import InteractionLog
from repro.utils.validation import require_type

__all__ = ["LogStatistics", "describe", "gini", "burstiness"]

Node = Hashable


def gini(values) -> float:
    """Gini coefficient of a non-negative sequence (0 = equal, →1 = one
    value holds everything)."""
    items = sorted(values)
    if not items:
        raise ValueError("values must not be empty")
    total = sum(items)
    if total == 0:
        return 0.0
    n = len(items)
    weighted = sum((index + 1) * value for index, value in enumerate(items))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def burstiness(gaps) -> float:
    """Goh–Barabási burstiness ``(σ − μ)/(σ + μ)`` of inter-arrival gaps.

    −1 for perfectly regular, 0 for Poisson, → 1 for extremely bursty.
    """
    items = list(gaps)
    if not items:
        raise ValueError("gaps must not be empty")
    mean = sum(items) / len(items)
    variance = sum((gap - mean) ** 2 for gap in items) / len(items)
    sigma = math.sqrt(variance)
    if sigma + mean == 0:
        return 0.0
    return (sigma - mean) / (sigma + mean)


@dataclass(frozen=True)
class LogStatistics:
    """The descriptive profile :func:`describe` computes."""

    num_nodes: int
    num_interactions: int
    time_span: int
    distinct_edges: int
    repetition: float
    """Interactions per distinct static edge (1.0 = no repeats)."""
    reciprocity: float
    """Fraction of static edges whose reverse edge also occurs."""
    activity_gini: float
    """Gini of per-node source-activity counts (0 equal … 1 concentrated)."""
    gap_burstiness: float
    """Goh–Barabási burstiness of global inter-arrival gaps."""
    max_irs_share: float
    """|largest σω| / |V| at ω = 10 % of the span — saturation indicator."""


def describe(log: InteractionLog, irs_window_percent: float = 10.0) -> LogStatistics:
    """Compute the full :class:`LogStatistics` profile of ``log``."""
    require_type(log, "log", InteractionLog)
    if log.num_interactions == 0:
        raise ValueError("cannot describe an empty log")

    edges = log.static_edges()
    reciprocated = sum(1 for (u, v) in edges if (v, u) in edges)
    activity: Dict[Node, int] = {node: 0 for node in log.nodes}
    for source, _, _ in log:
        activity[source] += 1

    times = [record.time for record in log]
    gaps = [b - a for a, b in zip(times, times[1:])] or [0]

    window = log.window_from_percent(irs_window_percent)
    index = ExactIRS.from_log(log, window)
    largest = max(index.irs_sizes().values(), default=0)

    return LogStatistics(
        num_nodes=log.num_nodes,
        num_interactions=log.num_interactions,
        time_span=log.time_span,
        distinct_edges=len(edges),
        repetition=log.num_interactions / len(edges),
        reciprocity=reciprocated / len(edges),
        activity_gini=gini(list(activity.values())),
        gap_burstiness=burstiness(gaps),
        max_irs_share=largest / log.num_nodes,
    )
