"""Runtime contract layer: corrupted structures raise, clean runs don't,
and with the flag unset the decorator is a zero-cost identity."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.core.summary import IRSSummary
from repro.lint.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    check_lambda_map,
    check_summary_merge_bound,
    check_time_sorted,
    check_vhll_dominance,
    contracts_enabled,
    invariant,
)
from repro.sketch.vhll import VersionedHLL

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def run_with_contracts(body: str) -> subprocess.CompletedProcess:
    """Run ``body`` in a fresh interpreter with contracts enabled."""
    env = dict(os.environ)
    env[CONTRACTS_ENV] = "1"
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        capture_output=True,
        text=True,
        env=env,
    )


# ----------------------------------------------------------------------
# Checkers raise on deliberately corrupted structures
# ----------------------------------------------------------------------


def test_corrupted_lambda_map_raises():
    summary = IRSSummary({"a": 5, "b": 9})
    check_lambda_map(summary)  # clean map passes
    summary._entries["c"] = "not-a-time"
    with pytest.raises(ContractViolation, match="expected int"):
        check_lambda_map(summary)


def test_lambda_map_below_scan_frontier_raises():
    summary = IRSSummary({"a": 5})
    check_lambda_map(summary, min_time=4)
    with pytest.raises(ContractViolation, match="monotonicity"):
        check_lambda_map(summary, min_time=6)


def test_non_minimal_merge_result_raises():
    merged = IRSSummary({"a": 5})
    other = IRSSummary({"a": 3})  # offered a smaller λ than what was kept
    with pytest.raises(ContractViolation, match="minimality"):
        check_summary_merge_bound(merged, other, start_time=1, window=10)


def test_dropped_in_budget_channel_raises():
    merged = IRSSummary({})
    other = IRSSummary({"a": 3})
    with pytest.raises(ContractViolation, match="dropped"):
        check_summary_merge_bound(merged, other, start_time=1, window=10)


def test_corrupted_vhll_cell_list_raises():
    sketch = VersionedHLL(precision=4)
    sketch.add_pair(0, 3, 10)
    check_vhll_dominance(sketch)  # clean sketch passes
    # A dominated pair: later time, smaller rho — pruning should have
    # removed it, so its presence is a corruption.
    sketch._cells[0].append((12, 2))
    with pytest.raises(ContractViolation, match="dominated pair"):
        check_vhll_dominance(sketch)


def test_unsorted_vhll_cell_list_raises():
    sketch = VersionedHLL(precision=4)
    sketch._cells[1] = [(10, 3), (8, 5)]
    with pytest.raises(ContractViolation, match="not time-sorted"):
        check_vhll_dominance(sketch)


def test_check_time_sorted():
    check_time_sorted([1, 2, 2, 5])
    check_time_sorted([1, 2, 5], strict=True)
    with pytest.raises(ContractViolation, match="non-decreasing"):
        check_time_sorted([1, 3, 2])
    with pytest.raises(ContractViolation, match="strictly increasing"):
        check_time_sorted([1, 2, 2], strict=True)


# ----------------------------------------------------------------------
# Wired update paths self-check when REPRO_DEBUG_CONTRACTS=1
# ----------------------------------------------------------------------


def test_enabled_contracts_catch_injected_lambda_violation():
    result = run_with_contracts(
        """
        from repro.core.exact import ExactIRS

        index = ExactIRS(window=10)
        index.process("b", "c", 9)
        # Corrupt ϕ(b): a channel that ends before the scan frontier of
        # the next interaction violates λ-map monotonicity.
        index._summaries["b"]._entries["x"] = 2
        index.process("a", "b", 5)
        """
    )
    assert result.returncode != 0
    assert "ContractViolation" in result.stderr
    assert "monotonicity" in result.stderr


def test_enabled_contracts_catch_injected_vhll_dominance_violation():
    result = run_with_contracts(
        """
        from repro.sketch.vhll import VersionedHLL

        sketch = VersionedHLL(precision=4)
        sketch.add_pair(0, 4, 10)
        sketch._cells[0].append((12, 2))  # dominated pair survives "pruning"
        sketch.add_pair(1, 1, 5)          # next update self-checks the sketch
        """
    )
    assert result.returncode != 0
    assert "ContractViolation" in result.stderr
    assert "dominated pair" in result.stderr


def test_enabled_contracts_accept_clean_pipeline():
    result = run_with_contracts(
        """
        from repro.core.exact import ExactIRS
        from repro.core.approx import ApproxIRS
        from repro.core.interactions import InteractionLog
        from repro.core.streaming import StreamingExactIndex

        log = InteractionLog([("a", "b", 1), ("b", "c", 3), ("c", "d", 4), ("a", "c", 6)])
        exact = ExactIRS.from_log(log, window=4)
        approx = ApproxIRS.from_log(log, window=4, precision=4)
        streaming = StreamingExactIndex.from_log(log, window=4)
        print(sorted(exact.reachability_set("a")), streaming.influencer_count("d"))
        """
    )
    assert result.returncode == 0, result.stderr
    assert "['b', 'c', 'd']" in result.stdout


# ----------------------------------------------------------------------
# Identity fast-path with the flag unset
# ----------------------------------------------------------------------


needs_disabled = pytest.mark.skipif(
    contracts_enabled(), reason="suite is running with REPRO_DEBUG_CONTRACTS=1"
)


@needs_disabled
def test_invariant_is_identity_when_disabled():
    def probe(self, x):
        return x

    decorated = invariant(lambda *a: None)(probe)
    assert decorated is probe  # no wrapper object at all


@needs_disabled
def test_wired_methods_are_undecorated_when_disabled():
    from repro.core.exact import ExactIRS
    from repro.lint.alloctrace import is_enabled as alloc_sanitizer_enabled

    if alloc_sanitizer_enabled():
        # The @hotpath allocation wrapper legitimately wraps these same
        # methods when the sanitizer is on; only the contracts layer is
        # asserted zero-cost here.
        pytest.skip("suite is running with REPRO_DEBUG_ALLOC=1")

    assert not hasattr(IRSSummary.add, "__wrapped__")
    assert not hasattr(IRSSummary.merge_within, "__wrapped__")
    assert not hasattr(VersionedHLL.add_pair, "__wrapped__")
    assert not hasattr(ExactIRS._apply, "__wrapped__")
